//! Distributed drill: shard servers as **real child processes** behind
//! loopback TCP, driven by one long-lived router — populate the fleet,
//! audit it against an in-process twin, kill a shard process outright,
//! observe typed errors (never wrong answers, never a torn epoch),
//! respawn the shard on a fresh port, and watch op-log replay heal it.
//!
//! ```text
//! cargo run --example distributed_drill
//! ```
//!
//! Runs entirely offline on 127.0.0.1. The example re-invokes itself
//! with `--shard <addr>` for each child, so it is self-contained: no
//! other binary needs to be built. Prints `DISTRIBUTED DRILL PASS` on
//! success.

use socialreach::{
    AccessService, Deployment, EvalError, NetworkedSystem, NodeId, ShardAddr, ShardServer,
};
use std::io::{BufRead, BufReader, Write as _};
use std::process::{Child, Command, Stdio};

/// Child mode: serve one shard until killed.
fn serve_child(addr: &str) -> ! {
    let server = ShardServer::bind(&ShardAddr::parse(addr)).expect("shard binds");
    println!("LISTENING {}", server.local_addr());
    std::io::stdout().flush().expect("flush");
    let _ = server.run();
    std::process::exit(0)
}

/// A shard child process; killed on drop so a failed drill leaves no
/// strays.
struct Shard {
    child: Child,
    addr: ShardAddr,
}

impl Shard {
    fn spawn() -> Shard {
        let mut child = Command::new(std::env::current_exe().expect("own path"))
            .args(["--shard", "127.0.0.1:0"])
            .stdout(Stdio::piped())
            .spawn()
            .expect("shard child spawns");
        let stdout = child.stdout.take().expect("piped stdout");
        let mut line = String::new();
        BufReader::new(stdout)
            .read_line(&mut line)
            .expect("child announces its endpoint");
        let addr = line
            .trim()
            .strip_prefix("LISTENING ")
            .expect("LISTENING banner");
        Shard {
            child,
            addr: ShardAddr::parse(addr),
        }
    }

    fn kill(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

impl Drop for Shard {
    fn drop(&mut self) {
        self.kill();
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() == 3 && args[1] == "--shard" {
        serve_child(&args[2]);
    }

    // --- Fleet up: three shard processes on ephemeral ports. ---------
    let mut shards: Vec<Shard> = (0..3).map(|_| Shard::spawn()).collect();
    let addrs: Vec<ShardAddr> = shards.iter().map(|s| s.addr.clone()).collect();
    println!(
        "fleet up: {}",
        addrs
            .iter()
            .map(|a| a.to_string())
            .collect::<Vec<_>>()
            .join(" ")
    );
    let mut net = NetworkedSystem::connect(&addrs, 42).expect("router connects");

    // --- Populate through the two-phase epoch fence, mirrored into an
    // in-process twin. ------------------------------------------------
    let names = ["ava", "ben", "cleo", "dan", "edith", "femi", "gus"];
    let members: Vec<NodeId> = names
        .iter()
        .map(|n| net.try_add_user(n).expect("user commits"))
        .collect();
    for w in members.windows(2) {
        net.try_connect(w[0], "friend", w[1]).expect("edge commits");
    }
    net.try_connect(members[6], "colleague", members[0])
        .expect("edge commits");
    let rid = net.share(members[0]);
    net.allow(rid, "friend+[1..3]").expect("rule parses");

    let mut g = socialreach::SocialGraph::new();
    for n in &names {
        g.add_node(n);
    }
    let friend = g.intern_label("friend");
    let colleague = g.intern_label("colleague");
    for i in 0..5u32 {
        g.add_edge(NodeId(i), NodeId(i + 1), friend);
    }
    g.add_edge(NodeId(6), NodeId(0), colleague);
    let mut store = socialreach::PolicyStore::new();
    let twin_rid = store.register_resource(NodeId(0));
    assert_eq!(twin_rid, rid);
    store.allow(rid, "friend+[1..3]", &mut g).unwrap();
    let twin = Deployment::online().from_graph(&g, store);

    let want = twin.reads().audience(rid).expect("twin audience");
    assert_eq!(
        net.audience(rid).expect("fleet audience"),
        want,
        "fleet ≡ twin after populate"
    );
    println!(
        "populate OK: epoch {}, audience {:?}",
        net.epoch(),
        want.iter().map(|&m| net.member_name(m)).collect::<Vec<_>>()
    );

    // --- Kill one shard process mid-flight. --------------------------
    shards[1].kill();
    println!("killed shard 1 ({})", shards[1].addr);
    let epoch_frozen = net.epoch();
    match net.audience(rid) {
        Ok(got) => assert_eq!(got, want, "a completed read must be correct"),
        Err(EvalError::Remote(e)) => println!("read during outage: typed error ({e})"),
        Err(other) => panic!("expected a typed remote error, got {other}"),
    }
    assert!(
        net.try_add_user("zoe").is_err(),
        "a mutation cannot commit without the whole fleet"
    );
    assert_eq!(
        net.epoch(),
        epoch_frozen,
        "failed commit leaves no torn epoch"
    );
    println!("outage OK: mutations refused, epoch frozen at {epoch_frozen}");

    // --- Respawn on a fresh port; op-log replay heals it. ------------
    let replacement = Shard::spawn();
    net.retarget(1, replacement.addr.clone());
    shards[1] = replacement;
    assert_eq!(
        net.audience(rid).expect("healed fleet answers"),
        want,
        "replayed shard agrees with the twin again"
    );

    // --- And the healed fleet keeps mutating. ------------------------
    let zoe = net.try_add_user("zoe").expect("fleet whole again");
    net.try_connect(members[0], "friend", zoe)
        .expect("edge commits");
    let audience = net.audience(rid).expect("audience after heal");
    assert!(
        audience.contains(&zoe),
        "zoe is one friend-hop from the owner"
    );
    println!(
        "recovery OK: epoch {}, audience {:?}",
        net.epoch(),
        audience
            .iter()
            .map(|&m| net.member_name(m))
            .collect::<Vec<_>>()
    );

    net.shutdown_fleet();
    println!("DISTRIBUTED DRILL PASS");
}
