//! Access control over a synthetic enterprise-scale graph: build a
//! 2,000-member community network with the workload generators, attach
//! policies, and replay the same request stream through **three
//! deployments** of the service API — online single-graph, the paper's
//! join index, and a four-shard partition — a miniature of the
//! benchmark suite, runnable as an example.
//!
//! ```text
//! cargo run --release --example enterprise_directory
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use socialreach::workload::{
    generate_policies, replay_requests, requests_with_grant_rate, AttributeModel, GraphSpec,
    LabelModel, PolicyWorkloadConfig, Topology,
};
use socialreach::{Deployment, EngineChoice, JoinEngineConfig, JoinStrategy, PolicyStore};
use std::time::Instant;

fn main() {
    // Departments as communities: dense `colleague` ties inside a
    // department, `works_with` bridges across, sparse `manages` edges.
    let spec = GraphSpec {
        topology: Topology::Community {
            nodes: 2_000,
            communities: 40,
            p_in: 0.15,
            bridges: 600,
        },
        labels: LabelModel::CommunityAware {
            intra: "colleague".into(),
            inter: "works_with".into(),
            extra: "manages".into(),
            extra_per_100: 8,
        },
        attributes: AttributeModel::osn_default(),
        reciprocity: 0.9,
        seed: 2026,
    };
    let mut g = spec.build();
    println!(
        "directory: {} members, {} relationships, labels = {:?}",
        g.num_nodes(),
        g.num_edges(),
        g.vocab().labels().map(|(_, n)| n).collect::<Vec<_>>()
    );

    // Random policies in the enterprise's own vocabulary.
    let mut store = PolicyStore::new();
    let mut rng = StdRng::seed_from_u64(7);
    let cfg = PolicyWorkloadConfig {
        num_resources: 30,
        rules_per_resource: 1,
        steps: (1, 2),
        out_prob: 1.0,
        both_prob: 0.0,
        deep_prob: 0.3,
        pred_prob: 0.3,
    };
    let rids = generate_policies(&mut g, &mut store, &cfg, &mut rng);
    let requests = requests_with_grant_rate(&g, &store, &rids, 300, 0.5, &mut rng);
    println!(
        "policies: {} resources, {} rules; requests: {} (50% grants)",
        store.num_resources(),
        store.num_rules(),
        requests.len()
    );

    // The same stream through every deployment: the scenario below
    // holds nothing but `&dyn AccessService`.
    println!();
    let deployments = [
        Deployment::online(),
        Deployment::single(EngineChoice::JoinIndex(JoinEngineConfig {
            strategy: JoinStrategy::AdjacencyOnly,
            ..JoinEngineConfig::default()
        })),
        Deployment::sharded(4, 9),
    ];
    for deployment in deployments {
        let t0 = Instant::now();
        let svc = deployment.from_graph(&g, store.clone());
        let build = t0.elapsed();
        let t0 = Instant::now();
        let report = replay_requests(svc.reads(), &requests, 4).expect("replays");
        let serve = t0.elapsed();
        assert!(
            report.is_faithful(),
            "{} diverged from ground truth at {:?}",
            svc.reads().describe(),
            report.mismatches
        );
        assert_eq!(
            report.grants,
            requests.len() / 2,
            "workload targets 50% grants"
        );
        println!(
            "{:<22} {serve:>12?} for {} requests (+ {build:?} build), grants {}/{}",
            svc.reads().describe(),
            report.requests,
            report.grants,
            report.requests,
        );
    }
}
