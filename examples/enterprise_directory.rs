//! Access control over a synthetic enterprise-scale graph: build a
//! 2,000-member community network with the workload generators, attach
//! policies, and compare both evaluation engines on the same request
//! stream — a miniature of the benchmark suite, runnable as an example.
//!
//! ```text
//! cargo run --release --example enterprise_directory
//! ```

use rand::rngs::StdRng;
use rand::SeedableRng;
use socialreach::workload::{
    generate_policies, requests_with_grant_rate, AttributeModel, GraphSpec, LabelModel,
    PolicyWorkloadConfig, Topology,
};
use socialreach::{
    Decision, Enforcer, JoinEngineConfig, JoinIndexEngine, JoinStrategy, OnlineEngine, PolicyStore,
};
use std::time::Instant;

fn main() {
    // Departments as communities: dense `colleague` ties inside a
    // department, `works_with` bridges across, sparse `manages` edges.
    let spec = GraphSpec {
        topology: Topology::Community {
            nodes: 2_000,
            communities: 40,
            p_in: 0.15,
            bridges: 600,
        },
        labels: LabelModel::CommunityAware {
            intra: "colleague".into(),
            inter: "works_with".into(),
            extra: "manages".into(),
            extra_per_100: 8,
        },
        attributes: AttributeModel::osn_default(),
        reciprocity: 0.9,
        seed: 2026,
    };
    let mut g = spec.build();
    println!(
        "directory: {} members, {} relationships, labels = {:?}",
        g.num_nodes(),
        g.num_edges(),
        g.vocab().labels().map(|(_, n)| n).collect::<Vec<_>>()
    );

    // Random policies in the enterprise's own vocabulary.
    let mut store = PolicyStore::new();
    let mut rng = StdRng::seed_from_u64(7);
    let cfg = PolicyWorkloadConfig {
        num_resources: 30,
        rules_per_resource: 1,
        steps: (1, 2),
        out_prob: 1.0,
        both_prob: 0.0,
        deep_prob: 0.3,
        pred_prob: 0.3,
    };
    let rids = generate_policies(&mut g, &mut store, &cfg, &mut rng);
    let requests = requests_with_grant_rate(&g, &store, &rids, 300, 0.5, &mut rng);
    println!(
        "policies: {} resources, {} rules; requests: {} (50% grants)",
        store.num_resources(),
        store.num_rules(),
        requests.len()
    );

    // Engine 1: online BFS.
    let online = Enforcer::new(OnlineEngine);
    let t0 = Instant::now();
    let mut grants = 0;
    for r in &requests {
        if online
            .check_access(&g, &store, r.resource, r.requester)
            .expect("ok")
            == Decision::Grant
        {
            grants += 1;
        }
    }
    let online_time = t0.elapsed();

    // Engine 2: the paper's join index (adjacency traversal strategy).
    let t0 = Instant::now();
    let indexed = Enforcer::new(JoinIndexEngine::build(
        &g,
        JoinEngineConfig {
            strategy: JoinStrategy::AdjacencyOnly,
            ..JoinEngineConfig::default()
        },
    ));
    let build_time = t0.elapsed();
    let t0 = Instant::now();
    let mut grants_indexed = 0;
    for r in &requests {
        if indexed
            .check_access(&g, &store, r.resource, r.requester)
            .expect("ok")
            == Decision::Grant
        {
            grants_indexed += 1;
        }
    }
    let indexed_time = t0.elapsed();

    assert_eq!(grants, grants_indexed, "engines must agree");
    assert_eq!(grants, requests.len() / 2, "workload targets 50% grants");
    println!(
        "\nonline:      {online_time:?} for {} requests",
        requests.len()
    );
    println!(
        "join index:  {indexed_time:?} (+ {build_time:?} one-off build, {} line vertices)",
        indexed.engine().index().line().num_nodes()
    );
    println!("grants: {grants}/{len}", len = requests.len());
}
