//! Ad-hoc audience queries in the openCypher-flavored syntax, served
//! identically by every deployment shape.
//!
//! A recruiter at a small company wants one-off answers — *"who can my
//! posting reach through friends-of-friends?"*, *"which adults do my
//! colleagues' colleagues include?"* — without registering resources
//! or rewriting policy. The `query` entry point evaluates a `MATCH`
//! pattern (or a classic path expression) anchored at a member,
//! read-only: nothing is interned, nothing is logged, and a query
//! naming a relationship type the graph never saw simply has an empty
//! audience.
//!
//! The whole bundle is compiled into **one shared-prefix plan**, so
//! queries that start with the same steps share a single traversal.
//! Three deployments — the single graph, a 3-shard partition, and a
//! 2-shard networked fleet behind real sockets — must return the same
//! audiences for the same bundle.
//!
//! ```text
//! cargo run --example audience_queries
//! ```

use socialreach::core::remote::spawn_local_fleet;
use socialreach::{AttrValue, Deployment, MutateService, NodeId, ServiceInstance};

/// A small recruiting graph: a friendship chain, a colleague cluster,
/// and a few followers, with ages on some members.
fn populate(svc: &mut dyn MutateService) -> Vec<NodeId> {
    let names = ["Ava", "Ben", "Cleo", "Dan", "Edith", "Femi", "Gus", "Hana"];
    let m: Vec<NodeId> = names.iter().map(|n| svc.add_user(n)).collect();
    svc.add_mutual_relationship(m[0], "friend", m[1]);
    svc.add_mutual_relationship(m[1], "friend", m[2]);
    svc.add_relationship(m[2], "friend", m[3]);
    svc.add_relationship(m[1], "colleague", m[4]);
    svc.add_relationship(m[4], "colleague", m[5]);
    svc.add_relationship(m[6], "follows", m[0]);
    svc.add_relationship(m[7], "follows", m[6]);
    for (i, age) in [(1usize, 34i64), (2, 26), (3, 17), (4, 41), (5, 19)] {
        svc.set_user_attr(m[i], "age", AttrValue::Int(age));
    }
    m
}

fn main() {
    // The networked leg: two shard servers on loopback sockets.
    let handles = spawn_local_fleet(2, false).expect("fleet spawns");
    let addrs: Vec<_> = handles.iter().map(|h| h.addr().clone()).collect();

    let mut backends: Vec<ServiceInstance> = vec![
        Deployment::online().build(),
        Deployment::sharded(3, 7).build(),
        Deployment::networked_with(addrs, 7).build(),
    ];
    let mut members = Vec::new();
    for svc in &mut backends {
        members = populate(svc.writes());
    }
    let ava = members[0];

    // One bundle, mixed syntaxes. The first three share the
    // `friend*1..2` prefix — the plan walks it once and forks.
    let queries: Vec<(NodeId, &str)> = vec![
        (ava, "MATCH (owner)-[:friend*1..2]->(v)"),
        (ava, "MATCH (owner)-[:friend*1..2]->(v {age >= 18})"),
        (
            ava,
            "MATCH (owner)-[:friend*1..2]->(v)-[:colleague*1..2]->(w)",
        ),
        (ava, "friend+[1,2]/colleague+[1]"),
        (ava, "MATCH (owner)<-[:follows*1..2]-(v)"),
        (ava, "MATCH (owner)-[:mentored*1..3]->(v)"), // never interned
    ];

    let mut all: Vec<Vec<Vec<NodeId>>> = Vec::new();
    for svc in &backends {
        let audiences = svc
            .reads()
            .query_audience_bundle(&queries)
            .expect("queries evaluate");
        all.push(audiences);
    }

    // Every deployment answers the whole bundle identically.
    for (svc, audiences) in backends.iter().zip(&all) {
        assert_eq!(
            audiences,
            &all[0],
            "{} must answer the bundle like the single graph",
            svc.reads().describe()
        );
    }

    // Spot-check the semantics on the single-graph leg.
    let reads = backends[0].reads();
    let names = |aud: &[NodeId]| {
        aud.iter()
            .map(|&n| reads.member_name(n).to_owned())
            .collect::<Vec<_>>()
            .join(", ")
    };
    assert!(
        all[0][0].contains(&members[2]),
        "friends-of-friends reach Cleo"
    );
    assert!(
        all[0][1].iter().all(|n| all[0][0].contains(n)),
        "the age gate only narrows the plain audience"
    );
    assert!(all[0][4].contains(&members[7]), "follows*2 reaches Hana");
    assert_eq!(
        all[0][5],
        vec![],
        "unknown relationship type → empty audience"
    );

    for ((_, text), audience) in queries.iter().zip(&all[0]) {
        println!("{text}\n  -> [{}]", names(audience));
    }
    println!(
        "AUDIENCE QUERIES PASS ({} deployments agree on {} queries)",
        backends.len(),
        queries.len()
    );
}
