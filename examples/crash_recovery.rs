//! Crash-recovery drill: populate a durable deployment (optionally
//! aborting mid-stream to simulate a crash), then recover it in a
//! fresh process and audit every decision against ground truth
//! recomputed from the recovered state itself.
//!
//! ```text
//! cargo run --example crash_recovery -- populate <dir> [crash_after]
//! cargo run --example crash_recovery -- audit <dir>
//! cargo run --example crash_recovery -- timetravel <dir>
//! ```
//!
//! `populate` writes a deterministic community graph with a handful of
//! shared resources through the write-ahead-logged service, snapshots
//! halfway, and — when `crash_after` is given — calls
//! `std::process::abort()` after that many mutations, leaving whatever
//! the WAL captured. `audit` recovers the directory, prints the
//! recovery report, regenerates a seeded request stream whose expected
//! outcomes come from the *recovered* canonical graph, and replays it
//! through the serving backend: any divergence between recovered state
//! and recovered backend fails the audit. A populate → kill → audit
//! round-trip is the crash-safety smoke test CI runs.
//!
//! `timetravel` drills the point-in-time read surface over a
//! populated directory: it recovers the state one record before the
//! present (`Deployment::durable_at`), asserts the historical album
//! audience differs from the present one (the final populate record
//! is an age overwrite that revokes a member), compacts the log at
//! its snapshot-anchored horizon, shows that pre-base positions
//! become typed refusals, and finishes with the same full replay
//! audit — the compacted directory must still recover faithfully.

use rand::rngs::StdRng;
use rand::SeedableRng;
use socialreach::workload::{compare_replays, replay_requests, uniform_requests};
use socialreach::{Deployment, DurableService, ResourceId};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.iter().map(String::as_str).collect::<Vec<_>>()[..] {
        ["populate", dir] => populate(dir, None),
        ["populate", dir, crash_after] => match crash_after.parse() {
            Ok(k) => populate(dir, Some(k)),
            Err(_) => usage(),
        },
        ["audit", dir] => audit(dir),
        ["timetravel", dir] => timetravel(dir),
        _ => usage(),
    }
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: crash_recovery populate <dir> [crash_after] | audit <dir> | timetravel <dir>"
    );
    ExitCode::from(2)
}

/// A `MutateService` shim that counts mutations and aborts the process
/// at the configured point — the crash injector.
struct CrashingWrites<'a> {
    svc: &'a mut DurableService,
    done: u64,
    crash_after: Option<u64>,
}

impl CrashingWrites<'_> {
    fn tick(&mut self) {
        self.done += 1;
        if self.crash_after == Some(self.done) {
            eprintln!("crash_recovery: aborting after {} mutations", self.done);
            std::process::abort();
        }
    }

    fn user(&mut self, name: &str) -> socialreach::NodeId {
        let id = self.svc.writes().add_user(name);
        self.tick();
        id
    }

    fn edge(&mut self, src: socialreach::NodeId, label: &str, dst: socialreach::NodeId) {
        self.svc.writes().add_relationship(src, label, dst);
        self.tick();
    }

    fn attr(&mut self, user: socialreach::NodeId, key: &str, value: i64) {
        self.svc.writes().set_user_attr(user, key, value.into());
        self.tick();
    }

    fn resource(&mut self, owner: socialreach::NodeId) -> ResourceId {
        let rid = self.svc.writes().add_resource(owner);
        self.tick();
        rid
    }

    fn rule(&mut self, rid: ResourceId, path: &str) {
        self.svc.writes().add_rule(rid, path).expect("valid rule");
        self.tick();
    }
}

fn populate(dir: &str, crash_after: Option<u64>) -> ExitCode {
    let mut svc = match deployment().durable(dir) {
        Ok(svc) => svc,
        Err(e) => {
            eprintln!("error: opening {dir}: {e}");
            return ExitCode::from(2);
        }
    };
    let mut w = CrashingWrites {
        svc: &mut svc,
        done: 0,
        crash_after,
    };

    // Two ring communities bridged by colleagues, with attribute-gated
    // and disjunctive policies — deterministic, so every run (and every
    // crash prefix of a run) is a prefix of the same history.
    let a: Vec<_> = (0..12).map(|i| w.user(&format!("a{i}"))).collect();
    for i in 0..12 {
        w.edge(a[i], "friend", a[(i + 1) % 12]);
    }
    let b: Vec<_> = (0..8).map(|i| w.user(&format!("b{i}"))).collect();
    for i in 0..7 {
        w.edge(b[i], "friend", b[i + 1]);
    }
    w.edge(a[3], "colleague", b[0]);
    w.edge(b[4], "colleague", a[9]);
    for (i, &m) in a.iter().enumerate() {
        w.attr(m, "age", 15 + 3 * i as i64);
    }
    let album = w.resource(a[0]);
    w.rule(album, "friend+[1..4]{age>=21}");
    let feed = w.resource(a[3]);
    w.rule(feed, "friend+[1,2]");
    w.rule(feed, "colleague*[1]/friend+[1..3]");
    let memo = w.resource(b[0]);
    w.rule(memo, "friend+[1..8]");

    // Snapshot now, then keep writing: recovery exercises snapshot +
    // WAL-suffix replay. The crash counter carries across the
    // snapshot.
    let done = w.done;
    svc.snapshot().expect("snapshot persists");
    let mut w = CrashingWrites {
        svc: &mut svc,
        done,
        crash_after,
    };
    let c: Vec<_> = (0..4).map(|i| w.user(&format!("c{i}"))).collect();
    w.edge(c[0], "follows", a[0]);
    w.edge(c[1], "follows", c[0]);
    w.edge(c[2], "friend", c[3]);
    let wall = w.resource(a[0]);
    w.rule(wall, "follows-[1,2]");
    // The final record revokes a2 from the age-gated album — so the
    // state one position back answers differently than the present,
    // which is what the `timetravel` drill asserts.
    w.attr(a[2], "age", 16);

    println!(
        "populated {} members, {} resources, {} WAL records in {dir}",
        svc.graph().num_nodes(),
        svc.store().num_resources(),
        svc.wal_records()
    );
    ExitCode::SUCCESS
}

fn audit(dir: &str) -> ExitCode {
    let svc = match deployment().durable(dir) {
        Ok(svc) => svc,
        Err(e) => {
            eprintln!("error: recovery failed: {e}");
            return ExitCode::from(2);
        }
    };
    let report = svc.recovery_report();
    match &report.snapshot_loaded {
        Some((name, covered)) => println!(
            "recovered from {name} (covers {covered} records) + {} replayed",
            report.records_replayed
        ),
        None => println!(
            "recovered from empty state + {} replayed",
            report.records_replayed
        ),
    }
    for (name, err) in &report.snapshots_skipped {
        println!("skipped {name}: {err}");
    }
    if let Some(torn) = &report.torn_tail {
        println!(
            "discarded torn tail at byte {}: {}",
            torn.offset, torn.detail
        );
    }

    let rids: Vec<ResourceId> = svc.store().resources().map(|(rid, _)| rid).collect();
    if rids.is_empty() || svc.graph().num_nodes() == 0 {
        println!("nothing recovered to audit (empty state)");
        return ExitCode::SUCCESS;
    }

    // Ground truth comes from the recovered canonical graph; the
    // decisions come from the recovered serving backend. Faithful
    // replay means recovery left the two in perfect agreement.
    let mut rng = StdRng::seed_from_u64(0xD15A57E5);
    let requests = uniform_requests(svc.graph(), svc.store(), &rids, 400, &mut rng);
    let replay = match replay_requests(svc.reads(), &requests, 4) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: replay failed: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "audited {} requests: {} grants, {} denies, {} mismatches",
        replay.requests,
        replay.grants,
        replay.denies,
        replay.mismatches.len()
    );
    if replay.is_faithful() {
        println!("AUDIT PASS");
        ExitCode::SUCCESS
    } else {
        eprintln!("AUDIT FAIL: recovered backend diverges from recovered state");
        ExitCode::FAILURE
    }
}

fn timetravel(dir: &str) -> ExitCode {
    let deployment = deployment();
    let album = ResourceId(0);
    let mut svc = match deployment.durable(dir) {
        Ok(svc) => svc,
        Err(e) => {
            eprintln!("error: recovery failed: {e}");
            return ExitCode::from(2);
        }
    };
    let present_position = svc.wal_records();
    if present_position == 0 {
        eprintln!("error: {dir} holds no history; run populate first");
        return ExitCode::from(2);
    }
    let present = svc.reads().audience(album).expect("present audience reads");

    // One record back: populate's final record is the age overwrite
    // that revoked a2, so the historical audience must be larger.
    let mid = present_position - 1;
    let past_svc = match deployment.durable_at(dir, mid) {
        Ok(svc) => svc,
        Err(e) => {
            eprintln!("error: historical recovery at {mid} failed: {e}");
            return ExitCode::from(2);
        }
    };
    let past = past_svc
        .reads()
        .audience(album)
        .expect("historical audience reads");
    println!(
        "album audience: {} members at position {mid}, {} at present ({present_position})",
        past.len(),
        present.len()
    );
    if past == present {
        eprintln!("TIMETRAVEL FAIL: historical audience equals the present one");
        return ExitCode::FAILURE;
    }

    // Drift report: the same request stream answered at both points.
    // Requests the final record decided differently show up as flips.
    let rids: Vec<ResourceId> = svc.store().resources().map(|(rid, _)| rid).collect();
    let mut rng = StdRng::seed_from_u64(0x7173);
    let requests = uniform_requests(svc.graph(), svc.store(), &rids, 200, &mut rng);
    let drift = match compare_replays(past_svc.reads(), svc.reads(), &requests, 4) {
        Ok(drift) => drift,
        Err(e) => {
            eprintln!("error: drift replay failed: {e}");
            return ExitCode::from(2);
        }
    };
    println!(
        "replayed {} requests at both positions: {} decisions flipped ({} grants then, {} now)",
        drift.requests,
        drift.flips.len(),
        drift.grants_then,
        drift.grants_now
    );

    // Retention: cut the log at the snapshot-anchored horizon, then
    // show pre-base history refuses loudly instead of answering wrong.
    let report = match svc.compact(present_position) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("error: compaction failed: {e}");
            return ExitCode::from(2);
        }
    };
    let Some((anchor, base)) = report.anchor.clone() else {
        eprintln!("TIMETRAVEL FAIL: no snapshot anchored the compaction");
        return ExitCode::FAILURE;
    };
    println!(
        "compacted at {base} (anchor {anchor}): dropped {} records, deleted {} snapshots",
        report.records_dropped,
        report.snapshots_deleted.len()
    );
    if base > 0 {
        match deployment.durable_at(dir, base - 1) {
            Err(socialreach::DurabilityError::HistoryCompacted { .. }) => {
                println!("position {} is below the horizon: typed refusal", base - 1);
            }
            Err(e) => {
                eprintln!("error: expected HistoryCompacted below the base, got {e}");
                return ExitCode::from(2);
            }
            Ok(_) => {
                eprintln!("TIMETRAVEL FAIL: pre-base position recovered silently");
                return ExitCode::FAILURE;
            }
        }
    }

    // The historical read above the base still works on the compacted
    // log, and full recovery still replays faithfully.
    drop(svc);
    match deployment.durable_at(dir, mid) {
        Ok(again) => {
            let audience = again
                .reads()
                .audience(album)
                .expect("post-compaction historical reads");
            if audience != past {
                eprintln!("TIMETRAVEL FAIL: compaction changed a historical answer");
                return ExitCode::FAILURE;
            }
        }
        Err(e) => {
            eprintln!("error: post-compaction historical recovery failed: {e}");
            return ExitCode::from(2);
        }
    }
    audit(dir)
}

/// Honors `SOCIALREACH_SHARDS` like the CLI, so the drill can run
/// against either deployment shape.
fn deployment() -> Deployment {
    match std::env::var("SOCIALREACH_SHARDS")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .filter(|&n| n > 0)
    {
        Some(n) => Deployment::sharded(n, 0),
        None => Deployment::online(),
    }
}
