//! Photo sharing on the paper's own Figure 1 subgraph.
//!
//! Replays the paper's running examples end to end:
//! * Q1 (Figure 2): *"the colleagues of Alice's friends within 2 hops"*;
//! * the §3.4 worked query: *"the friends of her friends' parents"*,
//!   which grants George through Alice → Colin → Fred → George;
//! * a denial with the reason surfaced to the user.
//!
//! ```text
//! cargo run --example photo_sharing
//! ```

use socialreach::core::examples::paper_graph;
use socialreach::{
    AccessEngine, Decision, Enforcer, JoinEngineConfig, JoinIndexEngine, JoinStrategy,
    OnlineEngine, PolicyStore,
};

fn main() {
    let mut g = paper_graph();
    println!(
        "Figure 1 graph: {} members, {} relationships",
        g.num_nodes(),
        g.num_edges()
    );

    let alice = g.node_by_name("Alice").expect("Alice");
    let mut store = PolicyStore::new();

    // Alice's birthday photos: colleagues of her friends (Q1).
    let photos = store.register_resource(alice);
    store
        .allow(photos, "friend+[1,2]/colleague+[1]", &mut g)
        .expect("valid policy");

    // Alice's jokes: friends of her friends' parents (§3.4).
    let jokes = store.register_resource(alice);
    store
        .allow(jokes, "friend+[1]/parent+[1]/friend+[1]", &mut g)
        .expect("valid policy");

    // Two engines, same decisions.
    let online = Enforcer::new(OnlineEngine);
    let indexed = Enforcer::new(JoinIndexEngine::build(
        &g,
        JoinEngineConfig {
            strategy: JoinStrategy::AdjacencyOnly,
            ..JoinEngineConfig::default()
        },
    ));
    println!(
        "join index: {} line vertices, engine = {}",
        indexed.engine().index().line().num_nodes(),
        indexed.engine().name(),
    );

    for (rid, label) in [(photos, "birthday photos"), (jokes, "jokes")] {
        println!("\n== {label} ==");
        for name in ["Bill", "Colin", "David", "Elena", "Fred", "George"] {
            let user = g.node_by_name(name).expect("member");
            let d1 = online.check_access(&g, &store, rid, user).expect("ok");
            let d2 = indexed.check_access(&g, &store, rid, user).expect("ok");
            assert_eq!(d1, d2, "engines must agree on {name}");
            println!("  {name:>6} -> {d1:?}");
        }
    }

    // The paper's two headline answers:
    let fred = g.node_by_name("Fred").expect("Fred");
    let george = g.node_by_name("George").expect("George");
    assert_eq!(
        online.check_access(&g, &store, photos, fred).expect("ok"),
        Decision::Grant,
        "Q1 grants Fred"
    );
    assert_eq!(
        online.check_access(&g, &store, jokes, george).expect("ok"),
        Decision::Grant,
        "§3.4 grants George"
    );
    assert_eq!(
        online.check_access(&g, &store, photos, george).expect("ok"),
        Decision::Deny,
        "George is not a colleague of Alice's friends"
    );
    println!("\nQ1 grants Fred; §3.4 grants George — matching the paper.");
}
