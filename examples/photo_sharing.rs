//! Photo sharing on the paper's own Figure 1 subgraph.
//!
//! Replays the paper's running examples end to end:
//! * Q1 (Figure 2): *"the colleagues of Alice's friends within 2 hops"*;
//! * the §3.4 worked query: *"the friends of her friends' parents"*,
//!   which grants George through Alice → Colin → Fred → George;
//! * a denial with the reason surfaced to the user.
//!
//! Three deployments of the service API answer the same requests — the
//! online single-graph backend, the paper's join index, and a two-shard
//! partition — and must agree on every decision.
//!
//! ```text
//! cargo run --example photo_sharing
//! ```

use socialreach::core::examples::paper_graph;
use socialreach::{
    Decision, Deployment, EngineChoice, JoinEngineConfig, JoinStrategy, PolicyStore,
};

fn main() {
    let mut g = paper_graph();
    println!(
        "Figure 1 graph: {} members, {} relationships",
        g.num_nodes(),
        g.num_edges()
    );

    let alice = g.node_by_name("Alice").expect("Alice");
    let mut store = PolicyStore::new();

    // Alice's birthday photos: colleagues of her friends (Q1).
    let photos = store.register_resource(alice);
    store
        .allow(photos, "friend+[1,2]/colleague+[1]", &mut g)
        .expect("valid policy");

    // Alice's jokes: friends of her friends' parents (§3.4).
    let jokes = store.register_resource(alice);
    store
        .allow(jokes, "friend+[1]/parent+[1]/friend+[1]", &mut g)
        .expect("valid policy");

    // Three deployments, same decisions.
    let deployments = [
        Deployment::online(),
        Deployment::single(EngineChoice::JoinIndex(JoinEngineConfig {
            strategy: JoinStrategy::AdjacencyOnly,
            ..JoinEngineConfig::default()
        })),
        Deployment::sharded(2, 1),
    ];
    let backends: Vec<_> = deployments
        .iter()
        .map(|d| d.from_graph(&g, store.clone()))
        .collect();
    let online = backends[0].reads();

    for (rid, label) in [(photos, "birthday photos"), (jokes, "jokes")] {
        println!("\n== {label} ==");
        for name in ["Bill", "Colin", "David", "Elena", "Fred", "George"] {
            let user = online.resolve_user(name).expect("member");
            let d1 = online.check(rid, user).expect("ok");
            for other in &backends[1..] {
                let d2 = other.reads().check(rid, user).expect("ok");
                assert_eq!(
                    d1,
                    d2,
                    "{} must agree with {} on {name}",
                    other.reads().describe(),
                    online.describe()
                );
            }
            println!("  {name:>6} -> {d1:?}");
        }
    }

    // The paper's two headline answers:
    let fred = online.resolve_user("Fred").expect("Fred");
    let george = online.resolve_user("George").expect("George");
    assert_eq!(
        online.check(photos, fred).expect("ok"),
        Decision::Grant,
        "Q1 grants Fred"
    );
    assert_eq!(
        online.check(jokes, george).expect("ok"),
        Decision::Grant,
        "§3.4 grants George"
    );
    assert_eq!(
        online.check(photos, george).expect("ok"),
        Decision::Deny,
        "George is not a colleague of Alice's friends"
    );
    // And the grant is explainable on every deployment, with the same
    // witness walk text.
    let walk = online
        .explain_lines(jokes, george)
        .expect("ok")
        .expect("granted");
    for other in &backends[1..] {
        // The join index keeps no witnesses; explain always evaluates
        // online — another thing the trait makes uniform.
        let theirs = other
            .reads()
            .explain_lines(jokes, george)
            .expect("ok")
            .expect("granted");
        assert_eq!(walk, theirs, "{}", other.reads().describe());
    }
    println!("\nwhy George: {}", walk.join("; "));
    println!("Q1 grants Fred; §3.4 grants George — matching the paper.");
}
