//! Audit-trail drill: record a history whose audiences change over
//! time, then answer compliance questions from the durable log —
//! *who could see this resource after record k?* — without touching
//! the live state.
//!
//! ```text
//! cargo run --example audit_trail -- [dir]
//! ```
//!
//! The drill writes an age-gated policy, revokes a member by
//! overwriting his age, admits another through a late edge, and then:
//! walks the `history`, recovers the past with `durable_at`, diffs
//! the audience between two positions (`audience_diff`), shows the
//! typed refusals for out-of-range positions, compacts the log at a
//! snapshot-anchored horizon, and proves the compacted directory
//! still answers both present and historical reads. Every claim is
//! asserted — a failing drill panics — and the final line is
//! `AUDIT TRAIL PASS`, which CI greps for.

use socialreach::{read_history, Decision, Deployment, DurabilityError};
use std::process::ExitCode;

fn main() -> ExitCode {
    let dir = std::env::args().nth(1).unwrap_or_else(|| {
        std::env::temp_dir()
            .join(format!("socialreach-audit-trail-{}", std::process::id()))
            .to_string_lossy()
            .into_owned()
    });
    let _ = std::fs::remove_dir_all(&dir);
    let deployment = Deployment::online();

    // ------------------------------------------------------------------
    // Record a history. Every mutation is one WAL record; the comments
    // track the absolute positions the audit below addresses.
    // ------------------------------------------------------------------
    let mut svc = deployment.durable(&dir).expect("open durable dir");
    let w = svc.writes();
    let ava = w.add_user("Ava");
    let ben = w.add_user("Ben");
    let cleo = w.add_user("Cleo");
    let dan = w.add_user("Dan");
    w.add_relationship(ava, "friend", ben);
    w.add_relationship(ben, "friend", cleo);
    w.set_user_attr(ben, "age", 25i64.into());
    w.set_user_attr(cleo, "age", 30i64.into());
    let album = w.add_resource(ava);
    w.add_rule(album, "friend+[1,2]{age>=18}")
        .expect("valid rule");
    let granted_at = svc.wal_records(); // Ben and Cleo can see the album
    svc.snapshot().expect("snapshot persists"); // the compaction anchor
    let w = svc.writes();
    w.set_user_attr(ben, "age", 15i64.into()); // Ben revoked
    w.add_relationship(ava, "friend", dan);
    w.set_user_attr(dan, "age", 40i64.into()); // Dan admitted
    let present = svc.wal_records();

    // ------------------------------------------------------------------
    // Who changed what: the history, with positions.
    // ------------------------------------------------------------------
    println!("history of {dir}:");
    for entry in read_history(&dir).expect("history reads") {
        println!("{:>4}  {}", entry.position, entry.record);
    }
    assert_eq!(
        svc.history().expect("history reads").len(),
        present as usize
    );

    // ------------------------------------------------------------------
    // Time travel: the present denies Ben, position `granted_at` does
    // not — the log remembers what he was allowed to see back then.
    // ------------------------------------------------------------------
    assert_eq!(
        svc.reads().check(album, ben).expect("present read"),
        Decision::Deny
    );
    let past = deployment
        .durable_at(&dir, granted_at)
        .expect("historical recovery");
    assert_eq!(
        past.reads().check(album, ben).expect("past read"),
        Decision::Grant
    );
    println!("\nposition {granted_at}: Ben sees the album; position {present}: he does not");

    // ------------------------------------------------------------------
    // The audience diff names who entered, left and stayed.
    // ------------------------------------------------------------------
    let diff = deployment
        .audience_diff(&dir, album, granted_at, present)
        .expect("audience diff");
    assert_eq!(diff.left, vec![ben]);
    assert_eq!(diff.entered, vec![dan]);
    assert!(diff.retained.contains(&cleo));
    let names = |members: &[socialreach::NodeId]| {
        members
            .iter()
            .map(|&m| past.reads().member_name(m))
            .collect::<Vec<_>>()
            .join(", ")
    };
    println!(
        "album audience {granted_at} -> {present}: entered [{}], left [{}], retained [{}]",
        names(&diff.entered),
        names(&diff.left),
        names(&diff.retained)
    );

    // ------------------------------------------------------------------
    // Out-of-range positions are typed refusals, not wrong answers.
    // ------------------------------------------------------------------
    match deployment.durable_at(&dir, present + 1) {
        Err(DurabilityError::PositionBeyondHistory { available, .. }) => {
            assert_eq!(available, present);
        }
        other => panic!("expected PositionBeyondHistory, got {:?}", other.err()),
    }

    // ------------------------------------------------------------------
    // Retention: compact at the snapshot-anchored horizon. History
    // below the new base becomes a typed refusal; everything at or
    // above it — including the audit read that just ran — survives.
    // ------------------------------------------------------------------
    let report = svc.compact(present).expect("compaction");
    let (anchor, base) = report.anchor.clone().expect("snapshot anchors the cut");
    assert_eq!(base, granted_at);
    println!(
        "compacted at {base} (anchor {anchor}): dropped {} records",
        report.records_dropped
    );
    match deployment.durable_at(&dir, base - 1) {
        Err(DurabilityError::HistoryCompacted {
            requested, base: b, ..
        }) => assert_eq!((requested, b), (base - 1, base)),
        other => panic!("expected HistoryCompacted, got {:?}", other.err()),
    }
    drop(svc);

    // The compacted directory still recovers the present and the past.
    let recovered = deployment.durable(&dir).expect("compacted recovery");
    assert_eq!(
        recovered.reads().check(album, ben).expect("present read"),
        Decision::Deny
    );
    assert_eq!(
        recovered.reads().check(album, dan).expect("present read"),
        Decision::Grant
    );
    let past_again = deployment
        .durable_at(&dir, base)
        .expect("anchor position recovers");
    assert_eq!(
        past_again.reads().check(album, ben).expect("past read"),
        Decision::Grant
    );
    drop(recovered);

    let _ = std::fs::remove_dir_all(&dir);
    println!("AUDIT TRAIL PASS");
    ExitCode::SUCCESS
}
