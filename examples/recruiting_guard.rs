//! The paper's §1 motivation, inverted: *"many employers tend to search
//! for their candidates on social networking sites before they hire
//! them"*. A candidate locks down politically sensitive posts so that
//! recruiters — reachable only through professional edges — never see
//! them, while close friends still do.
//!
//! Also demonstrates incoming-direction steps (`-`), unbounded depth
//! (`[1..]`), and audience diffing before/after a policy change.
//!
//! ```text
//! cargo run --example recruiting_guard
//! ```

use socialreach::{AccessControlSystem, Decision};

fn names(sys: &AccessControlSystem, audience: &[socialreach::NodeId]) -> Vec<String> {
    audience
        .iter()
        .map(|&n| sys.graph().node_name(n).to_owned())
        .collect()
}

fn main() {
    let mut sys = AccessControlSystem::new_online();

    // The candidate and her circle.
    let nadia = sys.add_user("Nadia");
    let samir = sys.add_user("Samir"); // close friend
    let lena = sys.add_user("Lena"); // friend of Samir
    let omar = sys.add_user("Omar"); // colleague
    let hr_bot = sys.add_user("AcmeHR"); // recruiter following her
    let headhunter = sys.add_user("HeadHunter");

    sys.connect_mutual(nadia, "friend", samir);
    sys.connect_mutual(samir, "friend", lena);
    sys.connect_mutual(nadia, "colleague", omar);
    sys.connect(hr_bot, "follows", nadia);
    sys.connect(headhunter, "follows", hr_bot);

    // A spicy post: friends only, any friend distance (the friend
    // subgraph is her trust domain).
    let post = sys.share(nadia);
    sys.allow(post, "friend+[1..]").expect("valid policy");

    let audience = sys.audience(post).expect("evaluates");
    println!("friends-only audience: {:?}", names(&sys, &audience));
    for (user, expected) in [
        (samir, Decision::Grant),
        (lena, Decision::Grant), // friend-of-friend: still in the friend domain
        (omar, Decision::Deny),
        (hr_bot, Decision::Deny),
        (headhunter, Decision::Deny),
    ] {
        let d = sys.check(post, user).expect("evaluates");
        assert_eq!(d, expected, "{}", sys.graph().node_name(user));
        println!("  {:>10} -> {d:?}", sys.graph().node_name(user));
    }

    // Her CV is the opposite: she *wants* recruiters to see it. People
    // who follow her (incoming edges!) and their followers qualify,
    // as do colleagues.
    let cv = sys.share(nadia);
    sys.allow(cv, "follows-[1,2]").expect("valid policy");
    sys.allow(cv, "colleague*[1]").expect("valid policy");

    let cv_audience = sys.audience(cv).expect("evaluates");
    println!("\nCV audience: {:?}", names(&sys, &cv_audience));
    for (user, expected) in [
        (hr_bot, Decision::Grant),     // follows Nadia
        (headhunter, Decision::Grant), // follows a follower
        (omar, Decision::Grant),       // colleague
        (lena, Decision::Deny),        // friend-of-friend is not a recruiter path
    ] {
        let d = sys.check(cv, user).expect("evaluates");
        assert_eq!(d, expected, "{}", sys.graph().node_name(user));
        println!("  {:>10} -> {d:?}", sys.graph().node_name(user));
    }

    // The graph evolves: Omar leaves the company and becomes a friend.
    // Caches and indexes invalidate automatically.
    let before = sys.check(post, omar).expect("evaluates");
    sys.connect_mutual(nadia, "friend", omar);
    let after = sys.check(post, omar).expect("evaluates");
    println!("\nOmar on the spicy post: {before:?} -> {after:?} after becoming a friend");
    assert_eq!(before, Decision::Deny);
    assert_eq!(after, Decision::Grant);
}
