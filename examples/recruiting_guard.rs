//! The paper's §1 motivation, inverted: *"many employers tend to search
//! for their candidates on social networking sites before they hire
//! them"*. A candidate locks down politically sensitive posts so that
//! recruiters — reachable only through professional edges — never see
//! them, while close friends still do.
//!
//! Also demonstrates incoming-direction steps (`-`), unbounded depth
//! (`[1..]`), audience diffing before/after a policy change, and the
//! deployment-agnostic service API the scenario is written against.
//!
//! ```text
//! cargo run --example recruiting_guard
//! ```

use socialreach::{AccessService, Decision, Deployment, MutateService};

fn names(reads: &dyn AccessService, audience: &[socialreach::NodeId]) -> Vec<String> {
    audience
        .iter()
        .map(|&n| reads.member_name(n).to_owned())
        .collect()
}

fn main() {
    let mut svc = Deployment::online().build();

    // The candidate and her circle.
    let nadia = svc.add_user("Nadia");
    let samir = svc.add_user("Samir"); // close friend
    let lena = svc.add_user("Lena"); // friend of Samir
    let omar = svc.add_user("Omar"); // colleague
    let hr_bot = svc.add_user("AcmeHR"); // recruiter following her
    let headhunter = svc.add_user("HeadHunter");

    svc.add_mutual_relationship(nadia, "friend", samir);
    svc.add_mutual_relationship(samir, "friend", lena);
    svc.add_mutual_relationship(nadia, "colleague", omar);
    svc.add_relationship(hr_bot, "follows", nadia);
    svc.add_relationship(headhunter, "follows", hr_bot);

    // A spicy post: friends only, any friend distance (the friend
    // subgraph is her trust domain).
    let post = svc.add_resource(nadia);
    svc.add_rule(post, "friend+[1..]").expect("valid policy");

    let audience = svc.reads().audience(post).expect("evaluates");
    println!("friends-only audience: {:?}", names(svc.reads(), &audience));
    for (user, expected) in [
        (samir, Decision::Grant),
        (lena, Decision::Grant), // friend-of-friend: still in the friend domain
        (omar, Decision::Deny),
        (hr_bot, Decision::Deny),
        (headhunter, Decision::Deny),
    ] {
        let d = svc.reads().check(post, user).expect("evaluates");
        assert_eq!(d, expected, "{}", svc.reads().member_name(user));
        println!("  {:>10} -> {d:?}", svc.reads().member_name(user));
    }

    // Her CV is the opposite: she *wants* recruiters to see it. People
    // who follow her (incoming edges!) and their followers qualify,
    // as do colleagues.
    let cv = svc.add_resource(nadia);
    svc.add_rule(cv, "follows-[1,2]").expect("valid policy");
    svc.add_rule(cv, "colleague*[1]").expect("valid policy");

    let cv_audience = svc.reads().audience(cv).expect("evaluates");
    println!("\nCV audience: {:?}", names(svc.reads(), &cv_audience));
    for (user, expected) in [
        (hr_bot, Decision::Grant),     // follows Nadia
        (headhunter, Decision::Grant), // follows a follower
        (omar, Decision::Grant),       // colleague
        (lena, Decision::Deny),        // friend-of-friend is not a recruiter path
    ] {
        let d = svc.reads().check(cv, user).expect("evaluates");
        assert_eq!(d, expected, "{}", svc.reads().member_name(user));
        println!("  {:>10} -> {d:?}", svc.reads().member_name(user));
    }

    // The graph evolves: Omar leaves the company and becomes a friend.
    // Caches and indexes invalidate automatically.
    let before = svc.reads().check(post, omar).expect("evaluates");
    svc.add_mutual_relationship(nadia, "friend", omar);
    let after = svc.reads().check(post, omar).expect("evaluates");
    println!("\nOmar on the spicy post: {before:?} -> {after:?} after becoming a friend");
    assert_eq!(before, Decision::Deny);
    assert_eq!(after, Decision::Grant);
}
