//! Quickstart: share a resource under a reachability policy and check a
//! few requests — through the deployment-agnostic service API.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use socialreach::{Decision, Deployment, MutateService, ServiceInstance};

/// The whole scenario, written once against the service traits: which
/// backend serves it is the caller's `Deployment` line.
fn run(mut svc: ServiceInstance) -> Vec<String> {
    println!("== {} ==", svc.reads().describe());

    // 1. Build a small social graph through the write surface.
    let alice = svc.add_user("Alice");
    let bob = svc.add_user("Bob");
    let carol = svc.add_user("Carol");
    let dan = svc.add_user("Dan");
    let eve = svc.add_user("Eve");

    svc.add_mutual_relationship(alice, "friend", bob);
    svc.add_mutual_relationship(bob, "friend", carol);
    svc.add_relationship(carol, "colleague", dan);
    svc.add_relationship(eve, "follows", alice);

    svc.set_user_attr(carol, "age", 26i64.into());
    svc.set_user_attr(dan, "age", 34i64.into());

    // 2. Alice shares her holiday album with friends up to two hops
    //    away, adults only.
    let album = svc.add_resource(alice);
    svc.add_rule(album, "friend+[1,2]{age>=18}")
        .expect("valid policy");

    // 3. Enforce access requests through the read surface.
    let reads = svc.reads();
    for name in ["Bob", "Carol", "Dan", "Eve"] {
        let user = reads.resolve_user(name).expect("user exists");
        let decision = reads.check(album, user).expect("evaluates");
        println!("{name:>5} -> {decision:?}");
        match name {
            "Carol" => assert_eq!(decision, Decision::Grant),
            _ => assert_eq!(decision, Decision::Deny),
        }
    }
    // Bob is a direct friend but has no age attribute: predicates fail
    // closed, so he is denied until his profile says he is an adult.
    svc.set_user_attr(bob, "age", 30i64.into());
    let bob_now = svc.reads().check(album, bob).expect("evaluates");
    println!("  Bob -> {bob_now:?} (after setting age)");
    assert_eq!(bob_now, Decision::Grant);

    // 4. Explain a grant as a concrete walk.
    let reads = svc.reads();
    let explanation = reads
        .explain_lines(album, carol)
        .expect("evaluates")
        .expect("granted");
    println!("why Carol: {}", explanation.join("; "));

    // 5. Materialize the audience.
    let audience = reads.audience(album).expect("evaluates");
    let names: Vec<String> = audience
        .iter()
        .map(|&n| reads.member_name(n).to_owned())
        .collect();
    println!("audience: {names:?}");
    names
}

fn main() {
    // The deployment is the only backend-specific line: one
    // epoch-published graph behind the paper's join index…
    let single = run(Deployment::single(socialreach::EngineChoice::JoinIndex(
        socialreach::JoinEngineConfig::default(),
    ))
    .build());

    // …or three hash-partitioned shards — same script, same answers.
    let sharded = run(Deployment::sharded(3, 7).build());
    assert_eq!(single, sharded, "deployments are interchangeable");
}
