//! Quickstart: share a resource under a reachability policy and check a
//! few requests.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use socialreach::{AccessControlSystem, Decision};

fn main() {
    // 1. Build a small social graph through the facade.
    let mut sys = AccessControlSystem::new_indexed();
    let alice = sys.add_user("Alice");
    let bob = sys.add_user("Bob");
    let carol = sys.add_user("Carol");
    let dan = sys.add_user("Dan");
    let eve = sys.add_user("Eve");

    sys.connect_mutual(alice, "friend", bob);
    sys.connect_mutual(bob, "friend", carol);
    sys.connect(carol, "colleague", dan);
    sys.connect(eve, "follows", alice);

    sys.set_user_attr(carol, "age", 26i64);
    sys.set_user_attr(dan, "age", 34i64);

    // 2. Alice shares her holiday album with friends up to two hops
    //    away, adults only.
    let album = sys.share(alice);
    sys.allow(album, "friend+[1,2]{age>=18}")
        .expect("valid policy");

    // 3. Enforce access requests.
    for name in ["Bob", "Carol", "Dan", "Eve"] {
        let user = sys.user(name).expect("user exists");
        let decision = sys.check(album, user).expect("evaluates");
        println!("{name:>5} -> {decision:?}");
        match name {
            "Carol" => assert_eq!(decision, Decision::Grant),
            _ => assert_eq!(decision, Decision::Deny),
        }
    }
    // Bob is a direct friend but has no age attribute: predicates fail
    // closed, so he is denied until his profile says he is an adult.
    sys.set_user_attr(sys.user("Bob").unwrap(), "age", 30i64);
    let bob_now = sys.check(album, bob).expect("evaluates");
    println!("  Bob -> {bob_now:?} (after setting age)");
    assert_eq!(bob_now, Decision::Grant);

    // 4. Explain a grant as a concrete walk.
    let explanation = sys
        .explain(album, carol)
        .expect("evaluates")
        .expect("granted");
    println!("why Carol: {}", explanation.join("; "));

    // 5. Materialize the audience.
    let audience = sys.audience(album).expect("evaluates");
    let names: Vec<&str> = audience.iter().map(|&n| sys.graph().node_name(n)).collect();
    println!("audience: {names:?}");
}
