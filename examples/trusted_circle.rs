//! The Figure 1 trust annotations put to work: Alice looks for a
//! babysitter, and compares
//!
//! * the **Carminati et al. baseline** (§4 related work): one
//!   relationship type, a radius, and a trust threshold aggregated along
//!   the path; with
//! * the paper's **reachability model**: the same type+depth constraint
//!   as a path expression (`friend*[1..2]`), which cannot express edge
//!   trust — the exact gap the paper's related-work section describes.
//!
//! ```text
//! cargo run --example trusted_circle
//! ```

use socialreach::core::carminati::{self, CarminatiRule, TrustAggregation};
use socialreach::core::examples::paper_graph;
use socialreach::core::{AccessCondition, AccessRule};
use socialreach::{Deployment, Direction, PolicyStore};

fn main() {
    let mut g = paper_graph();

    // Enrich Figure 1's annotations: trust values on the friend edges
    // around Alice (the figure itself shows `Babysitting;0.8` on
    // Alice -> Colin).
    let trust_pairs = [
        ("Alice", "Bill", 0.5f64),
        ("Colin", "David", 0.9),
        ("Bill", "Elena", 0.7),
    ];
    for (src, dst, t) in trust_pairs {
        let s = g.node_by_name(src).unwrap();
        let d = g.node_by_name(dst).unwrap();
        let eid = g
            .out_edges(s)
            .find(|(_, r)| r.dst == d)
            .map(|(e, _)| e)
            .expect("edge exists in Figure 1");
        g.set_edge_attr(eid, "trust", t);
    }

    let alice = g.node_by_name("Alice").expect("Alice");
    let friend = g.vocab().label("friend").expect("friend");

    // Baseline: friends within 2 hops with product trust >= 0.7,
    // following friendship in its stated direction.
    let rule = CarminatiRule {
        label: friend,
        dir: Direction::Out,
        max_depth: 2,
        min_trust: 0.7,
        trust_agg: TrustAggregation::Product,
        default_trust: 1.0,
    };
    let out = carminati::evaluate(&g, alice, &rule);
    println!("Carminati (friend, radius 2, trust >= 0.7):");
    for (i, &n) in out.granted.iter().enumerate() {
        println!("  {:>6}  trust {:.2}", g.node_name(n), out.trust[i]);
    }
    // Colin (0.8) and Colin's friend David (0.8 * 0.9 = 0.72) pass;
    // Bill (0.5) and Bill's friend Elena (0.35) fail the threshold.
    let names: Vec<&str> = out.granted.iter().map(|&n| g.node_name(n)).collect();
    assert_eq!(names, vec!["Colin", "David"]);

    // The reachability model expresses the same audience *shape* —
    // friends up to two hops — but not the trust filter. Serve it as a
    // real policy through the deployment-agnostic service API: a
    // resource of Alice's whose single rule is the translated path.
    let path = rule.to_path_expr();
    println!("\nreachability fragment {}:", path.to_text(g.vocab()));
    let mut store = PolicyStore::new();
    let rid = store.register_resource(alice);
    store
        .add_rule(AccessRule {
            resource: rid,
            conditions: vec![AccessCondition {
                owner: alice,
                path: path.clone(),
            }],
        })
        .expect("resource registered");
    let svc = Deployment::online().from_graph(&g, store);
    let reads = svc.reads();
    let audience = reads.audience(rid).expect("evaluates");
    let names: Vec<&str> = audience.iter().map(|&n| reads.member_name(n)).collect();
    println!("  audience (no trust filter): {names:?}");
    assert!(
        names.contains(&"Bill"),
        "Bill is back without the trust filter"
    );

    // The two models coincide exactly when trust does not discriminate
    // — up to the owner, whom the policy audience always contains:
    let lax = CarminatiRule {
        min_trust: 0.0,
        ..rule
    };
    let lax_out = carminati::evaluate(&g, alice, &lax);
    let with_owner = {
        let mut v = lax_out.granted.clone();
        v.push(alice);
        v.sort_unstable();
        v.dedup();
        v
    };
    assert_eq!(with_owner, audience);
    println!("\nwith min_trust = 0 both models grant the same audience — the");
    println!("baseline is the trust-free fragment of the reachability model.");
}
