//! `socialreach` — command-line front end for reachability-based access
//! control, served through the deployment-agnostic `AccessService` API.
//!
//! ```text
//! socialreach check <edges.tsv> <owner> <path-expr> <requester>
//! socialreach audience <edges.tsv> <owner> <path-expr>
//! socialreach explain <edges.tsv> <owner> <path-expr> <requester>
//! socialreach query <edges.tsv> <owner> <query>
//! socialreach stats <edges.tsv>
//! ```
//!
//! `<edges.tsv>` is an edge list (`src <TAB> label <TAB> dst`, `#`
//! comments allowed; two-column lines default to the label `follows`),
//! or `-` for stdin. `<path-expr>` uses the policy grammar, e.g.
//! `'friend+[1,2]/colleague+[1]'` — or, everywhere a policy is
//! accepted, the openCypher-flavored `MATCH` syntax, e.g.
//! `'MATCH (owner)-[:friend*1..2]->(v {age >= 18})'`. Each
//! invocation of `check`/`audience`/`explain` registers a resource
//! owned by `<owner>` under that rule and serves the request with the
//! full policy semantics — so the owner is always granted, and
//! `audience` always lists the owner.
//!
//! `query` is the **read-only** entry point: it evaluates `<query>`
//! (either syntax) anchored at `<owner>` without registering any
//! resource or rule — nothing is interned, nothing is logged, and a
//! query naming a relationship type the graph has never seen simply
//! has an empty audience. Malformed queries are refused with a
//! caret-annotated parse error.
//!
//! Set `SOCIALREACH_SHARDS=N` to serve the same request from an
//! N-shard deployment instead of the single-graph one; commands,
//! outputs and exit codes are identical — that interchangeability is
//! the point of the service API.
//!
//! Set `SOCIALREACH_PLANNER=adaptive|batch|per-condition` to route
//! reads through the telemetry-fed planner (`adaptive` learns
//! per-resource profiles and picks the winning engine per bundle;
//! `batch`/`per-condition` force one strategy everywhere). The lever
//! applies to the ephemeral serving path; durable deployments
//! (`SOCIALREACH_DATA_DIR`) serve unplanned — the WAL decorator owns
//! that seam.
//!
//! Set `SOCIALREACH_DATA_DIR=<dir>` to serve durably: the edge list is
//! ingested through the write-ahead-logged service (every mutation
//! persists in `<dir>`), and passing `@` as `<edges.tsv>` serves the
//! state recovered from `<dir>` without ingesting anything. The
//! resource/rule registered by the invocation is logged too, so a
//! durable directory accumulates policy across invocations.
//! `SOCIALREACH_CRASH_AFTER=k` aborts the process after the k-th
//! logged ingestion mutation — a crash lever for recovery drills.
//!
//! ## Audit reads over the durable history
//!
//! Set `SOCIALREACH_AUDIT_AT=k` (with `SOCIALREACH_DATA_DIR` and `@`
//! as `<edges.tsv>`) to serve `check`/`audience`/`explain` from the
//! state **as of position k** — after the first `k` logged records —
//! recovered read-only into a throwaway backend; the resource/rule
//! the invocation registers stays ephemeral, nothing is logged. Two
//! verbs walk the history itself:
//!
//! ```text
//! socialreach history [from [to]]      # positions + logged records
//! socialreach diff <rid> <k1> <k2>     # who entered/left an audience
//! ```
//!
//! `history` prints each record with its absolute position (the
//! position is the state *before* the record; `durable_at(k)` and
//! `SOCIALREACH_AUDIT_AT=k` address it). `diff` compares resource
//! `<rid>`'s audience between positions `k1` and `k2`: `+` entered,
//! `-` left, `=` retained. Both honor `SOCIALREACH_SHARDS`. Retention
//! is a library lever — `DurableService::compact(horizon)` truncates
//! history below a snapshot-anchored horizon, after which positions
//! below the new base are typed refusals.
//!
//! ## Shards as processes
//!
//! Two verbs turn the binary into a distributed deployment:
//!
//! ```text
//! socialreach serve-shard <addr>
//! socialreach serve-router <addr1,addr2,..> check    <edges.tsv> <owner> <path-expr> <requester>
//! socialreach serve-router <addr1,addr2,..> audience <edges.tsv> <owner> <path-expr>
//! socialreach serve-router <addr1,addr2,..> explain  <edges.tsv> <owner> <path-expr> <requester>
//! ```
//!
//! `serve-shard` runs one shard server process on `<addr>` — a TCP
//! endpoint (`127.0.0.1:0` picks an ephemeral port) or a Unix domain
//! socket (`unix:/path/sock`). It prints `LISTENING <actual-addr>` on
//! stdout once bound and serves until a `Shutdown` request arrives.
//! `serve-router` drives a fleet of such processes as one deployment:
//! it loads the edge list through the router (two-phase epoch fence per
//! mutation batch), registers the resource/rule, and answers with the
//! same outputs and exit codes as the in-process verbs. Each
//! `serve-router` invocation expects a **freshly started** fleet — a
//! router refuses shards already ahead of its epoch rather than adopt
//! state it did not populate (long-lived routers drive a fleet through
//! the library API instead). See
//! `examples/distributed_drill.rs` for a scripted populate → kill →
//! recover → audit drill over these verbs.
//!
//! Exit codes: 0 = granted / success, 1 = denied, 2 = usage or input
//! error.

use socialreach::graph::ShardAssignment;
use socialreach::workload::read_edge_list;
use socialreach::{
    AccessService, Decision, Deployment, DurableService, MutateService, NetworkedSystem,
    PlannedService, PlannerMode, PolicyStore, ResourceId, ServiceInstance, ShardAddr, ShardServer,
    SocialGraph,
};
use std::io::{Read as _, Write as _};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(granted) => {
            if granted {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage:
  socialreach check    <edges.tsv> <owner> <path-expr> <requester>
  socialreach audience <edges.tsv> <owner> <path-expr>
  socialreach explain  <edges.tsv> <owner> <path-expr> <requester>
  socialreach query    <edges.tsv> <owner> <query>
  socialreach stats    <edges.tsv>
  socialreach history  [from [to]]
  socialreach diff     <rid> <k1> <k2>
  socialreach serve-shard  <addr>
  socialreach serve-router <addr1,addr2,..> check|audience|explain|query <edges.tsv> <owner> <path-expr> [requester]

<edges.tsv>: 'src<TAB>label<TAB>dst' lines ('-' reads stdin,
             '@' serves the recovered SOCIALREACH_DATA_DIR state);
<path-expr>: e.g. 'friend+[1,2]/colleague+[1]{age>=18}', or openCypher
  'MATCH (owner)-[:friend*1..2]->(v {age >= 18})' — both
  syntaxes work wherever a policy or query is accepted;
<query>: a read-only audience query in either syntax — evaluated
  anchored at <owner> without registering a resource or rule;
SOCIALREACH_SHARDS=N serves from an N-shard deployment;
SOCIALREACH_PLANNER=adaptive|batch|per-condition routes reads through
  the telemetry-fed planner (ephemeral serving only);
SOCIALREACH_DATA_DIR=<dir> write-ahead logs every mutation in <dir>;
SOCIALREACH_CRASH_AFTER=k aborts after k logged ingestion mutations;
SOCIALREACH_AUDIT_AT=k serves check/audience/explain from the state
  as of position k (read-only; requires SOCIALREACH_DATA_DIR and '@').

'history' lists the logged records of SOCIALREACH_DATA_DIR with their
absolute positions; 'diff' shows who entered (+), left (-) and stayed
(=) in resource <rid>'s audience between positions <k1> and <k2>.
History below a compaction horizon (DurableService::compact) is a
typed refusal, never a wrong answer.

'serve-shard' runs one shard server process on <addr> ('127.0.0.1:0'
picks an ephemeral TCP port; 'unix:/path/sock' serves a Unix domain
socket), prints 'LISTENING <actual-addr>' once bound, and serves until
a Shutdown request. 'serve-router' drives a comma-separated fleet of
such processes as one deployment with the in-process verbs' outputs
and exit codes.";

fn run(args: &[String]) -> Result<bool, String> {
    let cmd = args.first().ok_or("missing command")?;
    match cmd.as_str() {
        "check" => {
            let [file, owner, path, requester] = take::<4>(&args[1..])?;
            let (svc, rid) = serve(file, owner, path)?;
            let requester = resolve(svc.reads(), requester)?;
            let granted = svc.reads().check(rid, requester).map_err(to_msg)? == Decision::Grant;
            println!("{}", if granted { "GRANT" } else { "DENY" });
            Ok(granted)
        }
        "audience" => {
            let [file, owner, path] = take::<3>(&args[1..])?;
            let (svc, rid) = serve(file, owner, path)?;
            let reads = svc.reads();
            for n in reads.audience(rid).map_err(to_msg)? {
                println!("{}", reads.member_name(n));
            }
            Ok(true)
        }
        "explain" => {
            let [file, owner, path, requester] = take::<4>(&args[1..])?;
            let (svc, rid) = serve(file, owner, path)?;
            let requester = resolve(svc.reads(), requester)?;
            match svc.reads().explain_lines(rid, requester).map_err(to_msg)? {
                Some(lines) => {
                    println!("GRANT via {}", lines.join("; "));
                    Ok(true)
                }
                None => {
                    println!("DENY (no walk matches the policy)");
                    Ok(false)
                }
            }
        }
        "query" => {
            let [file, owner, text] = take::<3>(&args[1..])?;
            let svc = backend(file)?;
            let reads = svc.reads();
            let owner = resolve(reads, owner)?;
            for n in reads.query_audience(owner, text).map_err(to_msg)? {
                println!("{}", reads.member_name(n));
            }
            Ok(true)
        }
        "stats" => {
            let [file] = take::<1>(&args[1..])?;
            if file.as_str() == "@" {
                let dir = data_dir().ok_or("'@' requires SOCIALREACH_DATA_DIR")?;
                let svc = deployment()?
                    .durable(&dir)
                    .map_err(|e| format!("recovering {dir}: {e}"))?;
                println!(
                    "{}",
                    socialreach::workload::GraphStats::compute(svc.graph())
                );
            } else {
                let g = load(file)?;
                println!("{}", socialreach::workload::GraphStats::compute(&g));
            }
            Ok(true)
        }
        "history" => {
            let dir = data_dir().ok_or("'history' requires SOCIALREACH_DATA_DIR")?;
            let (from, to) = match &args[1..] {
                [] => (0, u64::MAX),
                [f] => (parse_position(f)?, u64::MAX),
                [f, t] => (parse_position(f)?, parse_position(t)?),
                more => {
                    return Err(format!(
                        "expected at most 2 arguments, found {}",
                        more.len()
                    ))
                }
            };
            let entries = socialreach::read_history(&dir)
                .map_err(|e| format!("reading the history of {dir}: {e}"))?;
            for entry in entries {
                if entry.position >= from && entry.position <= to {
                    println!("{:>6}  {}", entry.position, entry.record);
                }
            }
            Ok(true)
        }
        "diff" => {
            let [rid, k1, k2] = take::<3>(&args[1..])?;
            let dir = data_dir().ok_or("'diff' requires SOCIALREACH_DATA_DIR")?;
            let rid = ResourceId(
                rid.parse()
                    .map_err(|_| format!("<rid> must be a resource id, got {rid:?}"))?,
            );
            let (from, to) = (parse_position(k1)?, parse_position(k2)?);
            let deployment = deployment()?;
            let diff = deployment
                .audience_diff(&dir, rid, from, to)
                .map_err(|e| format!("auditing {dir}: {e}"))?;
            // Member ids are stable across the history; the later
            // point knows every name the diff can mention.
            let names = deployment
                .durable_at(&dir, from.max(to))
                .map_err(|e| format!("recovering {dir}: {e}"))?;
            let reads = names.reads();
            println!(
                "resource {} audience, position {from} -> {to}: {} entered, {} left, {} retained",
                rid.0,
                diff.entered.len(),
                diff.left.len(),
                diff.retained.len()
            );
            for m in &diff.entered {
                println!("+ {}", reads.member_name(*m));
            }
            for m in &diff.left {
                println!("- {}", reads.member_name(*m));
            }
            for m in &diff.retained {
                println!("= {}", reads.member_name(*m));
            }
            Ok(true)
        }
        "serve-shard" => {
            let [addr] = take::<1>(&args[1..])?;
            let server = ShardServer::bind(&ShardAddr::parse(addr))
                .map_err(|e| format!("binding {addr}: {e}"))?;
            println!("LISTENING {}", server.local_addr());
            let _ = std::io::stdout().flush();
            server.run().map_err(|e| format!("serving {addr}: {e}"))?;
            Ok(true)
        }
        "serve-router" => {
            let (addrs, rest) = args[1..]
                .split_first()
                .ok_or("missing <addr1,addr2,..> fleet list")?;
            let addrs: Vec<ShardAddr> = addrs.split(',').map(ShardAddr::parse).collect();
            let verb = rest.first().ok_or("missing router verb")?;
            match verb.as_str() {
                "check" => {
                    let [file, owner, path, requester] = take::<4>(&rest[1..])?;
                    let (svc, rid) = serve_networked(&addrs, file, owner, path)?;
                    let requester = resolve(svc.reads(), requester)?;
                    let granted =
                        svc.reads().check(rid, requester).map_err(to_msg)? == Decision::Grant;
                    println!("{}", if granted { "GRANT" } else { "DENY" });
                    Ok(granted)
                }
                "audience" => {
                    let [file, owner, path] = take::<3>(&rest[1..])?;
                    let (svc, rid) = serve_networked(&addrs, file, owner, path)?;
                    let reads = svc.reads();
                    for n in reads.audience(rid).map_err(to_msg)? {
                        println!("{}", reads.member_name(n));
                    }
                    Ok(true)
                }
                "explain" => {
                    let [file, owner, path, requester] = take::<4>(&rest[1..])?;
                    let (svc, rid) = serve_networked(&addrs, file, owner, path)?;
                    let requester = resolve(svc.reads(), requester)?;
                    match svc.reads().explain_lines(rid, requester).map_err(to_msg)? {
                        Some(lines) => {
                            println!("GRANT via {}", lines.join("; "));
                            Ok(true)
                        }
                        None => {
                            println!("DENY (no walk matches the policy)");
                            Ok(false)
                        }
                    }
                }
                "query" => {
                    let [file, owner, text] = take::<3>(&rest[1..])?;
                    let svc = networked(&addrs, file)?;
                    let reads = svc.reads();
                    let owner = resolve(reads, owner)?;
                    for n in reads.query_audience(owner, text).map_err(to_msg)? {
                        println!("{}", reads.member_name(n));
                    }
                    Ok(true)
                }
                other => Err(format!(
                    "unknown router verb {other:?} (expected check|audience|explain|query)"
                )),
            }
        }
        other => Err(format!("unknown command {other:?}")),
    }
}

/// Loads the edge list through a router over the shard fleet at
/// `addrs`, shares one resource owned by `owner` under the `path`
/// rule, and returns the networked service instance plus the resource.
fn serve_networked(
    addrs: &[ShardAddr],
    file: &str,
    owner: &str,
    path: &str,
) -> Result<(ServiceInstance, ResourceId), String> {
    let mut svc = networked(addrs, file)?;
    let owner = resolve(svc.reads(), owner)?;
    let rid = svc.writes().add_resource(owner);
    svc.writes().add_rule(rid, path).map_err(to_msg)?;
    Ok((svc, rid))
}

/// Loads the edge list through a router over the shard fleet at
/// `addrs` with an empty policy store.
fn networked(addrs: &[ShardAddr], file: &str) -> Result<ServiceInstance, String> {
    let g = load(file)?;
    let assignment = ShardAssignment::hashed(addrs.len() as u32, 0);
    let sys = NetworkedSystem::from_graph(addrs, assignment, &g, PolicyStore::new())
        .map_err(|e| format!("populating the fleet: {e}"))?;
    Ok(ServiceInstance::Networked(sys))
}

fn parse_position(arg: &str) -> Result<u64, String> {
    arg.parse()
        .map_err(|_| format!("positions are non-negative record counts, got {arg:?}"))
}

/// A serving backend: ephemeral (built per invocation), planned
/// (ephemeral behind the `SOCIALREACH_PLANNER` read planner) or
/// durable (recovered from and persisting into
/// `SOCIALREACH_DATA_DIR`).
enum Served {
    Ephemeral(Box<ServiceInstance>),
    Planned(Box<PlannedService>),
    Durable(Box<DurableService>),
}

impl Served {
    fn reads(&self) -> &dyn AccessService {
        match self {
            Served::Ephemeral(svc) => svc.reads(),
            Served::Planned(svc) => &**svc,
            Served::Durable(svc) => svc.reads(),
        }
    }
}

/// Builds the configured deployment over the edge list, shares one
/// resource owned by `owner` under the `path` rule, and returns the
/// serving backend plus the resource.
fn serve(file: &str, owner: &str, path: &str) -> Result<(Served, ResourceId), String> {
    let mut svc = backend(file)?;
    let owner = resolve(svc.reads(), owner)?;
    let (rid, rule) = match &mut svc {
        Served::Ephemeral(s) => {
            let rid = s.writes().add_resource(owner);
            (rid, s.writes().add_rule(rid, path))
        }
        Served::Planned(s) => {
            let rid = s.add_resource(owner);
            (rid, s.add_rule(rid, path))
        }
        Served::Durable(s) => {
            let rid = s.writes().add_resource(owner);
            (rid, s.writes().add_rule(rid, path))
        }
    };
    rule.map_err(to_msg)?;
    Ok((svc, rid))
}

/// Builds the configured deployment over the edge list — ephemeral,
/// planned, durable, or a historical audit read — without registering
/// any resource or rule.
fn backend(file: &str) -> Result<Served, String> {
    let svc = if let Some(position) = audit_at()? {
        // Audit read: recover the durable history to exactly
        // `position`, read-only, into a throwaway backend. The
        // resource/rule registered below stays ephemeral — asking
        // "who could this rule have reached back then?" must not
        // rewrite the history it queries.
        let dir = data_dir().ok_or("SOCIALREACH_AUDIT_AT requires SOCIALREACH_DATA_DIR")?;
        if file != "@" {
            return Err(
                "SOCIALREACH_AUDIT_AT serves recorded history: pass '@' as <edges.tsv>".into(),
            );
        }
        let instance = deployment()?
            .durable_at(&dir, position)
            .map_err(|e| format!("recovering {dir} at position {position}: {e}"))?;
        Served::Ephemeral(Box::new(instance))
    } else {
        match data_dir() {
            None => {
                if file == "@" {
                    return Err("'@' requires SOCIALREACH_DATA_DIR".into());
                }
                let instance = deployment()?.from_graph(&load(file)?, PolicyStore::new());
                match planner_mode()? {
                    Some(mode) => Served::Planned(Box::new(PlannedService::over(instance, mode))),
                    None => Served::Ephemeral(Box::new(instance)),
                }
            }
            Some(dir) => {
                let mut svc = deployment()?
                    .durable(&dir)
                    .map_err(|e| format!("recovering {dir}: {e}"))?;
                if file != "@" {
                    ingest(&load(file)?, &mut svc);
                }
                Served::Durable(Box::new(svc))
            }
        }
    };
    Ok(svc)
}

/// Replays an edge-list graph through the durable write path, honoring
/// the `SOCIALREACH_CRASH_AFTER` crash lever.
fn ingest(g: &SocialGraph, svc: &mut DurableService) {
    let crash_after: Option<u64> = std::env::var("SOCIALREACH_CRASH_AFTER")
        .ok()
        .and_then(|v| v.parse().ok());
    let mut done = 0u64;
    let mut tick = move || {
        done += 1;
        if crash_after == Some(done) {
            eprintln!("SOCIALREACH_CRASH_AFTER: aborting after {done} mutations");
            std::process::abort();
        }
    };
    // The directory may already hold members: map graph ids to the
    // service's ids as they come back.
    let mut ids = Vec::with_capacity(g.num_nodes());
    for n in g.nodes() {
        let id = svc.writes().add_user(g.node_name(n));
        tick();
        for (key, value) in g.node_attrs(n).iter() {
            svc.writes()
                .set_user_attr(id, g.vocab().attr_name(key), value.clone());
            tick();
        }
        ids.push(id);
    }
    for (_, e) in g.edges() {
        svc.writes().add_relationship(
            ids[e.src.index()],
            g.vocab().label_name(e.label),
            ids[e.dst.index()],
        );
        tick();
    }
}

/// The durable data directory, when the environment asks for one.
fn data_dir() -> Option<String> {
    std::env::var("SOCIALREACH_DATA_DIR").ok()
}

/// The historical position the environment asks to serve, if any.
fn audit_at() -> Result<Option<u64>, String> {
    match std::env::var("SOCIALREACH_AUDIT_AT") {
        Err(_) => Ok(None),
        Ok(v) => v.parse().map(Some).map_err(|_| {
            format!("SOCIALREACH_AUDIT_AT must be a WAL position (record count), got {v:?}")
        }),
    }
}

/// The planner mode the environment asks for, if any.
fn planner_mode() -> Result<Option<PlannerMode>, String> {
    match std::env::var("SOCIALREACH_PLANNER") {
        Err(_) => Ok(None),
        Ok(v) => PlannerMode::parse(&v).map(Some).ok_or_else(|| {
            format!("SOCIALREACH_PLANNER must be adaptive|batch|per-condition, got {v:?}")
        }),
    }
}

/// The deployment the environment asks for (single-graph by default).
fn deployment() -> Result<Deployment, String> {
    match std::env::var("SOCIALREACH_SHARDS") {
        Err(_) => Ok(Deployment::online()),
        Ok(v) => {
            let shards: u32 = v.parse().ok().filter(|&n| n > 0).ok_or_else(|| {
                format!("SOCIALREACH_SHARDS must be a positive integer, got {v:?}")
            })?;
            Ok(Deployment::sharded(shards, 0))
        }
    }
}

fn take<const N: usize>(args: &[String]) -> Result<[&String; N], String> {
    if args.len() != N {
        return Err(format!("expected {N} arguments, found {}", args.len()));
    }
    let mut it = args.iter();
    Ok(std::array::from_fn(|_| it.next().expect("length checked")))
}

fn load(path: &str) -> Result<SocialGraph, String> {
    let text = if path == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| format!("reading stdin: {e}"))?;
        buf
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?
    };
    read_edge_list(&text, "follows").map_err(|e| e.to_string())
}

fn resolve(reads: &dyn AccessService, name: &str) -> Result<socialreach::NodeId, String> {
    reads
        .resolve_user(name)
        .map_err(|_| format!("unknown member {name:?}"))
}

fn to_msg(e: socialreach::EvalError) -> String {
    e.to_string()
}
