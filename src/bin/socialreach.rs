//! `socialreach` — command-line front end for reachability-based access
//! control.
//!
//! ```text
//! socialreach check <edges.tsv> <owner> <path-expr> <requester>
//! socialreach audience <edges.tsv> <owner> <path-expr>
//! socialreach explain <edges.tsv> <owner> <path-expr> <requester>
//! socialreach stats <edges.tsv>
//! ```
//!
//! `<edges.tsv>` is an edge list (`src <TAB> label <TAB> dst`, `#`
//! comments allowed; two-column lines default to the label `follows`),
//! or `-` for stdin. `<path-expr>` uses the policy grammar, e.g.
//! `'friend+[1,2]/colleague+[1]'`.
//!
//! Exit codes: 0 = granted / success, 1 = denied, 2 = usage or input
//! error.

use socialreach::workload::read_edge_list;
use socialreach::{online, SocialGraph};
use std::io::Read as _;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(granted) => {
            if granted {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(1)
            }
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!();
            eprintln!("{USAGE}");
            ExitCode::from(2)
        }
    }
}

const USAGE: &str = "usage:
  socialreach check    <edges.tsv> <owner> <path-expr> <requester>
  socialreach audience <edges.tsv> <owner> <path-expr>
  socialreach explain  <edges.tsv> <owner> <path-expr> <requester>
  socialreach stats    <edges.tsv>

<edges.tsv>: 'src<TAB>label<TAB>dst' lines ('-' reads stdin);
<path-expr>: e.g. 'friend+[1,2]/colleague+[1]{age>=18}'";

fn run(args: &[String]) -> Result<bool, String> {
    let cmd = args.first().ok_or("missing command")?;
    match cmd.as_str() {
        "check" => {
            let [file, owner, path, requester] = take::<4>(&args[1..])?;
            let mut g = load(file)?;
            let (o, p, r) = resolve(&mut g, owner, path, Some(requester))?;
            let out = online::evaluate(&g, o, &p, r);
            println!("{}", if out.granted { "GRANT" } else { "DENY" });
            Ok(out.granted)
        }
        "audience" => {
            let [file, owner, path] = take::<3>(&args[1..])?;
            let mut g = load(file)?;
            let (o, p, _) = resolve(&mut g, owner, path, None)?;
            let out = online::evaluate(&g, o, &p, None);
            for n in &out.matched {
                println!("{}", g.node_name(*n));
            }
            Ok(true)
        }
        "explain" => {
            let [file, owner, path, requester] = take::<4>(&args[1..])?;
            let mut g = load(file)?;
            let (o, p, r) = resolve(&mut g, owner, path, Some(requester))?;
            let out = online::evaluate(&g, o, &p, r);
            match out.witness {
                Some(witness) => {
                    let mut walk = vec![g.node_name(o).to_owned()];
                    let mut at = o;
                    for (eid, fwd) in witness {
                        let rec = g.edge(eid);
                        let label = g.vocab().label_name(rec.label);
                        let (next, arrow) = if fwd {
                            (rec.dst, format!("-{label}->"))
                        } else {
                            (rec.src, format!("<-{label}-"))
                        };
                        walk.push(arrow);
                        walk.push(g.node_name(next).to_owned());
                        at = next;
                    }
                    debug_assert_eq!(Some(at), r);
                    println!("GRANT via {}", walk.join(" "));
                    Ok(true)
                }
                None => {
                    println!("DENY (no walk matches the policy)");
                    Ok(false)
                }
            }
        }
        "stats" => {
            let [file] = take::<1>(&args[1..])?;
            let g = load(file)?;
            println!("{}", socialreach::workload::GraphStats::compute(&g));
            Ok(true)
        }
        other => Err(format!("unknown command {other:?}")),
    }
}

fn take<const N: usize>(args: &[String]) -> Result<[&String; N], String> {
    if args.len() != N {
        return Err(format!("expected {N} arguments, found {}", args.len()));
    }
    let mut it = args.iter();
    Ok(std::array::from_fn(|_| it.next().expect("length checked")))
}

fn load(path: &str) -> Result<SocialGraph, String> {
    let text = if path == "-" {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .map_err(|e| format!("reading stdin: {e}"))?;
        buf
    } else {
        std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?
    };
    read_edge_list(&text, "follows").map_err(|e| e.to_string())
}

fn resolve(
    g: &mut SocialGraph,
    owner: &str,
    path: &str,
    requester: Option<&String>,
) -> Result<
    (
        socialreach::NodeId,
        socialreach::PathExpr,
        Option<socialreach::NodeId>,
    ),
    String,
> {
    let o = g
        .node_by_name(owner)
        .ok_or_else(|| format!("unknown member {owner:?}"))?;
    let r = match requester {
        Some(name) => Some(
            g.node_by_name(name)
                .ok_or_else(|| format!("unknown member {name:?}"))?,
        ),
        None => None,
    };
    let p = socialreach::parse_path(path, g.vocab_mut()).map_err(|e| e.to_string())?;
    Ok((o, p, r))
}
