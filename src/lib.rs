#![warn(missing_docs)]
//! # socialreach
//!
//! Reachability-based access control for social networks — a
//! production-quality Rust reproduction of:
//!
//! > Imen Ben Dhia. *Access Control in Social Networks: A
//! > reachability-Based Approach.* EDBT/ICDT Workshops (PhD Symposium),
//! > 2012.
//!
//! A resource owner describes the audience of each shared resource as a
//! **path expression** over the social graph — *"only the colleagues of
//! my friends (or of my friends' friends)"* is `friend+[1,2]/colleague+[1]`
//! — and every access request becomes an *ordered label-constraint
//! reachability query*, answered online (constrained BFS) or through the
//! paper's precomputed line-graph + 2-hop cluster join index.
//!
//! This facade crate re-exports the workspace layers:
//!
//! * [`graph`] — the directed, edge-labeled, node-attributed social
//!   graph substrate (`socialreach-graph`);
//! * [`reach`] — reachability indexes: line graphs, transitive closure,
//!   interval labeling, 2-hop covers, the cluster join index
//!   (`socialreach-reach`);
//! * [`core`] — the access-control model and engines
//!   (`socialreach-core`);
//! * [`workload`] — seeded synthetic graphs, policies and request
//!   streams (`socialreach-workload`).
//!
//! The most common entry points are re-exported at the crate root.
//!
//! ## Example
//!
//! ```
//! use socialreach::{AccessControlSystem, Decision};
//!
//! let mut sys = AccessControlSystem::new_indexed();
//! let alice = sys.add_user("Alice");
//! let bob = sys.add_user("Bob");
//! let carol = sys.add_user("Carol");
//! sys.connect(alice, "friend", bob);
//! sys.connect(bob, "friend", carol);
//! sys.set_user_attr(carol, "age", 26i64);
//!
//! let album = sys.share(alice);
//! sys.allow(album, "friend+[1,2]{age>=18}").unwrap();
//!
//! assert_eq!(sys.check(album, carol).unwrap(), Decision::Grant);
//! assert_eq!(sys.check(album, bob).unwrap(), Decision::Deny); // no age
//! ```

pub use socialreach_core as core;
pub use socialreach_graph as graph;
pub use socialreach_reach as reach;
pub use socialreach_workload as workload;

pub use socialreach_core::{
    examples, online, parse_path, resource_audience_batch, AccessCondition, AccessControlSystem,
    AccessEngine, AccessRule, Decision, Enforcer, EngineChoice, EvalError, JoinEngineConfig,
    JoinIndexEngine, JoinStrategy, OnlineEngine, ParseError, PathExpr, PolicyStore, ResourceId,
};
pub use socialreach_graph::{AttrValue, Direction, EdgeId, LabelId, NodeId, SocialGraph};
