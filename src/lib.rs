#![warn(missing_docs)]
//! # socialreach
//!
//! Reachability-based access control for social networks — a
//! production-quality Rust reproduction of:
//!
//! > Imen Ben Dhia. *Access Control in Social Networks: A
//! > reachability-Based Approach.* EDBT/ICDT Workshops (PhD Symposium),
//! > 2012.
//!
//! A resource owner describes the audience of each shared resource as a
//! **path expression** over the social graph — *"only the colleagues of
//! my friends (or of my friends' friends)"* is `friend+[1,2]/colleague+[1]`
//! — and every access request becomes an *ordered label-constraint
//! reachability query*, answered online (constrained BFS) or through the
//! paper's precomputed line-graph + 2-hop cluster join index.
//!
//! ## One API, any deployment
//!
//! Serving goes through the **deployment-agnostic service API**
//! ([`AccessService`] for reads, [`MutateService`] for writes): a
//! [`Deployment`] config constructs either the single-graph backend
//! (one epoch-published CSR snapshot, pluggable engines) or the
//! sharded backend (members hash-partitioned across N epoch-published
//! shards with cross-shard fixpoint reads). Everything downstream of
//! the config line — the CLI, the examples, the benches, the
//! differential test harnesses — holds `&dyn AccessService` and never
//! learns which backend answers.
//!
//! ```
//! use socialreach::{AccessService, Decision, Deployment, MutateService};
//!
//! // The deployment is the only backend-specific line:
//! let mut svc = Deployment::online().build();
//! // let mut svc = Deployment::sharded(4, 7).build(); // …same program.
//!
//! let alice = svc.add_user("Alice");
//! let bob = svc.add_user("Bob");
//! let carol = svc.add_user("Carol");
//! svc.add_relationship(alice, "friend", bob);
//! svc.add_relationship(bob, "friend", carol);
//! svc.set_user_attr(carol, "age", 26i64.into());
//!
//! let album = svc.add_resource(alice);
//! svc.add_rule(album, "friend+[1,2]{age>=18}").unwrap();
//!
//! let reads = svc.reads();
//! assert_eq!(reads.check(album, carol).unwrap(), Decision::Grant);
//! assert_eq!(reads.check(album, bob).unwrap(), Decision::Deny); // no age
//! assert_eq!(
//!     reads.explain_lines(album, carol).unwrap().unwrap(),
//!     vec!["Alice -friend-> Bob -friend-> Carol".to_owned()]
//! );
//! ```
//!
//! This facade crate re-exports the workspace layers:
//!
//! * [`graph`] — the directed, edge-labeled, node-attributed social
//!   graph substrate (`socialreach-graph`);
//! * [`reach`] — reachability indexes: line graphs, transitive closure,
//!   interval labeling, 2-hop covers, the cluster join index
//!   (`socialreach-reach`);
//! * [`core`] — the access-control model, engines, and the service API
//!   (`socialreach-core`);
//! * [`workload`] — seeded synthetic graphs, policies, request streams
//!   and the service-level request replay (`socialreach-workload`).
//!
//! The most common entry points are re-exported at the crate root.

pub use socialreach_core as core;
pub use socialreach_graph as graph;
pub use socialreach_reach as reach;
pub use socialreach_workload as workload;

pub use socialreach_core::{
    examples, online, parse_path, read_history, resource_audience_batch, AccessCondition,
    AccessControlSystem, AccessEngine, AccessResponse, AccessRule, AccessService, AudienceDiff,
    AuditError, BundleStrategy, CheckPlan, CompactionReport, Decision, Deployment, DurabilityError,
    DurableService, Enforcer, EngineChoice, EvalError, Explanation, HistoryEntry, JoinEngineConfig,
    JoinIndexEngine, JoinStrategy, MutateService, NetworkedSpec, NetworkedSystem, OnlineEngine,
    ParseError, PathExpr, PlannedService, Planner, PlannerMode, PolicyStore, ReadBatch,
    ReadRequest, ReadStats, RecoveryReport, RemoteError, ResourceId, ServiceInstance, ShardAddr,
    ShardHandle, ShardServer, ShardedSystem, WalRecord, WalkHop, WitnessWalk,
};
pub use socialreach_graph::{AttrValue, Direction, EdgeId, LabelId, NodeId, SocialGraph};
