//! Facade-level integration tests: full scenarios through
//! `AccessControlSystem`, cross-engine agreement on generated
//! workloads, serde persistence, and failure handling.

use rand::rngs::StdRng;
use rand::SeedableRng;
use socialreach::workload::{generate_policies, uniform_requests, GraphSpec, PolicyWorkloadConfig};
use socialreach::{
    AccessControlSystem, Decision, Enforcer, EngineChoice, JoinEngineConfig, JoinIndexEngine,
    JoinStrategy, OnlineEngine, PolicyStore,
};

#[test]
fn engines_agree_on_a_generated_workload() {
    let mut g = GraphSpec::ba_osn(120, 77).build();
    let mut store = PolicyStore::new();
    let mut rng = StdRng::seed_from_u64(78);
    let cfg = PolicyWorkloadConfig {
        num_resources: 12,
        out_prob: 0.6,
        deep_prob: 0.3,
        ..PolicyWorkloadConfig::default()
    };
    let rids = generate_policies(&mut g, &mut store, &cfg, &mut rng);
    let requests = uniform_requests(&g, &store, &rids, 60, &mut rng);

    let online = Enforcer::new(OnlineEngine);
    let indexed = Enforcer::new(JoinIndexEngine::build(
        &g,
        JoinEngineConfig {
            strategy: JoinStrategy::AdjacencyOnly,
            ..JoinEngineConfig::default()
        },
    ));
    for r in &requests {
        let d1 = online
            .check_access(&g, &store, r.resource, r.requester)
            .expect("online ok");
        let d2 = indexed
            .check_access(&g, &store, r.resource, r.requester)
            .expect("indexed ok");
        assert_eq!(d1, d2, "engines disagree on {r:?}");
        assert_eq!(d1 == Decision::Grant, r.expect_grant, "ground truth");
    }
}

#[test]
fn multi_rule_multi_condition_policies_compose() {
    let mut sys = AccessControlSystem::new_online();
    let alice = sys.add_user("Alice");
    let bob = sys.add_user("Bob");
    let carol = sys.add_user("Carol");
    let dave = sys.add_user("Dave");
    sys.connect(alice, "friend", bob);
    sys.connect(bob, "friend", carol);
    sys.connect(alice, "colleague", dave);
    sys.connect(dave, "friend", carol);

    // Resource with two alternative audiences:
    //   rule 1: direct friends,
    //   rule 2: colleagues' friends.
    let doc = sys.share(alice);
    sys.allow(doc, "friend+[1]").expect("rule 1");
    sys.allow(doc, "colleague+[1]/friend+[1]").expect("rule 2");

    assert_eq!(sys.service().check(doc, bob).unwrap(), Decision::Grant); // rule 1
    assert_eq!(sys.service().check(doc, carol).unwrap(), Decision::Grant); // rule 2
    assert_eq!(sys.service().check(doc, dave).unwrap(), Decision::Deny); // neither

    let audience = sys.service().audience(doc).unwrap();
    let names: Vec<&str> = audience.iter().map(|&n| sys.graph().node_name(n)).collect();
    assert_eq!(names, vec!["Alice", "Bob", "Carol"]);
}

#[test]
fn policy_changes_take_effect_immediately() {
    for choice in [
        EngineChoice::Online,
        EngineChoice::JoinIndex(JoinEngineConfig::default()),
    ] {
        let mut sys = AccessControlSystem::new(choice);
        let alice = sys.add_user("Alice");
        let bob = sys.add_user("Bob");
        sys.connect(alice, "friend", bob);
        let rid = sys.share(alice);
        assert_eq!(
            sys.service().check(rid, bob).unwrap(),
            Decision::Deny,
            "private"
        );
        sys.allow(rid, "friend+[1]").unwrap();
        assert_eq!(
            sys.service().check(rid, bob).unwrap(),
            Decision::Grant,
            "after allow"
        );
    }
}

#[test]
fn graph_and_policies_round_trip_through_serde() {
    let mut g = GraphSpec::ba_osn(60, 5).build();
    let mut store = PolicyStore::new();
    let mut rng = StdRng::seed_from_u64(6);
    let rids = generate_policies(
        &mut g,
        &mut store,
        &PolicyWorkloadConfig {
            num_resources: 5,
            ..PolicyWorkloadConfig::default()
        },
        &mut rng,
    );

    let g_json = serde_json::to_string(&g).expect("graph serializes");
    let store_json = serde_json::to_string(&store).expect("store serializes");
    let mut g2: socialreach::SocialGraph = serde_json::from_str(&g_json).expect("graph parses");
    g2.rebuild_lookups();
    let store2: PolicyStore = serde_json::from_str(&store_json).expect("store parses");

    assert_eq!(g2.num_nodes(), g.num_nodes());
    assert_eq!(g2.num_edges(), g.num_edges());
    assert_eq!(store2.num_rules(), store.num_rules());

    // Decisions must be identical on the revived state.
    let online = Enforcer::new(OnlineEngine);
    let requests = uniform_requests(&g, &store, &rids, 30, &mut rng);
    for r in &requests {
        let before = online
            .check_access(&g, &store, r.resource, r.requester)
            .unwrap();
        let after = online
            .check_access(&g2, &store2, r.resource, r.requester)
            .unwrap();
        assert_eq!(before, after);
    }
}

#[test]
fn deny_by_default_and_owner_override_hold_for_every_engine() {
    for choice in [
        EngineChoice::Online,
        EngineChoice::JoinIndex(JoinEngineConfig::default()),
    ] {
        let mut sys = AccessControlSystem::new(choice);
        let alice = sys.add_user("Alice");
        let bob = sys.add_user("Bob");
        let rid = sys.share(alice);
        assert_eq!(
            sys.service().check(rid, alice).unwrap(),
            Decision::Grant,
            "owner"
        );
        assert_eq!(
            sys.service().check(rid, bob).unwrap(),
            Decision::Deny,
            "stranger"
        );
    }
}

#[test]
fn unbounded_depth_agrees_between_online_and_truncated_index() {
    // On a short-diameter graph the planner's max_depth cap is not a
    // truncation in practice: decisions agree with the exact engine.
    let mut sys_online = AccessControlSystem::new_online();
    let mut sys_indexed = AccessControlSystem::new_indexed();
    for sys in [&mut sys_online, &mut sys_indexed] {
        let a = sys.add_user("a");
        let b = sys.add_user("b");
        let c = sys.add_user("c");
        let d = sys.add_user("d");
        sys.connect(a, "friend", b);
        sys.connect(b, "friend", c);
        sys.connect(c, "friend", d);
        let rid = sys.share(a);
        sys.allow(rid, "friend+[1..]").unwrap();
        let target = sys.user("d").unwrap();
        assert_eq!(sys.service().check(rid, target).unwrap(), Decision::Grant);
    }
}

#[test]
fn malformed_policy_is_rejected_with_position() {
    let mut sys = AccessControlSystem::new_online();
    let alice = sys.add_user("Alice");
    let rid = sys.share(alice);
    let err = sys.allow(rid, "friend+[2..1]").unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("empty depth range"), "got: {msg}");
}
