//! Integration tests that replay the paper end to end: every figure's
//! artifact is rebuilt through the public API and checked against the
//! properties the paper states (see EXPERIMENTS.md for the artifact
//! index and the recorded discrepancies).

use socialreach::core::examples::{paper_graph, q1, worked_query, MEMBERS};
use socialreach::core::{plan, PlanConfig};
use socialreach::reach::{
    JoinIndex, JoinIndexConfig, LineGraph, LineGraphConfig, ReachabilityTable, TwoHopConstruction,
};
use socialreach::{online, AccessEngine, JoinEngineConfig, JoinIndexEngine, JoinStrategy};
use socialreach_graph::algo::bfs_reachable;

fn forward_line(g: &socialreach::SocialGraph) -> LineGraph {
    let alice = g.node_by_name("Alice").expect("Alice");
    LineGraph::build(
        g,
        &LineGraphConfig {
            augment_reverse: false,
            virtual_root: Some(alice),
        },
    )
}

fn forward_index(g: &socialreach::SocialGraph) -> JoinIndex {
    JoinIndex::build(
        g,
        &JoinIndexConfig {
            augment_reverse: false,
            greedy_cover_max_comps: 256,
            virtual_root: None,
        },
    )
}

// ---------------------------------------------------------------------
// F1 — Figure 1
// ---------------------------------------------------------------------

#[test]
fn f1_figure_1_graph_matches_the_paper() {
    let g = paper_graph();
    assert_eq!(g.num_nodes(), 7);
    assert_eq!(g.num_edges(), 12);
    for name in MEMBERS {
        assert!(g.node_by_name(name).is_some(), "{name} present");
    }
    // Exact edge set, reconstructed from the Figure 5 node listing.
    let expect = [
        ("Alice", "friend", "Colin"),
        ("Alice", "colleague", "David"),
        ("Alice", "friend", "Bill"),
        ("Colin", "friend", "David"),
        ("Elena", "friend", "Bill"),
        ("Bill", "friend", "Elena"),
        ("Colin", "parent", "Fred"),
        ("David", "colleague", "Fred"),
        ("David", "parent", "George"),
        ("Elena", "friend", "David"),
        ("Elena", "friend", "George"),
        ("Fred", "friend", "George"),
    ];
    let mut actual: Vec<(String, String, String)> = g
        .edges()
        .map(|(_, r)| {
            (
                g.node_name(r.src).to_owned(),
                g.vocab().label_name(r.label).to_owned(),
                g.node_name(r.dst).to_owned(),
            )
        })
        .collect();
    let mut expect: Vec<(String, String, String)> = expect
        .iter()
        .map(|&(s, l, d)| (s.to_owned(), l.to_owned(), d.to_owned()))
        .collect();
    actual.sort();
    expect.sort();
    assert_eq!(actual, expect);
}

// ---------------------------------------------------------------------
// F2 — Figure 2 (Q1)
// ---------------------------------------------------------------------

#[test]
fn f2_q1_audience_is_fred_on_every_engine() {
    let mut g = paper_graph();
    let (alice, path) = q1(&mut g);
    assert_eq!(path.to_text(g.vocab()), "friend+[1..2]/colleague+[1]");

    let fred = g.node_by_name("Fred").expect("Fred");
    let truth = online::evaluate(&g, alice, &path, None);
    assert_eq!(truth.matched, vec![fred]);

    for strategy in [
        JoinStrategy::PaperFaithful,
        JoinStrategy::OwnerSeeded,
        JoinStrategy::AdjacencyOnly,
    ] {
        let engine = JoinIndexEngine::build(
            &g,
            JoinEngineConfig {
                strategy,
                ..JoinEngineConfig::default()
            },
        );
        let out = engine.audience(&g, alice, &path).expect("evaluates");
        assert_eq!(out.members, vec![fred], "strategy {strategy:?}");
    }
}

// ---------------------------------------------------------------------
// F3 — Figure 3 (line graph)
// ---------------------------------------------------------------------

#[test]
fn f3_line_graph_has_13_vertices_like_figure_5() {
    let g = paper_graph();
    let line = forward_line(&g);
    // 12 edges + the Null->Alice virtual vertex.
    assert_eq!(line.num_nodes(), 13);
    // Definition 4: arcs connect consecutive edges.
    for (a, b) in line.graph().edges() {
        assert_eq!(
            line.node(a).to,
            line.node(b).from,
            "line arc must join consecutive edges"
        );
    }
    // Walks in G of length 2 == arcs between real line vertices.
    let real_arcs = line
        .graph()
        .edges()
        .filter(|&(a, _)| Some(a) != line.virtual_root())
        .count();
    let mut two_walks = 0;
    for (_, e1) in g.edges() {
        for (_, e2) in g.edges() {
            if e1.dst == e2.src {
                two_walks += 1;
            }
        }
    }
    assert_eq!(real_arcs, two_walks);
}

// ---------------------------------------------------------------------
// F4 — Figure 4 (line-query transformation)
// ---------------------------------------------------------------------

#[test]
fn f4_q1_expands_into_the_two_line_queries_of_figure_4() {
    let mut g = paper_graph();
    let (_, path) = q1(&mut g);
    let plan = plan(&path, &PlanConfig::default()).expect("plans");
    assert!(!plan.truncated);
    let friend = g.vocab().label("friend").expect("friend");
    let colleague = g.vocab().label("colleague").expect("colleague");
    let shapes: Vec<Vec<(socialreach::LabelId, bool)>> =
        plan.queries.iter().map(|q| q.hops.clone()).collect();
    assert_eq!(
        shapes,
        vec![
            vec![(friend, true), (colleague, true)],
            vec![(friend, true), (friend, true), (colleague, true)],
        ]
    );
}

// ---------------------------------------------------------------------
// F5 — Figure 5 (reachability table)
// ---------------------------------------------------------------------

#[test]
fn f5_reachability_table_is_sound_and_complete() {
    let g = paper_graph();
    let line = forward_line(&g);
    let table = ReachabilityTable::build(&g, &line);
    assert_eq!(table.rows().len(), 13);

    // Postorder numbers are a permutation (per direction, over comps):
    // checked indirectly via the containment property against BFS in
    // both directions.
    let lg = line.graph();
    for a in 0..13u32 {
        let fwd = bfs_reachable(lg, a);
        for b in 0..13u32 {
            assert_eq!(table.reaches_down(a, b), fwd.contains(b as usize));
        }
    }
    let rev = lg.reversed();
    for a in 0..13u32 {
        let bwd = bfs_reachable(&rev, a);
        for b in 0..13u32 {
            assert_eq!(table.reaches_up(a, b), bwd.contains(b as usize));
        }
    }

    // The textual artifact contains the paper's column layout.
    let rendered = table.to_string();
    assert!(rendered.contains("Null Alice"));
    assert!(rendered.contains("po v") && rendered.contains("po ^"));
}

// ---------------------------------------------------------------------
// F6/F7 — W-table and cluster index
// ---------------------------------------------------------------------

#[test]
fn f6_wtable_routes_exactly_the_joinable_label_pairs() {
    let g = paper_graph();
    let idx = forward_index(&g);
    let friend = g.vocab().label("friend").expect("friend");
    let colleague = g.vocab().label("colleague").expect("colleague");
    let parent = g.vocab().label("parent").expect("parent");
    let keys = [(friend, true), (colleague, true), (parent, true)];
    for &x in &keys {
        for &y in &keys {
            let joinable = !idx.join_full(x, y).is_empty();
            let routed = !idx.wtable().centers(x, y).is_empty();
            // Reflexive pairs are answered without centers (trivial
            // paths), so x == y may be joinable yet unrouted.
            if x != y {
                assert_eq!(
                    joinable, routed,
                    "W-table must route exactly the joinable pairs ({x:?},{y:?})"
                );
            }
        }
    }
    // The paper's example entry: (friend, colleague) is routed.
    assert!(!idx
        .wtable()
        .centers((friend, true), (colleague, true))
        .is_empty());
    // And (parent, parent): no parent edge chains into another.
    assert!(idx
        .join_full((parent, true), (parent, true))
        .iter()
        .all(|&(a, b)| a == b));
}

#[test]
fn f7_cluster_index_is_a_valid_2hop_cover() {
    let g = paper_graph();
    let idx = forward_index(&g);
    assert_eq!(
        idx.labeling().construction(),
        TwoHopConstruction::Greedy,
        "the paper-scale example uses the greedy cover"
    );
    // Every (u, v) with u ⇝ v and u != v must be witnessed by some
    // center w with u ∈ U_w and v ∈ V_w — Definition 6.
    let lg = idx.line().graph();
    for u in 0..lg.num_nodes() as u32 {
        let reach = bfs_reachable(lg, u);
        for v in 0..lg.num_nodes() as u32 {
            if u == v {
                continue;
            }
            let witnessed = idx
                .clusters()
                .iter()
                .any(|(_, c)| c.u.binary_search(&u).is_ok() && c.v.binary_search(&v).is_ok());
            assert_eq!(
                witnessed,
                reach.contains(v as usize),
                "cover witness mismatch at ({u},{v})"
            );
        }
    }
}

// ---------------------------------------------------------------------
// X1/X2 — §3.3 worked joins and §3.4 end-to-end example
// ---------------------------------------------------------------------

#[test]
fn x1_worked_join_contains_the_papers_tuple_and_is_a_correct_superset() {
    let g = paper_graph();
    let idx = forward_index(&g);
    let friend = g.vocab().label("friend").expect("friend");
    let colleague = g.vocab().label("colleague").expect("colleague");
    let tuples = idx.join_full((friend, true), (colleague, true));

    let name = |x: u32| idx.line().display_name(&g, x);
    let rendered: Vec<(String, String)> = tuples.iter().map(|&(a, b)| (name(a), name(b))).collect();
    // The paper's §3.3 result tuple:
    assert!(
        rendered.contains(&(
            "friend Alice-Colin".to_owned(),
            "colleague David-Fred".to_owned()
        )),
        "paper tuple present, got {rendered:?}"
    );
    // …and the join equals ground-truth reachability (the paper's
    // listing is a subset; ours is verified complete).
    for &(a, b) in &tuples {
        assert!(
            bfs_reachable(idx.line().graph(), a).contains(b as usize),
            "join tuple must be reachable"
        );
    }
}

#[test]
fn x2_worked_query_grants_george_with_one_surviving_tuple() {
    let mut g = paper_graph();
    let (alice, path) = worked_query(&mut g);
    let george = g.node_by_name("George").expect("George");

    let engine = JoinIndexEngine::build(
        &g,
        JoinEngineConfig {
            strategy: JoinStrategy::PaperFaithful,
            index: JoinIndexConfig {
                augment_reverse: false,
                ..JoinIndexConfig::default()
            },
            ..JoinEngineConfig::default()
        },
    );
    let out = engine.evaluate(&g, alice, &path, None).expect("evaluates");
    assert_eq!(out.matched, vec![george]);
    assert_eq!(out.stats.tuples_kept, 1, "§3.4 keeps exactly one tuple");

    // The witness of the online engine is the paper's walk.
    let witness = online::evaluate(&g, alice, &path, Some(george))
        .witness
        .expect("granted");
    let hops: Vec<String> = witness
        .iter()
        .map(|&(e, _)| {
            format!(
                "{}->{}",
                g.node_name(g.edge(e).src),
                g.node_name(g.edge(e).dst)
            )
        })
        .collect();
    assert_eq!(hops, vec!["Alice->Colin", "Colin->Fred", "Fred->George"]);
}
