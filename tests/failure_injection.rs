//! Failure injection: malformed inputs, degenerate graphs, and limit
//! boundaries. The policy layer must fail *closed* and fail *loudly*
//! (typed errors), never panic or silently grant.

use socialreach::core::{plan, PlanConfig};
use socialreach::{
    parse_path, AccessControlSystem, AccessService, Decision, Deployment, EvalError,
    JoinEngineConfig, JoinIndexEngine, JoinStrategy, SocialGraph,
};

// ---------------------------------------------------------------------
// Parser abuse
// ---------------------------------------------------------------------

#[test]
fn parser_rejects_garbage_without_panicking() {
    let garbage = [
        "",
        " ",
        "/",
        "//",
        "[1]",
        "{x=1}",
        "friend+[",
        "friend+[]",
        "friend+[,]",
        "friend+[1,]",
        "friend+[..]",
        "friend+[..3]",
        "friend{",
        "friend{}",
        "friend{=}",
        "friend{a==}",
        "friend{a=\"",
        "friend++",
        "friend+-",
        "friend/",
        "friend+[999999999999999999]",
        "friend+[0..0]",
        "friend*{a~}",
        "🦀+[1]",
    ];
    for text in garbage {
        let mut vocab = socialreach::graph::Vocabulary::new();
        let result = parse_path(text, &mut vocab);
        assert!(
            result.is_err(),
            "{text:?} should be rejected, got {result:?}"
        );
    }
}

#[test]
fn parse_error_positions_are_in_bounds() {
    for text in ["friend+[", "friend korea", "friend{age>}"] {
        let mut vocab = socialreach::graph::Vocabulary::new();
        let err = parse_path(text, &mut vocab).unwrap_err();
        assert!(
            err.pos <= text.len(),
            "position {} beyond {text:?}",
            err.pos
        );
        // Display must not panic on any position.
        let _ = err.to_string();
    }
}

// ---------------------------------------------------------------------
// Degenerate graphs
// ---------------------------------------------------------------------

#[test]
fn empty_graph_everything_denies_cleanly() {
    let mut sys = AccessControlSystem::new_indexed();
    let ghost = sys.add_user("OnlyUser");
    let rid = sys.share(ghost);
    sys.allow(rid, "friend+[1..]").unwrap();
    // No edges at all: nobody but the owner.
    assert_eq!(sys.service().check(rid, ghost).unwrap(), Decision::Grant);
    assert_eq!(sys.service().audience(rid).unwrap(), vec![ghost]);
}

#[test]
fn self_loops_are_handled_by_every_engine() {
    // A member who "friends" themselves: walks may traverse the loop
    // repeatedly; engines must agree and terminate.
    let mut g = SocialGraph::new();
    let a = g.add_node("Narcissus");
    let b = g.add_node("Echo");
    let friend = g.intern_label("friend");
    g.add_edge(a, a, friend);
    g.add_edge(a, b, friend);
    let path = parse_path("friend+[3]", g.vocab_mut()).unwrap();

    let truth = socialreach::online::evaluate(&g, a, &path, None);
    for strategy in [
        JoinStrategy::PaperFaithful,
        JoinStrategy::OwnerSeeded,
        JoinStrategy::AdjacencyOnly,
    ] {
        let engine = JoinIndexEngine::build(
            &g,
            JoinEngineConfig {
                strategy,
                ..JoinEngineConfig::default()
            },
        );
        let got = socialreach::AccessEngine::audience(&engine, &g, a, &path).unwrap();
        assert_eq!(got.members, truth.matched, "strategy {strategy:?}");
    }
    // loop³ ends on Narcissus, loop²·out ends on Echo: both match.
    assert_eq!(truth.matched, vec![a, b]);
}

#[test]
fn parallel_edges_count_as_distinct_relationships() {
    let mut g = SocialGraph::new();
    let a = g.add_node("A");
    let b = g.add_node("B");
    let friend = g.intern_label("friend");
    g.add_edge(a, b, friend);
    g.add_edge(a, b, friend); // duplicate tie
    let path = parse_path("friend+[1]", g.vocab_mut()).unwrap();
    let out = socialreach::online::evaluate(&g, a, &path, None);
    assert_eq!(out.matched, vec![b], "audience is a set, not a bag");
}

#[test]
fn isolated_owner_with_reverse_policy() {
    let mut g = SocialGraph::new();
    let a = g.add_node("A");
    let b = g.add_node("B");
    g.intern_label("friend");
    let path = parse_path("friend-[1,2]", g.vocab_mut()).unwrap();
    let out = socialreach::online::evaluate(&g, a, &path, Some(b));
    assert!(!out.granted);
}

// ---------------------------------------------------------------------
// Limits
// ---------------------------------------------------------------------

#[test]
fn plan_overflow_is_a_typed_error_not_a_hang() {
    let mut vocab = socialreach::graph::Vocabulary::new();
    // 4 both-direction steps of depth 4 = 2^16 orientation vectors.
    let path = parse_path("friend*[4]/friend*[4]/friend*[4]/friend*[4]", &mut vocab).unwrap();
    let err = plan(
        &path,
        &PlanConfig {
            max_depth: 8,
            max_line_queries: 1000,
        },
    )
    .unwrap_err();
    assert!(matches!(err, EvalError::PlanOverflow { .. }));
}

#[test]
fn tuple_overflow_denies_nothing_silently() {
    // A dense bidirectional clique with a tiny budget: the engine must
    // surface TupleOverflow, not return a partial (wrong) decision.
    let mut g = SocialGraph::new();
    let nodes: Vec<_> = (0..8).map(|i| g.add_node(&format!("u{i}"))).collect();
    let f = g.intern_label("friend");
    for &x in &nodes {
        for &y in &nodes {
            if x != y {
                g.add_edge(x, y, f);
            }
        }
    }
    let path = parse_path("friend+[4]", g.vocab_mut()).unwrap();
    let engine = JoinIndexEngine::build(
        &g,
        JoinEngineConfig {
            strategy: JoinStrategy::PaperFaithful,
            max_tuples: 100,
            ..JoinEngineConfig::default()
        },
    );
    let err = engine.evaluate(&g, nodes[0], &path, None).unwrap_err();
    assert!(matches!(err, EvalError::TupleOverflow { limit: 100 }));
}

#[test]
fn unknown_labels_in_policies_deny_but_do_not_error() {
    // A policy can reference a relationship type no edge carries yet:
    // it simply matches nobody (fail closed) — and starts matching once
    // such edges appear.
    let mut sys = AccessControlSystem::new_online();
    let a = sys.add_user("A");
    let b = sys.add_user("B");
    sys.connect(a, "friend", b);
    let rid = sys.share(a);
    sys.allow(rid, "mentor+[1]").unwrap();
    assert_eq!(sys.service().check(rid, b).unwrap(), Decision::Deny);
    sys.connect(a, "mentor", b);
    assert_eq!(sys.service().check(rid, b).unwrap(), Decision::Grant);
}

#[test]
fn deep_unbounded_policy_terminates_on_cyclic_graphs() {
    // friend+[1..] over a cycle: the online engine's saturation must
    // terminate; the join planner truncates at max_depth.
    let mut sys = AccessControlSystem::new_online();
    let users: Vec<_> = (0..10).map(|i| sys.add_user(&format!("u{i}"))).collect();
    for i in 0..10 {
        sys.connect(users[i], "friend", users[(i + 1) % 10]);
    }
    let rid = sys.share(users[0]);
    sys.allow(rid, "friend+[1..]").unwrap();
    for &u in &users {
        assert_eq!(sys.service().check(rid, u).unwrap(), Decision::Grant);
    }
}

// ---------------------------------------------------------------------
// The same failure modes through the deployment-agnostic traits
// ---------------------------------------------------------------------

/// The deployment shapes the fail-closed scenarios below must hold on
/// — notably the sharded serving layer, whose error paths cross shard
/// boundaries.
fn trait_deployments() -> Vec<Deployment> {
    vec![
        Deployment::online(),
        Deployment::sharded(1, 3),
        Deployment::sharded(4, 3),
    ]
}

#[test]
fn garbage_rules_are_rejected_through_every_deployment() {
    // `add_rule` is the trait-level parser surface: every garbage
    // expression must come back as a typed error on every backend —
    // and a rejected rule must leave no trace (decisions unchanged).
    let garbage = [
        "",
        "friend+[",
        "friend+[]",
        "friend{a==}",
        "friend++",
        "🦀+[1]",
    ];
    for deployment in trait_deployments() {
        let mut svc = deployment.build();
        let (b, rid) = {
            let w = svc.writes();
            let a = w.add_user("A");
            let b = w.add_user("B");
            w.add_relationship(a, "friend", b);
            (b, w.add_resource(a))
        };
        let label = svc.reads().describe();
        for text in garbage {
            assert!(
                svc.writes().add_rule(rid, text).is_err(),
                "{text:?} accepted by {label}"
            );
        }
        assert_eq!(
            svc.reads().check(rid, b).unwrap(),
            Decision::Deny,
            "rejected rules must not leak into decisions ({})",
            svc.reads().describe()
        );
    }
}

#[test]
fn garbage_rules_are_never_persisted_by_the_durable_decorator() {
    // The WAL logs only validated operations: a rejected rule leaves
    // the log untouched, so recovery can never replay it.
    let dir = std::env::temp_dir().join(format!("srdur-failinj-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    {
        let mut svc = Deployment::sharded(3, 3).durable(&dir).unwrap();
        let a = svc.writes().add_user("A");
        let rid = svc.writes().add_resource(a);
        let before = svc.wal_records();
        assert!(svc.writes().add_rule(rid, "friend+[").is_err());
        assert_eq!(svc.wal_records(), before, "a rejected rule was logged");
    }
    let recovered = Deployment::sharded(3, 3).durable(&dir).unwrap();
    assert_eq!(recovered.wal_records(), 2);
    assert_eq!(recovered.reads().num_members(), 1);
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn empty_graph_denies_cleanly_on_every_deployment() {
    for deployment in trait_deployments() {
        let mut svc = deployment.build();
        let ghost = svc.writes().add_user("OnlyUser");
        let rid = svc.writes().add_resource(ghost);
        svc.writes().add_rule(rid, "friend+[1..8]").unwrap();
        let reads: &dyn AccessService = svc.reads();
        assert_eq!(reads.check(rid, ghost).unwrap(), Decision::Grant);
        assert_eq!(reads.audience(rid).unwrap(), vec![ghost]);
    }
}

#[test]
fn unknown_labels_deny_but_do_not_error_on_every_deployment() {
    for deployment in trait_deployments() {
        let mut svc = deployment.build();
        let a = svc.writes().add_user("A");
        let b = svc.writes().add_user("B");
        svc.writes().add_relationship(a, "friend", b);
        let rid = svc.writes().add_resource(a);
        svc.writes().add_rule(rid, "mentor+[1]").unwrap();
        assert_eq!(svc.reads().check(rid, b).unwrap(), Decision::Deny);
        svc.writes().add_relationship(a, "mentor", b);
        assert_eq!(svc.reads().check(rid, b).unwrap(), Decision::Grant);
    }
}

#[test]
fn deep_bounded_policies_terminate_on_cyclic_graphs_on_every_deployment() {
    // A friend cycle with a deep bounded policy: the cross-shard
    // fixpoint must converge (visited-state dedup), not ping-pong
    // around the ring forever.
    for deployment in trait_deployments() {
        let mut svc = deployment.build();
        let users: Vec<_> = (0..10)
            .map(|i| svc.writes().add_user(&format!("u{i}")))
            .collect();
        for i in 0..10 {
            svc.writes()
                .add_relationship(users[i], "friend", users[(i + 1) % 10]);
        }
        let rid = svc.writes().add_resource(users[0]);
        svc.writes().add_rule(rid, "friend+[1..32]").unwrap();
        for &u in &users {
            assert_eq!(
                svc.reads().check(rid, u).unwrap(),
                Decision::Grant,
                "cycle member on {}",
                svc.reads().describe()
            );
        }
    }
}

#[test]
fn attribute_type_confusion_fails_closed_on_every_deployment() {
    for deployment in trait_deployments() {
        let mut svc = deployment.build();
        let a = svc.writes().add_user("A");
        let b = svc.writes().add_user("B");
        svc.writes().add_relationship(a, "friend", b);
        svc.writes().set_user_attr(b, "age", "twenty-six".into());
        let rid = svc.writes().add_resource(a);
        svc.writes().add_rule(rid, "friend+[1]{age>=18}").unwrap();
        assert_eq!(
            svc.reads().check(rid, b).unwrap(),
            Decision::Deny,
            "text 'age' must not satisfy a numeric predicate ({})",
            svc.reads().describe()
        );
    }
}

#[test]
fn attribute_type_confusion_fails_closed() {
    let mut sys = AccessControlSystem::new_online();
    let a = sys.add_user("A");
    let b = sys.add_user("B");
    sys.connect(a, "friend", b);
    sys.set_user_attr(b, "age", "twenty-six"); // text, not a number
    let rid = sys.share(a);
    sys.allow(rid, "friend+[1]{age>=18}").unwrap();
    assert_eq!(
        sys.service().check(rid, b).unwrap(),
        Decision::Deny,
        "text 'age' must not satisfy a numeric predicate"
    );
}
