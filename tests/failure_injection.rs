//! Failure injection: malformed inputs, degenerate graphs, and limit
//! boundaries. The policy layer must fail *closed* and fail *loudly*
//! (typed errors), never panic or silently grant.

use socialreach::core::{plan, PlanConfig};
use socialreach::{
    parse_path, AccessControlSystem, Decision, EvalError, JoinEngineConfig, JoinIndexEngine,
    JoinStrategy, SocialGraph,
};

// ---------------------------------------------------------------------
// Parser abuse
// ---------------------------------------------------------------------

#[test]
fn parser_rejects_garbage_without_panicking() {
    let garbage = [
        "",
        " ",
        "/",
        "//",
        "[1]",
        "{x=1}",
        "friend+[",
        "friend+[]",
        "friend+[,]",
        "friend+[1,]",
        "friend+[..]",
        "friend+[..3]",
        "friend{",
        "friend{}",
        "friend{=}",
        "friend{a==}",
        "friend{a=\"",
        "friend++",
        "friend+-",
        "friend/",
        "friend+[999999999999999999]",
        "friend+[0..0]",
        "friend*{a~}",
        "🦀+[1]",
    ];
    for text in garbage {
        let mut vocab = socialreach::graph::Vocabulary::new();
        let result = parse_path(text, &mut vocab);
        assert!(
            result.is_err(),
            "{text:?} should be rejected, got {result:?}"
        );
    }
}

#[test]
fn parse_error_positions_are_in_bounds() {
    for text in ["friend+[", "friend korea", "friend{age>}"] {
        let mut vocab = socialreach::graph::Vocabulary::new();
        let err = parse_path(text, &mut vocab).unwrap_err();
        assert!(
            err.pos <= text.len(),
            "position {} beyond {text:?}",
            err.pos
        );
        // Display must not panic on any position.
        let _ = err.to_string();
    }
}

// ---------------------------------------------------------------------
// Degenerate graphs
// ---------------------------------------------------------------------

#[test]
fn empty_graph_everything_denies_cleanly() {
    let mut sys = AccessControlSystem::new_indexed();
    let ghost = sys.add_user("OnlyUser");
    let rid = sys.share(ghost);
    sys.allow(rid, "friend+[1..]").unwrap();
    // No edges at all: nobody but the owner.
    assert_eq!(sys.service().check(rid, ghost).unwrap(), Decision::Grant);
    assert_eq!(sys.service().audience(rid).unwrap(), vec![ghost]);
}

#[test]
fn self_loops_are_handled_by_every_engine() {
    // A member who "friends" themselves: walks may traverse the loop
    // repeatedly; engines must agree and terminate.
    let mut g = SocialGraph::new();
    let a = g.add_node("Narcissus");
    let b = g.add_node("Echo");
    let friend = g.intern_label("friend");
    g.add_edge(a, a, friend);
    g.add_edge(a, b, friend);
    let path = parse_path("friend+[3]", g.vocab_mut()).unwrap();

    let truth = socialreach::online::evaluate(&g, a, &path, None);
    for strategy in [
        JoinStrategy::PaperFaithful,
        JoinStrategy::OwnerSeeded,
        JoinStrategy::AdjacencyOnly,
    ] {
        let engine = JoinIndexEngine::build(
            &g,
            JoinEngineConfig {
                strategy,
                ..JoinEngineConfig::default()
            },
        );
        let got = socialreach::AccessEngine::audience(&engine, &g, a, &path).unwrap();
        assert_eq!(got.members, truth.matched, "strategy {strategy:?}");
    }
    // loop³ ends on Narcissus, loop²·out ends on Echo: both match.
    assert_eq!(truth.matched, vec![a, b]);
}

#[test]
fn parallel_edges_count_as_distinct_relationships() {
    let mut g = SocialGraph::new();
    let a = g.add_node("A");
    let b = g.add_node("B");
    let friend = g.intern_label("friend");
    g.add_edge(a, b, friend);
    g.add_edge(a, b, friend); // duplicate tie
    let path = parse_path("friend+[1]", g.vocab_mut()).unwrap();
    let out = socialreach::online::evaluate(&g, a, &path, None);
    assert_eq!(out.matched, vec![b], "audience is a set, not a bag");
}

#[test]
fn isolated_owner_with_reverse_policy() {
    let mut g = SocialGraph::new();
    let a = g.add_node("A");
    let b = g.add_node("B");
    g.intern_label("friend");
    let path = parse_path("friend-[1,2]", g.vocab_mut()).unwrap();
    let out = socialreach::online::evaluate(&g, a, &path, Some(b));
    assert!(!out.granted);
}

// ---------------------------------------------------------------------
// Limits
// ---------------------------------------------------------------------

#[test]
fn plan_overflow_is_a_typed_error_not_a_hang() {
    let mut vocab = socialreach::graph::Vocabulary::new();
    // 4 both-direction steps of depth 4 = 2^16 orientation vectors.
    let path = parse_path("friend*[4]/friend*[4]/friend*[4]/friend*[4]", &mut vocab).unwrap();
    let err = plan(
        &path,
        &PlanConfig {
            max_depth: 8,
            max_line_queries: 1000,
        },
    )
    .unwrap_err();
    assert!(matches!(err, EvalError::PlanOverflow { .. }));
}

#[test]
fn tuple_overflow_denies_nothing_silently() {
    // A dense bidirectional clique with a tiny budget: the engine must
    // surface TupleOverflow, not return a partial (wrong) decision.
    let mut g = SocialGraph::new();
    let nodes: Vec<_> = (0..8).map(|i| g.add_node(&format!("u{i}"))).collect();
    let f = g.intern_label("friend");
    for &x in &nodes {
        for &y in &nodes {
            if x != y {
                g.add_edge(x, y, f);
            }
        }
    }
    let path = parse_path("friend+[4]", g.vocab_mut()).unwrap();
    let engine = JoinIndexEngine::build(
        &g,
        JoinEngineConfig {
            strategy: JoinStrategy::PaperFaithful,
            max_tuples: 100,
            ..JoinEngineConfig::default()
        },
    );
    let err = engine.evaluate(&g, nodes[0], &path, None).unwrap_err();
    assert!(matches!(err, EvalError::TupleOverflow { limit: 100 }));
}

#[test]
fn unknown_labels_in_policies_deny_but_do_not_error() {
    // A policy can reference a relationship type no edge carries yet:
    // it simply matches nobody (fail closed) — and starts matching once
    // such edges appear.
    let mut sys = AccessControlSystem::new_online();
    let a = sys.add_user("A");
    let b = sys.add_user("B");
    sys.connect(a, "friend", b);
    let rid = sys.share(a);
    sys.allow(rid, "mentor+[1]").unwrap();
    assert_eq!(sys.service().check(rid, b).unwrap(), Decision::Deny);
    sys.connect(a, "mentor", b);
    assert_eq!(sys.service().check(rid, b).unwrap(), Decision::Grant);
}

#[test]
fn deep_unbounded_policy_terminates_on_cyclic_graphs() {
    // friend+[1..] over a cycle: the online engine's saturation must
    // terminate; the join planner truncates at max_depth.
    let mut sys = AccessControlSystem::new_online();
    let users: Vec<_> = (0..10).map(|i| sys.add_user(&format!("u{i}"))).collect();
    for i in 0..10 {
        sys.connect(users[i], "friend", users[(i + 1) % 10]);
    }
    let rid = sys.share(users[0]);
    sys.allow(rid, "friend+[1..]").unwrap();
    for &u in &users {
        assert_eq!(sys.service().check(rid, u).unwrap(), Decision::Grant);
    }
}

#[test]
fn attribute_type_confusion_fails_closed() {
    let mut sys = AccessControlSystem::new_online();
    let a = sys.add_user("A");
    let b = sys.add_user("B");
    sys.connect(a, "friend", b);
    sys.set_user_attr(b, "age", "twenty-six"); // text, not a number
    let rid = sys.share(a);
    sys.allow(rid, "friend+[1]{age>=18}").unwrap();
    assert_eq!(
        sys.service().check(rid, b).unwrap(),
        Decision::Deny,
        "text 'age' must not satisfy a numeric predicate"
    );
}
