//! Semantic tests for audience materialization and the multi-engine
//! `resource_audience` helper: the union-of-intersections rule of the
//! policy model, verified against hand-computed audiences and across
//! engines.

use socialreach::core::resource_audience;
use socialreach::{
    parse_path, AccessCondition, AccessRule, Enforcer, JoinEngineConfig, JoinIndexEngine,
    JoinStrategy, OnlineEngine, PolicyStore, SocialGraph,
};

/// A two-community graph:
///
/// ```text
/// owner -friend-> f1 -friend-> f2        (friend chain)
/// owner -colleague-> c1 -colleague-> c2  (colleague chain)
/// f1 -colleague-> c1                     (bridge)
/// ```
fn setup() -> (SocialGraph, PolicyStore) {
    let mut g = SocialGraph::new();
    let owner = g.add_node("owner");
    let f1 = g.add_node("f1");
    let f2 = g.add_node("f2");
    let c1 = g.add_node("c1");
    let c2 = g.add_node("c2");
    g.connect(owner, "friend", f1);
    g.connect(f1, "friend", f2);
    g.connect(owner, "colleague", c1);
    g.connect(c1, "colleague", c2);
    g.connect(f1, "colleague", c1);
    (g, PolicyStore::new())
}

fn names(g: &SocialGraph, audience: &[socialreach::NodeId]) -> Vec<String> {
    audience
        .iter()
        .map(|&n| g.node_name(n).to_owned())
        .collect()
}

#[test]
fn single_condition_audience_is_the_path_audience_plus_owner() {
    let (mut g, mut store) = setup();
    let owner = g.node_by_name("owner").unwrap();
    let rid = store.register_resource(owner);
    store.allow(rid, "friend+[1,2]", &mut g).unwrap();
    let audience = resource_audience(&g, &store, rid, &OnlineEngine).unwrap();
    assert_eq!(names(&g, &audience), vec!["owner", "f1", "f2"]);
}

#[test]
fn conditions_intersect_within_a_rule() {
    let (mut g, mut store) = setup();
    let owner = g.node_by_name("owner").unwrap();
    let rid = store.register_resource(owner);
    // Both a friend within 2 hops AND reachable through a colleague
    // path of length 2: only c1 (owner->f1->c1 colleague? no —
    // colleague+[1,2] reaches c1 and c2; friend+[1,2] reaches f1, f2;
    // intersection is empty) — construct a member in both audiences:
    let p_friend = parse_path("friend+[1]/colleague+[1]", g.vocab_mut()).unwrap();
    let p_coll = parse_path("colleague+[1]", g.vocab_mut()).unwrap();
    store
        .add_rule(AccessRule {
            resource: rid,
            conditions: vec![
                AccessCondition {
                    owner,
                    path: p_friend,
                }, // reaches c1
                AccessCondition {
                    owner,
                    path: p_coll,
                }, // reaches c1
            ],
        })
        .unwrap();
    let audience = resource_audience(&g, &store, rid, &OnlineEngine).unwrap();
    assert_eq!(names(&g, &audience), vec!["owner", "c1"]);
}

#[test]
fn rules_union_across_rules() {
    let (mut g, mut store) = setup();
    let owner = g.node_by_name("owner").unwrap();
    let rid = store.register_resource(owner);
    store.allow(rid, "friend+[1]", &mut g).unwrap();
    store.allow(rid, "colleague+[1]", &mut g).unwrap();
    let audience = resource_audience(&g, &store, rid, &OnlineEngine).unwrap();
    assert_eq!(names(&g, &audience), vec!["owner", "f1", "c1"]);
}

#[test]
fn resource_audience_agrees_across_engines() {
    let (mut g, mut store) = setup();
    let owner = g.node_by_name("owner").unwrap();
    let rid = store.register_resource(owner);
    store.allow(rid, "friend*[1..2]", &mut g).unwrap();
    store.allow(rid, "colleague+[1,2]", &mut g).unwrap();

    let online = resource_audience(&g, &store, rid, &OnlineEngine).unwrap();
    for strategy in [JoinStrategy::OwnerSeeded, JoinStrategy::AdjacencyOnly] {
        let engine = JoinIndexEngine::build(
            &g,
            JoinEngineConfig {
                strategy,
                ..JoinEngineConfig::default()
            },
        );
        let indexed = resource_audience(&g, &store, rid, &engine).unwrap();
        assert_eq!(indexed, online, "strategy {strategy:?}");
    }
}

#[test]
fn audience_membership_matches_individual_checks() {
    // The audience is exactly the set of requesters the enforcer
    // grants — no more, no fewer.
    let (mut g, mut store) = setup();
    let owner = g.node_by_name("owner").unwrap();
    let rid = store.register_resource(owner);
    store
        .allow(rid, "friend+[1]/colleague+[1,2]", &mut g)
        .unwrap();
    let audience = resource_audience(&g, &store, rid, &OnlineEngine).unwrap();
    let enforcer = Enforcer::new(OnlineEngine);
    for u in g.nodes() {
        let granted =
            enforcer.check_access(&g, &store, rid, u).unwrap() == socialreach::Decision::Grant;
        assert_eq!(
            granted,
            audience.binary_search(&u).is_ok(),
            "mismatch for {}",
            g.node_name(u)
        );
    }
}
