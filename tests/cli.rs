//! Smoke tests for the `socialreach` CLI binary: every subcommand, the
//! documented exit codes, and error handling.

use std::io::Write as _;
use std::process::{Command, Stdio};

const EDGES: &str = "Alice\tfriend\tBob\nBob\tfriend\tCarol\nCarol\tcolleague\tDave\n";

fn edges_file() -> std::path::PathBuf {
    let path =
        std::env::temp_dir().join(format!("socialreach-cli-test-{}.tsv", std::process::id()));
    std::fs::write(&path, EDGES).expect("write temp edge list");
    path
}

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_socialreach"))
}

#[test]
fn check_grants_with_exit_code_zero() {
    let file = edges_file();
    let out = cli()
        .args([
            "check",
            file.to_str().unwrap(),
            "Alice",
            "friend+[1,2]",
            "Carol",
        ])
        .output()
        .expect("spawns");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "GRANT");
}

#[test]
fn check_denies_with_exit_code_one() {
    let file = edges_file();
    let out = cli()
        .args([
            "check",
            file.to_str().unwrap(),
            "Alice",
            "colleague+[1]",
            "Dave",
        ])
        .output()
        .expect("spawns");
    assert_eq!(out.status.code(), Some(1));
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "DENY");
}

#[test]
fn audience_lists_the_owner_and_matching_members() {
    let file = edges_file();
    let out = cli()
        .args([
            "audience",
            file.to_str().unwrap(),
            "Alice",
            "friend+[1,2]/colleague+[1]",
        ])
        .output()
        .expect("spawns");
    assert!(out.status.success());
    // Policy semantics: the resource audience always contains the
    // owner, plus every member the rule's path matches.
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "Alice\nDave");
}

#[test]
fn sharded_deployment_serves_identically() {
    // SOCIALREACH_SHARDS swaps the serving backend behind the same
    // AccessService API: outputs and exit codes must not move.
    let file = edges_file();
    for shards in ["1", "3"] {
        let grant = cli()
            .env("SOCIALREACH_SHARDS", shards)
            .args([
                "check",
                file.to_str().unwrap(),
                "Alice",
                "friend+[1,2]",
                "Carol",
            ])
            .output()
            .expect("spawns");
        assert!(grant.status.success(), "shards {shards}");
        assert_eq!(String::from_utf8_lossy(&grant.stdout).trim(), "GRANT");
        let explain = cli()
            .env("SOCIALREACH_SHARDS", shards)
            .args([
                "explain",
                file.to_str().unwrap(),
                "Alice",
                "friend+[2]",
                "Carol",
            ])
            .output()
            .expect("spawns");
        let text = String::from_utf8_lossy(&explain.stdout);
        assert!(
            text.contains("GRANT via Alice -friend-> Bob -friend-> Carol"),
            "shards {shards}: {text}"
        );
        let audience = cli()
            .env("SOCIALREACH_SHARDS", shards)
            .args([
                "audience",
                file.to_str().unwrap(),
                "Alice",
                "friend+[1,2]/colleague+[1]",
            ])
            .output()
            .expect("spawns");
        assert_eq!(
            String::from_utf8_lossy(&audience.stdout).trim(),
            "Alice\nDave",
            "shards {shards}"
        );
    }
    let bogus = cli()
        .env("SOCIALREACH_SHARDS", "zero")
        .args([
            "check",
            file.to_str().unwrap(),
            "Alice",
            "friend+[1]",
            "Bob",
        ])
        .output()
        .expect("spawns");
    assert_eq!(bogus.status.code(), Some(2));
}

#[test]
fn owner_requests_are_always_granted() {
    let file = edges_file();
    let out = cli()
        .args([
            "check",
            file.to_str().unwrap(),
            "Alice",
            "colleague+[1]",
            "Alice",
        ])
        .output()
        .expect("spawns");
    assert!(out.status.success(), "owners always access their resources");
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "GRANT");
}

#[test]
fn explain_prints_the_witness_walk() {
    let file = edges_file();
    let out = cli()
        .args([
            "explain",
            file.to_str().unwrap(),
            "Alice",
            "friend+[2]",
            "Carol",
        ])
        .output()
        .expect("spawns");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(
        text.contains("GRANT via Alice -friend-> Bob -friend-> Carol"),
        "{text}"
    );
}

#[test]
fn stats_summarizes_the_graph() {
    let file = edges_file();
    let out = cli()
        .args(["stats", file.to_str().unwrap()])
        .output()
        .expect("spawns");
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("|V| = 4"), "{text}");
    assert!(text.contains("friend: 2"), "{text}");
}

#[test]
fn stdin_input_via_dash() {
    let mut child = cli()
        .args(["check", "-", "Alice", "friend+[1]", "Bob"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawns");
    child
        .stdin
        .as_mut()
        .expect("piped stdin")
        .write_all(EDGES.as_bytes())
        .expect("writes");
    let out = child.wait_with_output().expect("finishes");
    assert!(out.status.success());
}

#[test]
fn usage_errors_exit_with_two() {
    for args in [
        vec![],
        vec!["frobnicate"],
        vec!["check", "nope.tsv"],
        vec!["check", "/nonexistent/file.tsv", "A", "friend", "B"],
    ] {
        let out = cli().args(&args).output().expect("spawns");
        assert_eq!(out.status.code(), Some(2), "args {args:?}");
        let err = String::from_utf8_lossy(&out.stderr);
        assert!(err.contains("usage:"), "args {args:?}: {err}");
    }
}

#[test]
fn bad_path_expression_reports_position() {
    let file = edges_file();
    let out = cli()
        .args([
            "check",
            file.to_str().unwrap(),
            "Alice",
            "friend+[0]",
            "Bob",
        ])
        .output()
        .expect("spawns");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("depth levels start at 1"));
}

#[test]
fn unknown_member_is_a_usage_error() {
    let file = edges_file();
    let out = cli()
        .args([
            "check",
            file.to_str().unwrap(),
            "Zelda",
            "friend+[1]",
            "Bob",
        ])
        .output()
        .expect("spawns");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown member"));
}

// ---------------------------------------------------------------------
// Durable mode (SOCIALREACH_DATA_DIR)
// ---------------------------------------------------------------------

#[test]
fn durable_ingestion_survives_a_crash_and_serves_from_recovery() {
    let file = edges_file();
    let dir = std::env::temp_dir().join(format!("socialreach-cli-durable-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Ingest the edge list durably and answer a check.
    let out = cli()
        .env("SOCIALREACH_DATA_DIR", &dir)
        .args([
            "check",
            file.to_str().unwrap(),
            "Alice",
            "friend+[1,2]",
            "Carol",
        ])
        .output()
        .expect("spawns");
    assert!(
        out.status.success(),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(dir.join("wal.log").exists(), "mutations were logged");

    // "Crash": the process above already exited. Serve the recovered
    // state with '@' — no edge list, same decision.
    let out = cli()
        .env("SOCIALREACH_DATA_DIR", &dir)
        .args(["check", "@", "Alice", "friend+[1,2]", "Carol"])
        .output()
        .expect("spawns");
    assert!(
        out.status.success(),
        "recovered state serves: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "GRANT");

    // Recovered stats see the ingested graph.
    let out = cli()
        .env("SOCIALREACH_DATA_DIR", &dir)
        .args(["stats", "@"])
        .output()
        .expect("spawns");
    assert!(out.status.success());

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn crash_after_k_mutations_loses_nothing_already_logged() {
    let file = edges_file();
    let dir = std::env::temp_dir().join(format!("socialreach-cli-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Abort mid-ingestion: 4 members exist, the 3 edges don't yet.
    let out = cli()
        .env("SOCIALREACH_DATA_DIR", &dir)
        .env("SOCIALREACH_CRASH_AFTER", "4")
        .args([
            "check",
            file.to_str().unwrap(),
            "Alice",
            "friend+[1,2]",
            "Carol",
        ])
        .output()
        .expect("spawns");
    assert!(!out.status.success(), "the crash lever aborts the process");
    assert!(String::from_utf8_lossy(&out.stderr).contains("aborting after 4 mutations"));

    // Recovery serves the logged prefix: members resolved, no edges,
    // so the same check now denies (fail closed, never fabricate).
    let out = cli()
        .env("SOCIALREACH_DATA_DIR", &dir)
        .args(["check", "@", "Alice", "friend+[1,2]", "Carol"])
        .output()
        .expect("spawns");
    assert_eq!(out.status.code(), Some(1), "prefix state: edge not logged");
    assert_eq!(String::from_utf8_lossy(&out.stdout).trim(), "DENY");

    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn at_file_without_data_dir_is_a_usage_error() {
    let out = cli()
        .env_remove("SOCIALREACH_DATA_DIR")
        .args(["check", "@", "Alice", "friend+[1]", "Bob"])
        .output()
        .expect("spawns");
    assert_eq!(out.status.code(), Some(2));
    assert!(String::from_utf8_lossy(&out.stderr).contains("SOCIALREACH_DATA_DIR"));
}
