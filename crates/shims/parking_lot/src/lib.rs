//! Offline stand-in for `parking_lot`: wraps the std synchronization
//! primitives behind parking_lot's non-poisoning API (guards returned
//! directly, a poisoned lock just yields the inner data — consistent
//! with parking_lot, which has no poisoning at all).

use std::fmt;
use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Reader-writer lock with parking_lot's panic-transparent API.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Exclusive access through `&mut self` without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_read() {
            Ok(guard) => f.debug_struct("RwLock").field("data", &&*guard).finish(),
            Err(_) => f.debug_struct("RwLock").field("data", &"<locked>").finish(),
        }
    }
}

/// Mutex with parking_lot's panic-transparent API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Exclusive access through `&mut self` without locking.
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: fmt::Debug + ?Sized> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.inner.try_lock() {
            Ok(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            Err(_) => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(1);
        assert_eq!(*lock.read(), 1);
        *lock.write() = 2;
        assert_eq!(*lock.read(), 2);
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(*m.lock(), vec![1, 2]);
    }

    #[test]
    fn debug_formats() {
        let lock = RwLock::new(5);
        assert!(format!("{lock:?}").contains('5'));
        let m = Mutex::new(6);
        assert!(format!("{m:?}").contains('6'));
    }
}
