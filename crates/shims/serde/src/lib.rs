//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no registry access, so this workspace ships
//! a minimal serialization framework under the same crate name. It
//! keeps the surface the workspace actually uses: the `Serialize` /
//! `Deserialize` derive macros (re-exported from our `serde_derive`
//! shim), the traits of the same names, and enough impls on std types
//! for the derived code. Instead of serde's visitor-based data model,
//! everything funnels through one owned [`Value`] tree which
//! `serde_json` (also shimmed) renders to and parses from JSON text.
//!
//! Encoding conventions mirror serde's JSON defaults closely enough for
//! round-trips within this workspace: named structs are maps, newtype
//! structs are transparent, unit enum variants are strings, and data
//! variants are externally tagged single-entry maps.

use std::collections::HashMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing tree every value serializes into.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null` (used for `Option::None`).
    Null,
    /// Boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer beyond `i64::MAX`.
    UInt(u64),
    /// Floating point.
    Float(f64),
    /// String.
    Str(String),
    /// Sequence.
    Array(Vec<Value>),
    /// Ordered map (insertion order preserved for determinism).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// Borrows the map entries when `self` is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Borrows the elements when `self` is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }
}

/// Looks a field up in serialized map entries (derive-generated code).
pub fn value_get<'a>(entries: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Serialization / deserialization error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with a message.
    pub fn new(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "serde: {}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Converts a value into the [`Value`] tree.
pub trait Serialize {
    /// Serializes `self`.
    fn to_value(&self) -> Value;
}

/// Reconstructs a value from the [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserializes from `v`.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

// ---------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error::new(concat!("integer out of range for ", stringify!($t)))),
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| Error::new(concat!("integer out of range for ", stringify!($t)))),
                    _ => Err(Error::new(concat!("expected integer for ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_int!(i8, i16, i32, i64, isize, u8, u16, u32);

macro_rules! impl_uint_wide {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                match i64::try_from(*self) {
                    Ok(i) => Value::Int(i),
                    Err(_) => Value::UInt(*self as u64),
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Int(i) => <$t>::try_from(*i)
                        .map_err(|_| Error::new(concat!("integer out of range for ", stringify!($t)))),
                    Value::UInt(u) => <$t>::try_from(*u)
                        .map_err(|_| Error::new(concat!("integer out of range for ", stringify!($t)))),
                    _ => Err(Error::new(concat!("expected integer for ", stringify!($t)))),
                }
            }
        }
    )*};
}

impl_uint_wide!(u64, usize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Float(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            Value::UInt(u) => Ok(*u as f64),
            _ => Err(Error::new("expected number for f64")),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Float(f64::from(*self))
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|f| f as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::new("expected bool")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::new("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::new("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($name: Deserialize),+> Deserialize for ($($name,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let a = v.as_array().ok_or_else(|| Error::new("expected tuple array"))?;
                let expect = [$($idx),+].len();
                if a.len() != expect {
                    return Err(Error::new("tuple arity mismatch"));
                }
                Ok(($($name::from_value(&a[$idx])?,)+))
            }
        }
    )*};
}

impl_tuple! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
}

/// Map keys rendered as JSON object keys (serde stringifies integer
/// keys the same way).
pub trait MapKey: Sized {
    /// Key → object-key text.
    fn to_key(&self) -> String;
    /// Object-key text → key.
    fn from_key(s: &str) -> Result<Self, Error>;
}

impl MapKey for String {
    fn to_key(&self) -> String {
        self.clone()
    }
    fn from_key(s: &str) -> Result<Self, Error> {
        Ok(s.to_owned())
    }
}

macro_rules! impl_map_key_int {
    ($($t:ty),*) => {$(
        impl MapKey for $t {
            fn to_key(&self) -> String {
                self.to_string()
            }
            fn from_key(s: &str) -> Result<Self, Error> {
                s.parse().map_err(|_| Error::new("invalid integer map key"))
            }
        }
    )*};
}

impl_map_key_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<K: MapKey + Ord + std::hash::Hash, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        // Sort entries for deterministic output.
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (k.to_key(), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Map(entries)
    }
}
impl<K: MapKey + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_map()
            .ok_or_else(|| Error::new("expected map"))?
            .iter()
            .map(|(k, v)| Ok((K::from_key(k)?, V::from_value(v)?)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(i64::from_value(&42i64.to_value()).unwrap(), 42);
        assert_eq!(u32::from_value(&7u32.to_value()).unwrap(), 7);
        assert_eq!(f64::from_value(&2.5f64.to_value()).unwrap(), 2.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(
            String::from_value(&"hi".to_string().to_value()).unwrap(),
            "hi"
        );
    }

    #[test]
    fn containers_round_trip() {
        let v: Vec<(u32, Option<u32>)> = vec![(1, Some(2)), (3, None)];
        let round: Vec<(u32, Option<u32>)> = Vec::from_value(&v.to_value()).unwrap();
        assert_eq!(round, v);
        let mut m: HashMap<u64, String> = HashMap::new();
        m.insert(9, "x".into());
        let back: HashMap<u64, String> = HashMap::from_value(&m.to_value()).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn type_mismatch_errors() {
        assert!(bool::from_value(&Value::Int(1)).is_err());
        assert!(u8::from_value(&Value::Int(300)).is_err());
        assert!(String::from_value(&Value::Null).is_err());
    }
}
