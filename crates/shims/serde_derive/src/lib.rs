//! Offline stand-in for `serde_derive`.
//!
//! Generates impls of the shim `serde::Serialize` / `serde::Deserialize`
//! traits (a single owned `Value` tree, see the `serde` shim) for the
//! type shapes this workspace actually derives on: non-generic structs
//! (named, tuple, unit) and enums (unit, tuple and struct variants),
//! honoring `#[serde(skip)]` on named struct fields. Anything fancier
//! fails loudly with a `compile_error!` so a silent wrong encoding can
//! never ship.
//!
//! No `syn`/`quote`: the input item is parsed directly off the
//! `proc_macro` token stream (the shapes involved are small), and the
//! output is rendered as source text and re-parsed.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[derive(Debug)]
enum Fields {
    Named(Vec<(String, bool)>), // (name, skip)
    Tuple(usize),
    Unit,
}

#[derive(Debug)]
struct Variant {
    name: String,
    fields: Fields,
}

#[derive(Debug)]
enum Shape {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Parser {
    tokens: Vec<TokenTree>,
    pos: usize,
}

impl Parser {
    fn new(ts: TokenStream) -> Self {
        Parser {
            tokens: ts.into_iter().collect(),
            pos: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.tokens.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.tokens.len()
    }

    /// Consumes leading `#[...]` attributes; true when one of them is
    /// `#[serde(skip)]` (or a `serde(...)` list containing `skip`).
    fn skip_attrs(&mut self) -> Result<bool, String> {
        let mut skip = false;
        while matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            self.next(); // '#'
            let Some(TokenTree::Group(g)) = self.next() else {
                return Err("expected [...] after #".into());
            };
            let inner: Vec<TokenTree> = g.stream().into_iter().collect();
            if let Some(TokenTree::Ident(name)) = inner.first() {
                if name.to_string() == "serde" {
                    if let Some(TokenTree::Group(args)) = inner.get(1) {
                        let text = args.stream().to_string();
                        if text.split(',').any(|part| part.trim() == "skip") {
                            skip = true;
                        } else {
                            return Err(format!(
                                "unsupported serde attribute `{text}` (shim supports only `skip`)"
                            ));
                        }
                    }
                }
            }
        }
        Ok(skip)
    }

    /// Consumes a visibility qualifier (`pub`, `pub(crate)`, …).
    fn skip_vis(&mut self) {
        if matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == "pub") {
            self.next();
            if matches!(self.peek(), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                self.next();
            }
        }
    }

    fn expect_ident(&mut self) -> Result<String, String> {
        match self.next() {
            Some(TokenTree::Ident(i)) => Ok(i.to_string()),
            other => Err(format!("expected identifier, found {other:?}")),
        }
    }

    /// Consumes type tokens until a top-level `,` (which is consumed) or
    /// the end of the stream. Tracks `<`/`>` nesting so commas inside
    /// generic arguments don't split fields.
    fn skip_type(&mut self) -> Result<(), String> {
        let mut angle = 0i32;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    self.next();
                    return Ok(());
                }
                _ => {}
            }
            self.next();
        }
        Ok(())
    }

    fn parse_named_fields(stream: TokenStream) -> Result<Vec<(String, bool)>, String> {
        let mut p = Parser::new(stream);
        let mut out = Vec::new();
        while !p.at_end() {
            let skip = p.skip_attrs()?;
            p.skip_vis();
            let name = p.expect_ident()?;
            match p.next() {
                Some(TokenTree::Punct(c)) if c.as_char() == ':' => {}
                other => return Err(format!("expected `:` after field {name}, found {other:?}")),
            }
            p.skip_type()?;
            out.push((name, skip));
        }
        Ok(out)
    }

    fn parse_tuple_fields(stream: TokenStream) -> Result<usize, String> {
        let mut p = Parser::new(stream);
        let mut count = 0;
        while !p.at_end() {
            let skip = p.skip_attrs()?;
            if skip {
                return Err("#[serde(skip)] on tuple fields is not supported by the shim".into());
            }
            p.skip_vis();
            if p.at_end() {
                break; // trailing comma
            }
            p.skip_type()?;
            count += 1;
        }
        Ok(count)
    }

    fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
        let mut p = Parser::new(stream);
        let mut out = Vec::new();
        while !p.at_end() {
            p.skip_attrs()?;
            if p.at_end() {
                break;
            }
            let name = p.expect_ident()?;
            let fields = match p.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let g = g.stream();
                    p.next();
                    Fields::Named(Self::parse_named_fields(g)?)
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    let g = g.stream();
                    p.next();
                    Fields::Tuple(Self::parse_tuple_fields(g)?)
                }
                _ => Fields::Unit,
            };
            match p.next() {
                None => {
                    out.push(Variant { name, fields });
                    break;
                }
                Some(TokenTree::Punct(c)) if c.as_char() == ',' => {
                    out.push(Variant { name, fields });
                }
                other => {
                    return Err(format!(
                    "unexpected token after variant {name}: {other:?} (discriminants unsupported)"
                ))
                }
            }
        }
        Ok(out)
    }

    /// Parses the whole derive input into `(type name, shape)`.
    fn parse_item(mut self) -> Result<(String, Shape), String> {
        self.skip_attrs()?;
        self.skip_vis();
        let kw = self.expect_ident()?;
        let name = self.expect_ident()?;
        if matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
            return Err(format!(
                "generic type {name} is not supported by the serde shim derive"
            ));
        }
        match kw.as_str() {
            "struct" => match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok((
                    name,
                    Shape::Struct(Fields::Named(Self::parse_named_fields(g.stream())?)),
                )),
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => Ok((
                    name,
                    Shape::Struct(Fields::Tuple(Self::parse_tuple_fields(g.stream())?)),
                )),
                Some(TokenTree::Punct(p)) if p.as_char() == ';' => {
                    Ok((name, Shape::Struct(Fields::Unit)))
                }
                other => Err(format!("unexpected struct body: {other:?}")),
            },
            "enum" => match self.next() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Ok((name, Shape::Enum(Self::parse_variants(g.stream())?)))
                }
                other => Err(format!("unexpected enum body: {other:?}")),
            },
            other => Err(format!("expected struct or enum, found `{other}`")),
        }
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({:?});", format!("serde shim derive: {msg}"))
        .parse()
        .expect("compile_error tokens parse")
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

fn gen_serialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Struct(Fields::Named(fields)) => {
            let mut s = String::from("let mut m: Vec<(String, ::serde::Value)> = Vec::new();\n");
            for (f, skip) in fields {
                if *skip {
                    continue;
                }
                s.push_str(&format!(
                    "m.push(({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f})));\n"
                ));
            }
            s.push_str("::serde::Value::Map(m)");
            s
        }
        Shape::Struct(Fields::Tuple(1)) => "::serde::Serialize::to_value(&self.0)".to_string(),
        Shape::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("::serde::Value::Array(vec![{}])", items.join(", "))
        }
        Shape::Struct(Fields::Unit) => "::serde::Value::Null".to_string(),
        Shape::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str({vn:?}.to_string()),\n"
                    )),
                    Fields::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(f0) => ::serde::Value::Map(vec![({vn:?}.to_string(), ::serde::Serialize::to_value(f0))]),\n"
                    )),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Map(vec![({vn:?}.to_string(), ::serde::Value::Array(vec![{}]))]),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                    Fields::Named(fields) => {
                        let binds: Vec<String> =
                            fields.iter().map(|(f, _)| f.clone()).collect();
                        let items: Vec<String> = fields
                            .iter()
                            .map(|(f, _)| {
                                format!("({f:?}.to_string(), ::serde::Serialize::to_value({f}))")
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {} }} => ::serde::Value::Map(vec![({vn:?}.to_string(), ::serde::Value::Map(vec![{}]))]),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n}}\n"
    )
}

fn gen_named_constructor(path: &str, fields: &[(String, bool)], map_expr: &str) -> String {
    let mut init = String::new();
    for (f, skip) in fields {
        if *skip {
            init.push_str(&format!("{f}: ::std::default::Default::default(),\n"));
        } else {
            init.push_str(&format!(
                "{f}: ::serde::Deserialize::from_value(::serde::value_get({map_expr}, {f:?})\
                 .ok_or_else(|| ::serde::Error::new(concat!(\"missing field \", {f:?})))?)?,\n"
            ));
        }
    }
    format!("{path} {{\n{init}}}")
}

fn gen_deserialize(name: &str, shape: &Shape) -> String {
    let body = match shape {
        Shape::Struct(Fields::Named(fields)) => {
            let ctor = gen_named_constructor(name, fields, "m");
            format!(
                "let m = v.as_map().ok_or_else(|| ::serde::Error::new(\"expected map for {name}\"))?;\n\
                 Ok({ctor})"
            )
        }
        Shape::Struct(Fields::Tuple(1)) => {
            format!("Ok({name}(::serde::Deserialize::from_value(v)?))")
        }
        Shape::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("::serde::Deserialize::from_value(&a[{i}])?"))
                .collect();
            format!(
                "let a = v.as_array().ok_or_else(|| ::serde::Error::new(\"expected array for {name}\"))?;\n\
                 if a.len() != {n} {{ return Err(::serde::Error::new(\"arity mismatch for {name}\")); }}\n\
                 Ok({name}({}))",
                items.join(", ")
            )
        }
        Shape::Struct(Fields::Unit) => format!("Ok({name})"),
        Shape::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                let path = format!("{name}::{vn}");
                match &v.fields {
                    Fields::Unit => {
                        unit_arms.push_str(&format!("{vn:?} => Ok({path}),\n"));
                    }
                    Fields::Tuple(1) => data_arms.push_str(&format!(
                        "{vn:?} => Ok({path}(::serde::Deserialize::from_value(inner)?)),\n"
                    )),
                    Fields::Tuple(n) => {
                        let items: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&a[{i}])?"))
                            .collect();
                        data_arms.push_str(&format!(
                            "{vn:?} => {{\n\
                             let a = inner.as_array().ok_or_else(|| ::serde::Error::new(\"expected array for {path}\"))?;\n\
                             if a.len() != {n} {{ return Err(::serde::Error::new(\"arity mismatch for {path}\")); }}\n\
                             Ok({path}({}))\n}}\n",
                            items.join(", ")
                        ));
                    }
                    Fields::Named(fields) => {
                        let ctor = gen_named_constructor(&path, fields, "m");
                        data_arms.push_str(&format!(
                            "{vn:?} => {{\n\
                             let m = inner.as_map().ok_or_else(|| ::serde::Error::new(\"expected map for {path}\"))?;\n\
                             Ok({ctor})\n}}\n"
                        ));
                    }
                }
            }
            format!(
                "match v {{\n\
                 ::serde::Value::Str(s) => match s.as_str() {{\n{unit_arms}\
                 _ => Err(::serde::Error::new(\"unknown variant for {name}\")),\n}},\n\
                 ::serde::Value::Map(entries) if entries.len() == 1 => {{\n\
                 let (tag, inner) = &entries[0];\n\
                 let _ = inner;\n\
                 match tag.as_str() {{\n{data_arms}\
                 _ => Err(::serde::Error::new(\"unknown variant for {name}\")),\n}}\n}},\n\
                 _ => Err(::serde::Error::new(\"expected variant encoding for {name}\")),\n}}"
            )
        }
    };
    format!(
        "#[automatically_derived]\nimpl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> Result<Self, ::serde::Error> {{\n{body}\n}}\n}}\n"
    )
}

fn derive(input: TokenStream, ser: bool) -> TokenStream {
    match Parser::new(input).parse_item() {
        Ok((name, shape)) => {
            let code = if ser {
                gen_serialize(&name, &shape)
            } else {
                gen_deserialize(&name, &shape)
            };
            match code.parse() {
                Ok(ts) => ts,
                Err(e) => compile_error(&format!("generated code failed to parse: {e}")),
            }
        }
        Err(msg) => compile_error(&msg),
    }
}

/// Derives the shim `serde::Serialize`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    derive(input, true)
}

/// Derives the shim `serde::Deserialize`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    derive(input, false)
}
