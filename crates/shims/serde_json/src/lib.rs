//! Offline stand-in for `serde_json`: renders the shim `serde::Value`
//! tree to JSON text and parses it back. Supports exactly the JSON
//! subset the shim serializer emits (which is standard JSON, so
//! hand-written fixtures parse too).

use serde::{Deserialize, Serialize, Value};
use std::fmt;

/// JSON error with a byte offset for parse failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    msg: String,
    offset: Option<usize>,
}

impl Error {
    fn parse(offset: usize, msg: impl Into<String>) -> Self {
        Error {
            msg: msg.into(),
            offset: Some(offset),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(o) => write!(f, "json error at byte {o}: {}", self.msg),
            None => write!(f, "json error: {}", self.msg),
        }
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error {
            msg: e.to_string(),
            offset: None,
        }
    }
}

/// Serializes a value to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&value.to_value(), &mut out)?;
    Ok(out)
}

/// Parses JSON text into any shim-`Deserialize` type.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let mut p = JsonParser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::parse(p.pos, "trailing characters"));
    }
    Ok(T::from_value(&v)?)
}

fn write_value(v: &Value, out: &mut String) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(i) => out.push_str(&i.to_string()),
        Value::UInt(u) => out.push_str(&u.to_string()),
        Value::Float(f) => {
            if !f.is_finite() {
                return Err(Error {
                    msg: "cannot serialize non-finite float".into(),
                    offset: None,
                });
            }
            // `{}` prints the shortest round-trippable form.
            out.push_str(&f.to_string());
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out)?;
            }
            out.push(']');
        }
        Value::Map(entries) => {
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(k, out);
                out.push(':');
                write_value(val, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct JsonParser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl JsonParser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::parse(self.pos, format!("expected `{}`", b as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            _ => Err(Error::parse(self.pos, "expected a JSON value")),
        }
    }

    fn literal(&mut self, text: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(text.as_bytes()) {
            self.pos += text.len();
            Ok(v)
        } else {
            Err(Error::parse(self.pos, format!("expected `{text}`")))
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::parse(self.pos, "expected `,` or `]`")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::parse(self.pos, "expected `,` or `}`")),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::parse(self.pos, "unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| Error::parse(self.pos, "truncated \\u escape"))?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error::parse(self.pos, "bad \\u escape"))?,
                                16,
                            )
                            .map_err(|_| Error::parse(self.pos, "bad \\u escape"))?;
                            // Surrogate pairs are not emitted by the shim
                            // writer; decode BMP scalars only.
                            let c = char::from_u32(code)
                                .ok_or_else(|| Error::parse(self.pos, "bad \\u scalar"))?;
                            out.push(c);
                            self.pos += 4;
                        }
                        _ => return Err(Error::parse(self.pos, "bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| Error::parse(self.pos, "invalid UTF-8"))?;
                    let c = rest.chars().next().expect("non-empty checked above");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::parse(start, "invalid number"))?;
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::parse(start, "invalid float"))
        } else if let Ok(i) = text.parse::<i64>() {
            Ok(Value::Int(i))
        } else if let Ok(u) = text.parse::<u64>() {
            Ok(Value::UInt(u))
        } else {
            // Integer-looking but beyond u64 (e.g. Rust's Display of
            // 1e300, which never uses scientific notation): degrade to
            // float rather than reject.
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::parse(start, "invalid integer"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&42i64).unwrap(), "42");
        assert_eq!(from_str::<i64>("42").unwrap(), 42);
        assert_eq!(from_str::<f64>("2.5").unwrap(), 2.5);
        assert!(from_str::<bool>(" true ").unwrap());
        let s: String = from_str("\"a\\nb\\u0041\"").unwrap();
        assert_eq!(s, "a\nbA");
    }

    #[test]
    fn nested_round_trips() {
        let v: Vec<(u32, Option<u32>)> = vec![(1, Some(2)), (3, None)];
        let text = to_string(&v).unwrap();
        assert_eq!(text, "[[1,2],[3,null]]");
        let back: Vec<(u32, Option<u32>)> = from_str(&text).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn float_precision_round_trips() {
        for f in [0.1f64, 1.0 / 3.0, 1e300, -2.5e-10] {
            let text = to_string(&f).unwrap();
            let back: f64 = from_str(&text).unwrap();
            assert_eq!(back, f, "{text}");
        }
    }

    #[test]
    fn errors_on_garbage() {
        assert!(from_str::<i64>("4x").is_err());
        assert!(from_str::<Vec<i64>>("[1,").is_err());
        assert!(from_str::<String>("\"open").is_err());
    }
}
