//! Offline stand-in for `criterion`: the group/`BenchmarkId`/`iter` API
//! the workspace's benches use, backed by a plain wall-clock measurement
//! loop that prints one `group/id: mean ± spread` line per benchmark.
//! Statistical machinery (outlier analysis, HTML reports) is out of
//! scope — the `run-experiments` binary is the workspace's reporting
//! path; these benches exist for quick relative comparisons.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifier `function/parameter` for one benchmark case.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` id, as in criterion.
    pub fn new(function_name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{function_name}/{parameter}"),
        }
    }

    /// Id from a bare parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_owned() }
    }
}

impl From<String> for BenchmarkId {
    fn from(id: String) -> Self {
        BenchmarkId { id }
    }
}

/// Runs closures and records timings.
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
}

impl Bencher {
    /// Measures `f`, repeating it `sample_size` times (after one
    /// warm-up call).
    pub fn iter<R>(&mut self, mut f: impl FnMut() -> R) {
        std::hint::black_box(f()); // warm-up
        for _ in 0..self.target_samples {
            let t0 = Instant::now();
            std::hint::black_box(f());
            self.samples.push(t0.elapsed());
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    fn run<F: FnMut(&mut Bencher)>(&mut self, id: String, mut f: F) {
        let mut b = Bencher {
            samples: Vec::new(),
            target_samples: self.sample_size,
        };
        f(&mut b);
        report(&self.name, &id, &b.samples);
        self.criterion.ran += 1;
    }

    /// Benchmarks `f` with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.id.clone(), |b| f(b, input));
        self
    }

    /// Benchmarks a plain closure.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        self.run(id.id.clone(), |b| f(b));
        self
    }

    /// Ends the group (printing is per-benchmark; nothing buffered).
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    ran: usize,
}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== bench group: {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_size: 10,
        }
    }

    /// Benchmarks a plain closure outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            samples: Vec::new(),
            target_samples: 10,
        };
        f(&mut b);
        report("bench", &id.id, &b.samples);
        self.ran += 1;
        self
    }
}

fn report(group: &str, id: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{group}/{id}: no samples");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().expect("non-empty");
    let max = samples.iter().max().expect("non-empty");
    println!(
        "{group}/{id}: mean {} (min {}, max {}, n={})",
        fmt_duration(mean),
        fmt_duration(*min),
        fmt_duration(*max),
        samples.len()
    );
}

fn fmt_duration(d: Duration) -> String {
    let us = d.as_secs_f64() * 1e6;
    if us < 1_000.0 {
        format!("{us:.1} µs")
    } else if us < 1_000_000.0 {
        format!("{:.2} ms", us / 1_000.0)
    } else {
        format!("{:.2} s", us / 1_000_000.0)
    }
}

/// Reproduces `criterion_group!`: defines a function running each bench.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Reproduces `criterion_main!`: defines `main` running the groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // Cargo passes `--bench` (and possibly filters) to bench
            // binaries; this shim runs everything regardless.
            $( $group(); )+
        }
    };
}

/// Re-export matching criterion's `black_box`.
pub use std::hint::black_box;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(3);
        let mut calls = 0;
        group.bench_with_input(BenchmarkId::new("f", 1), &(), |b, _| b.iter(|| calls += 1));
        group.finish();
        assert_eq!(calls, 4, "warm-up + 3 samples");
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).id, "f/32");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }
}
