//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace's property tests use: the
//! [`Strategy`] trait with `prop_map` / `prop_flat_map`, range and tuple
//! strategies, [`collection::vec`], [`sample::subsequence`], the
//! [`proptest!`] macro with `#![proptest_config(...)]`, and the
//! `prop_assert*` macros. Unlike real proptest there is **no input
//! shrinking** — a failing case panics with the sampled inputs' debug
//! representation via the ordinary assert message, and cases are drawn
//! from a fixed deterministic seed sequence so failures reproduce.

use rand::rngs::StdRng;
use std::ops::{Range, RangeInclusive};

pub use rand::SeedableRng;

/// The RNG handed to strategies.
pub type TestRng = StdRng;

/// Run configuration (subset of proptest's).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A recipe for generating random values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { base: self, f }
    }

    /// Generates a value, then samples from the strategy `f` builds
    /// from it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { base: self, f }
    }
}

/// Always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, U, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.base.sample(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;

    fn sample(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.base.sample(rng)).sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rand::Rng::gen_range(rng, self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A: 0)
    (A: 0, B: 1)
    (A: 0, B: 1, C: 2)
    (A: 0, B: 1, C: 2, D: 3)
    (A: 0, B: 1, C: 2, D: 3, E: 4)
}

/// Size specifications accepted by collection strategies.
#[derive(Clone, Debug)]
pub struct SizeRange {
    lo: usize,
    hi: usize, // inclusive
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { lo: n, hi: n }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            lo: r.start,
            hi: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            lo: *r.start(),
            hi: *r.end(),
        }
    }
}

/// Collection strategies.
pub mod collection {
    use super::*;

    /// `Vec` of values from `element`, with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Builds a [`VecStrategy`].
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rand::Rng::gen_range(rng, self.size.lo..=self.size.hi);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Sampling strategies.
pub mod sample {
    use super::*;

    /// Order-preserving random subsequence of `values` with a size drawn
    /// from `size`.
    pub struct Subsequence<T: Clone> {
        values: Vec<T>,
        size: SizeRange,
    }

    /// Builds a [`Subsequence`] strategy.
    pub fn subsequence<T: Clone>(values: Vec<T>, size: impl Into<SizeRange>) -> Subsequence<T> {
        let size = size.into();
        assert!(
            size.hi <= values.len(),
            "subsequence size {} exceeds {} candidates",
            size.hi,
            values.len()
        );
        Subsequence { values, size }
    }

    impl<T: Clone> Strategy for Subsequence<T> {
        type Value = Vec<T>;

        fn sample(&self, rng: &mut TestRng) -> Vec<T> {
            let k = rand::Rng::gen_range(rng, self.size.lo..=self.size.hi);
            // Floyd's algorithm for k distinct indices, then sort to
            // preserve the source order.
            let n = self.values.len();
            let mut picked: Vec<usize> = Vec::with_capacity(k);
            for j in n - k..n {
                let t = rand::Rng::gen_range(rng, 0..=j);
                if picked.contains(&t) {
                    picked.push(j);
                } else {
                    picked.push(t);
                }
            }
            picked.sort_unstable();
            picked.into_iter().map(|i| self.values[i].clone()).collect()
        }
    }
}

/// Asserts within a property (proptest-compatible spelling).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Asserts equality within a property (proptest-compatible spelling).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Asserts inequality within a property (proptest-compatible spelling).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Defines property tests: each `fn name(arg in strategy, ...)` becomes
/// a `#[test]` running `cases` deterministic random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            for case in 0..cfg.cases as u64 {
                // Deterministic per-case seed: failures reproduce on
                // re-run; the case index surfaces in panic payloads.
                let mut __rng = <$crate::TestRng as $crate::SeedableRng>::seed_from_u64(
                    0x5eed_0000_0000_0000u64 ^ case,
                );
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                // Real proptest bodies may `return Ok(())` early, so the
                // body runs in a Result-returning closure.
                let run = || -> ::std::result::Result<(), ::std::string::String> {
                    $body
                    ::std::result::Result::Ok(())
                };
                if let ::std::result::Result::Err(e) = run() {
                    panic!("property {} failed on case {}: {}", stringify!($name), case, e);
                }
            }
        }
    )*};
}

/// One-stop import, as in `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };

    /// The `prop` shorthand module (`prop::collection`, `prop::sample`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::sample;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn ranges_and_tuples_sample_in_bounds() {
        let mut rng = <TestRng as SeedableRng>::seed_from_u64(1);
        let s = (0..5u32, 1..=3usize);
        for _ in 0..100 {
            let (a, b) = s.sample(&mut rng);
            assert!(a < 5 && (1..=3).contains(&b));
        }
    }

    #[test]
    fn map_and_flat_map_compose() {
        let mut rng = <TestRng as SeedableRng>::seed_from_u64(2);
        let s = (1..4usize)
            .prop_flat_map(|n| collection::vec(0..n as u32, n).prop_map(move |v| (n, v)));
        for _ in 0..50 {
            let (n, v) = s.sample(&mut rng);
            assert_eq!(v.len(), n);
            assert!(v.iter().all(|&x| (x as usize) < n));
        }
    }

    #[test]
    fn subsequence_preserves_order_and_distinctness() {
        let mut rng = <TestRng as SeedableRng>::seed_from_u64(3);
        let s = sample::subsequence(vec![1, 2, 3, 4, 5], 1..5);
        for _ in 0..100 {
            let v = s.sample(&mut rng);
            assert!(!v.is_empty() && v.len() <= 4);
            assert!(v.windows(2).all(|w| w[0] < w[1]), "{v:?}");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn the_macro_runs_and_binds(x in 0..10u32, v in prop::collection::vec(0..3u8, 0..4)) {
            prop_assert!(x < 10);
            prop_assert!(v.len() < 4);
        }
    }
}
