//! Offline stand-in for the `rand` crate (0.8-era API subset).
//!
//! Provides a deterministic [`rngs::StdRng`] (xoshiro256++ seeded via
//! SplitMix64), [`SeedableRng::seed_from_u64`], and the [`Rng`] helpers
//! the workspace's workload generators use: `gen_range` over half-open
//! and inclusive integer/float ranges, and `gen_bool`. Streams are
//! deterministic per seed but are NOT bit-compatible with the real
//! `rand` crate — nothing in this workspace depends on specific draws.

use std::ops::{Range, RangeInclusive};

/// Low-level source of random 64-bit words.
pub trait RngCore {
    /// Next raw word.
    fn next_u64(&mut self) -> u64;

    /// Next raw 32-bit word.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable construction (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, deterministically.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard PRNG: xoshiro256++.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as the xoshiro authors recommend.
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// A range a value can be uniformly sampled from (subset of
/// `rand::distributions::uniform::SampleRange`).
pub trait SampleRange<T> {
    /// Draws a uniform sample. Panics on an empty range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draws a uniform integer below `bound` without modulo bias
/// (Lemire-style widening multiply with rejection).
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, bound: u64) -> u64 {
    debug_assert!(bound > 0);
    let zone = bound.wrapping_neg() % bound; // # of biased low values
    loop {
        let x = rng.next_u64();
        let m = (x as u128) * (bound as u128);
        if (m as u64) >= zone {
            return (m >> 64) as u64;
        }
    }
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / ((1u64 << 53) - 1) as f64);
        lo + unit * (hi - lo)
    }
}

/// High-level sampling helpers (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p` (clamped to [0, 1]).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!(
            (0.0..=1.0).contains(&p),
            "gen_bool probability {p} not in [0,1]"
        );
        if p >= 1.0 {
            return true;
        }
        ((self.next_u64() >> 11) as f64) < p * (1u64 << 53) as f64
    }
}

impl<R: RngCore> Rng for R {}

/// Sequence helpers (subset of `rand::seq`).
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice extension trait: random element choice.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(
            (0..4).map(|_| a.next_u64()).collect::<Vec<_>>(),
            (0..4).map(|_| b.next_u64()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(5..10usize);
            assert!((5..10).contains(&v));
            let w = rng.gen_range(-3..=3i64);
            assert!((-3..=3).contains(&w));
            let f = rng.gen_range(0.0..2.0);
            assert!((0.0..2.0).contains(&f));
        }
    }

    #[test]
    fn all_range_values_reachable() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut seen = [false; 5];
        for _ in 0..500 {
            seen[rng.gen_range(0..5usize)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn gen_bool_extremes_and_middle() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_500..5_500).contains(&heads), "{heads}");
    }

    #[test]
    fn slice_choose_covers_elements() {
        use super::seq::SliceRandom;
        let mut rng = StdRng::seed_from_u64(6);
        let items = [1, 2, 3];
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[*items.choose(&mut rng).unwrap() as usize - 1] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
