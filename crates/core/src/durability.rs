//! Durability: write-ahead logging, checksummed snapshots and crash
//! recovery for any serving deployment.
//!
//! An access-control system must **fail closed across restarts**: a
//! crash that silently loses rules or relationships re-opens every
//! decision those facts gated. This module makes the serving state
//! durable without touching either backend:
//!
//! * **Write-ahead log** — [`DurableService`] wraps a
//!   [`ServiceInstance`] and records every [`MutateService`] operation
//!   as a [`WalRecord`] in an append-only log (`wal.log`) of
//!   length-prefixed, CRC-32-checksummed frames *before* applying it.
//!   Replaying the log through the same `MutateService` trait rebuilds
//!   the exact state — member and resource ids are assigned
//!   sequentially by every backend, so replay is deterministic.
//! * **Snapshots** — [`DurableService::snapshot`] serializes the
//!   canonical state (graph via the binary codec in
//!   `socialreach_graph::persist`, policy store as JSON) into a
//!   versioned, per-section-checksummed file stamped with the WAL
//!   position it covers. Snapshots are written to a temp file and
//!   atomically renamed; older snapshots are kept as a fallback chain.
//! * **Recovery** — [`Deployment::durable`] reopens a data directory:
//!   newest valid snapshot + WAL suffix replay. A torn or truncated
//!   WAL tail (the expected shape of a crash mid-append) is discarded
//!   and reported; everything else — a bit-flipped record in the body
//!   of the log, a corrupt or version-incompatible snapshot, a
//!   snapshot ahead of the log — is either detected loudly as a typed
//!   [`DurabilityError`] or skipped onto an older snapshot with a
//!   longer replay, per the [`RecoveryReport`]. Recovery never panics
//!   and never silently grants: the recovered state always equals the
//!   state after some prefix of the logged operations.
//!
//! The WAL currently retains the full mutation history (snapshots
//! never truncate it), so the fallback chain always terminates at
//! "empty state + full replay" and a future point-in-time audit read
//! can replay to any historical position. Appends are buffered by the
//! OS (no per-record fsync): a process crash loses nothing, a host
//! crash may lose a suffix of appends — exactly the shape torn-tail
//! recovery handles.
//!
//! ```
//! use socialreach_core::{AccessService, Deployment, Decision, MutateService};
//!
//! let dir = std::env::temp_dir().join(format!("srdur-doc-{}", std::process::id()));
//! let mut svc = Deployment::online().durable(&dir).unwrap();
//! let alice = svc.add_user("Alice");
//! let bob = svc.add_user("Bob");
//! svc.add_relationship(alice, "friend", bob);
//! let album = svc.add_resource(alice);
//! svc.add_rule(album, "friend+[1]").unwrap();
//! svc.snapshot().unwrap();
//! drop(svc); // "crash"
//!
//! let recovered = Deployment::online().durable(&dir).unwrap();
//! assert_eq!(recovered.reads().check(album, bob).unwrap(), Decision::Grant);
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```

use crate::error::EvalError;
use crate::policy::{Decision, PolicyStore, ResourceId};
use crate::service::{
    AccessResponse, AccessService, BundleStrategy, CheckPlan, Deployment, Explanation,
    MutateService, ReadBatch, ReadStats, ServiceInstance,
};
use serde::{Deserialize, Serialize};
use socialreach_graph::wire::crc32;
use socialreach_graph::{persist, AttrValue, LabelId, NodeId, SocialGraph};
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// On-disk format version of snapshot files.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Magic bytes opening every snapshot file.
const SNAPSHOT_MAGIC: &[u8; 8] = b"SRSNAP\r\n";

/// Name of the write-ahead log inside a data directory.
const WAL_FILE: &str = "wal.log";

/// Upper bound on a single WAL frame's payload — far above any real
/// record; a length field claiming more is treated as damage.
const MAX_FRAME: u32 = 1 << 24;

// ---------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------

/// Typed durability failure: every corruption mode recovery can meet
/// has a loud, named shape (the module never panics on bad bytes and
/// never silently degrades a decision).
#[derive(Debug)]
pub enum DurabilityError {
    /// An OS-level I/O failure (open, read, write, rename, …).
    Io {
        /// The file or directory involved.
        path: PathBuf,
        /// The operation that failed.
        op: &'static str,
        /// The OS error text.
        message: String,
    },
    /// The WAL body is damaged: a checksum mismatch or undecodable
    /// record *before* the final frame — truncation cannot explain it,
    /// so recovery refuses to guess.
    CorruptWal {
        /// The log file.
        path: PathBuf,
        /// Byte offset of the damaged frame.
        offset: u64,
        /// What was wrong.
        detail: String,
    },
    /// A snapshot file is damaged (bad magic, bad section checksum,
    /// undecodable section, trailing bytes). Recovery skips it and
    /// falls back to an older snapshot with a longer replay.
    CorruptSnapshot {
        /// The snapshot file.
        path: PathBuf,
        /// What was wrong.
        detail: String,
    },
    /// A snapshot was written by an unknown format version.
    UnsupportedVersion {
        /// The snapshot file.
        path: PathBuf,
        /// The version the file claims.
        found: u32,
        /// The newest version this build reads.
        supported: u32,
    },
    /// A snapshot claims to cover more WAL records than the log holds
    /// — the log was truncated or swapped under the snapshot. The
    /// snapshot is unusable (replaying from its position would skip
    /// operations); recovery falls back.
    SnapshotAheadOfWal {
        /// The snapshot file.
        path: PathBuf,
        /// WAL records the snapshot claims to cover.
        snapshot_records: u64,
        /// WAL records actually on disk.
        wal_records: u64,
    },
    /// A structurally valid WAL record failed to re-apply — the log
    /// and the recorded history have diverged (records are only
    /// appended after the operation validated).
    Replay {
        /// Zero-based index of the failing record.
        record: u64,
        /// Why it failed.
        detail: String,
    },
}

impl fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurabilityError::Io { path, op, message } => {
                write!(f, "{op} {}: {message}", path.display())
            }
            DurabilityError::CorruptWal {
                path,
                offset,
                detail,
            } => write!(
                f,
                "corrupt write-ahead log {} at byte {offset}: {detail}",
                path.display()
            ),
            DurabilityError::CorruptSnapshot { path, detail } => {
                write!(f, "corrupt snapshot {}: {detail}", path.display())
            }
            DurabilityError::UnsupportedVersion {
                path,
                found,
                supported,
            } => write!(
                f,
                "snapshot {} has format version {found}; this build reads up to {supported}",
                path.display()
            ),
            DurabilityError::SnapshotAheadOfWal {
                path,
                snapshot_records,
                wal_records,
            } => write!(
                f,
                "snapshot {} covers {snapshot_records} WAL records but the log holds {wal_records}",
                path.display()
            ),
            DurabilityError::Replay { record, detail } => {
                write!(f, "WAL record {record} failed to re-apply: {detail}")
            }
        }
    }
}

impl std::error::Error for DurabilityError {}

fn io_err(path: &Path, op: &'static str, e: std::io::Error) -> DurabilityError {
    DurabilityError::Io {
        path: path.to_path_buf(),
        op,
        message: e.to_string(),
    }
}

// ---------------------------------------------------------------------
// WAL records and framing
// ---------------------------------------------------------------------

/// One logged [`MutateService`] operation, in wire form. Ids are
/// recorded (not re-derived) so replay can cross-check the backend's
/// sequential assignment.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum WalRecord {
    /// [`MutateService::add_user`].
    AddUser {
        /// Display name.
        name: String,
    },
    /// [`MutateService::set_user_attr`].
    SetUserAttr {
        /// The member.
        user: NodeId,
        /// Attribute key.
        key: String,
        /// Attribute value.
        value: AttrValue,
    },
    /// [`MutateService::add_relationship`].
    AddRelationship {
        /// Source member.
        src: NodeId,
        /// Relationship type name.
        label: String,
        /// Target member.
        dst: NodeId,
    },
    /// [`MutateService::add_resource`].
    AddResource {
        /// The owner.
        owner: NodeId,
    },
    /// [`MutateService::add_rule`] (the rule re-parses on replay).
    AddRule {
        /// The resource.
        resource: ResourceId,
        /// The path-expression text.
        path: String,
    },
}

/// Encodes one record as a WAL frame:
/// `[u32 LE payload len][u32 LE CRC-32][payload]`, where the checksum
/// covers the length bytes *and* the payload, so a damaged length
/// field cannot masquerade as a valid frame.
fn encode_frame(record: &WalRecord) -> Vec<u8> {
    let payload = serde_json::to_string(record)
        .expect("WAL records serialize (no non-finite floats)")
        .into_bytes();
    let len = payload.len() as u32;
    let mut checked = Vec::with_capacity(4 + payload.len());
    checked.extend_from_slice(&len.to_le_bytes());
    checked.extend_from_slice(&payload);
    let crc = crc32(&checked);
    let mut frame = Vec::with_capacity(8 + payload.len());
    frame.extend_from_slice(&len.to_le_bytes());
    frame.extend_from_slice(&crc.to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

/// A discarded torn tail: the expected damage shape of a crash during
/// an append (partial frame at end-of-log).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TornTail {
    /// Byte offset the valid prefix ends at (the log was truncated
    /// back to this length).
    pub offset: u64,
    /// What the discarded bytes looked like.
    pub detail: String,
}

/// Result of scanning a WAL file.
struct WalScan {
    records: Vec<WalRecord>,
    /// Length of the valid prefix in bytes.
    valid_len: u64,
    torn: Option<TornTail>,
}

/// Scans a WAL file front to back. A partial frame at end-of-log is a
/// torn tail (reported, prefix kept); damage *before* the final frame
/// is a typed [`DurabilityError::CorruptWal`].
fn read_wal(path: &Path) -> Result<WalScan, DurabilityError> {
    let bytes = match fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(WalScan {
                records: Vec::new(),
                valid_len: 0,
                torn: None,
            })
        }
        Err(e) => return Err(io_err(path, "read", e)),
    };
    let mut records = Vec::new();
    let mut pos = 0usize;
    loop {
        let remaining = bytes.len() - pos;
        if remaining == 0 {
            return Ok(WalScan {
                records,
                valid_len: pos as u64,
                torn: None,
            });
        }
        let torn = |records: Vec<WalRecord>, detail: String| {
            Ok(WalScan {
                records,
                valid_len: pos as u64,
                torn: Some(TornTail {
                    offset: pos as u64,
                    detail,
                }),
            })
        };
        if remaining < 8 {
            return torn(records, format!("{remaining}-byte partial frame header"));
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("len 4"));
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("len 4"));
        if len > MAX_FRAME || (len as usize) > remaining - 8 {
            // The claimed payload extends past end-of-log: a frame cut
            // short by a crash (or a damaged final length field —
            // indistinguishable, and equally safe to discard).
            return torn(
                records,
                format!(
                    "frame claims {len}-byte payload, {} bytes remain",
                    remaining - 8
                ),
            );
        }
        let payload = &bytes[pos + 8..pos + 8 + len as usize];
        let mut checked = Vec::with_capacity(4 + payload.len());
        checked.extend_from_slice(&len.to_le_bytes());
        checked.extend_from_slice(payload);
        let frame_end = pos + 8 + len as usize;
        if crc32(&checked) != crc {
            if frame_end == bytes.len() {
                // Checksum mismatch on the *final* frame: a torn write
                // (header landed, payload didn't finish).
                return torn(records, "checksum mismatch on final frame".to_owned());
            }
            return Err(DurabilityError::CorruptWal {
                path: path.to_path_buf(),
                offset: pos as u64,
                detail: format!(
                    "checksum mismatch (stored {crc:#010x}, computed {:#010x}) before end of log",
                    crc32(&checked)
                ),
            });
        }
        let text = std::str::from_utf8(payload).map_err(|_| DurabilityError::CorruptWal {
            path: path.to_path_buf(),
            offset: pos as u64,
            detail: "checksummed payload is not UTF-8".to_owned(),
        })?;
        let record: WalRecord =
            serde_json::from_str(text).map_err(|e| DurabilityError::CorruptWal {
                path: path.to_path_buf(),
                offset: pos as u64,
                detail: format!("undecodable record: {e}"),
            })?;
        records.push(record);
        pos = frame_end;
    }
}

// ---------------------------------------------------------------------
// Snapshot files
// ---------------------------------------------------------------------

fn snapshot_file_name(wal_records: u64) -> String {
    // Zero-padded so lexicographic order is numeric order.
    format!("snap-{wal_records:020}.snap")
}

fn encode_snapshot(g: &SocialGraph, store: &PolicyStore, wal_records: u64) -> Vec<u8> {
    let graph_bytes = persist::encode_graph(g);
    let store_bytes = serde_json::to_string(store)
        .expect("policy store serializes")
        .into_bytes();
    let mut out = Vec::with_capacity(28 + graph_bytes.len() + store_bytes.len() + 16);
    out.extend_from_slice(SNAPSHOT_MAGIC);
    out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    out.extend_from_slice(&wal_records.to_le_bytes());
    let header_crc = crc32(&out);
    out.extend_from_slice(&header_crc.to_le_bytes());
    for section in [&graph_bytes, &store_bytes] {
        out.extend_from_slice(&(section.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(section).to_le_bytes());
        out.extend_from_slice(section);
    }
    out
}

fn decode_snapshot(
    path: &Path,
    bytes: &[u8],
) -> Result<(SocialGraph, PolicyStore, u64), DurabilityError> {
    let corrupt = |detail: String| DurabilityError::CorruptSnapshot {
        path: path.to_path_buf(),
        detail,
    };
    if bytes.len() < 24 {
        return Err(corrupt(format!("{}-byte file is too short", bytes.len())));
    }
    if &bytes[..8] != SNAPSHOT_MAGIC {
        return Err(corrupt("bad magic".to_owned()));
    }
    // Version is read before any checksum so a future-format file is
    // reported as such (its layout past the version field is unknown).
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("len 4"));
    if version != SNAPSHOT_VERSION {
        return Err(DurabilityError::UnsupportedVersion {
            path: path.to_path_buf(),
            found: version,
            supported: SNAPSHOT_VERSION,
        });
    }
    let header_crc = u32::from_le_bytes(bytes[20..24].try_into().expect("len 4"));
    if crc32(&bytes[..20]) != header_crc {
        return Err(corrupt("header checksum mismatch".to_owned()));
    }
    let wal_records = u64::from_le_bytes(bytes[12..20].try_into().expect("len 8"));
    let mut pos = 24usize;
    let mut sections: Vec<&[u8]> = Vec::with_capacity(2);
    for name in ["graph", "policy"] {
        if bytes.len() - pos < 8 {
            return Err(corrupt(format!("truncated before {name} section header")));
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("len 4")) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("len 4"));
        pos += 8;
        if bytes.len() - pos < len {
            return Err(corrupt(format!(
                "{name} section claims {len} bytes, {} remain",
                bytes.len() - pos
            )));
        }
        let section = &bytes[pos..pos + len];
        if crc32(section) != crc {
            return Err(corrupt(format!("{name} section checksum mismatch")));
        }
        sections.push(section);
        pos += len;
    }
    if pos != bytes.len() {
        return Err(corrupt(format!("{} trailing bytes", bytes.len() - pos)));
    }
    let g = persist::decode_graph(sections[0]).map_err(|e| corrupt(format!("graph: {e}")))?;
    let store_text =
        std::str::from_utf8(sections[1]).map_err(|_| corrupt("policy: not UTF-8".to_owned()))?;
    let store: PolicyStore =
        serde_json::from_str(store_text).map_err(|e| corrupt(format!("policy: {e}")))?;
    Ok((g, store, wal_records))
}

// ---------------------------------------------------------------------
// Recovery report
// ---------------------------------------------------------------------

/// What [`Deployment::durable`] found and did while reopening a data
/// directory. Every skipped artifact carries its typed error —
/// corruption is always loud, even when recovery routed around it.
#[derive(Debug, Default)]
pub struct RecoveryReport {
    /// The snapshot recovery started from (file name, WAL position),
    /// or `None` when it replayed the full log from empty state.
    pub snapshot_loaded: Option<(String, u64)>,
    /// Snapshots that were newer but unusable, newest first, each with
    /// the typed error that disqualified it.
    pub snapshots_skipped: Vec<(String, DurabilityError)>,
    /// Total intact records in the log.
    pub wal_records: u64,
    /// Records replayed on top of the loaded snapshot.
    pub records_replayed: u64,
    /// The discarded torn tail, if the log ended mid-append.
    pub torn_tail: Option<TornTail>,
}

// ---------------------------------------------------------------------
// The durable decorator
// ---------------------------------------------------------------------

/// A [`ServiceInstance`] with durability: every write is appended to
/// the write-ahead log, a canonical mirror of the state (graph +
/// policy store) is kept for snapshotting, and reads forward to the
/// wrapped backend untouched. Construct with [`Deployment::durable`].
///
/// The mirror exists because the sharded backend has no global graph
/// to export; it is authoritative for snapshots and doubles as the
/// ground-truth source recovery audits replay against. Backends assign
/// member and resource ids sequentially, so the mirror, the backend
/// and any replayed copy agree on every id — divergence is checked on
/// every write and surfaces as a loud error, never a wrong answer.
pub struct DurableService {
    inner: ServiceInstance,
    mirror: SocialGraph,
    store: PolicyStore,
    dir: PathBuf,
    wal_path: PathBuf,
    wal: File,
    wal_records: u64,
    report: RecoveryReport,
}

impl Deployment {
    /// Opens (or initializes) a durable deployment in `dir`: recovery
    /// is newest-valid-snapshot + WAL-suffix replay, after which every
    /// mutation through the returned service is write-ahead logged.
    /// See [`DurableService`] and the module docs for the corruption
    /// semantics.
    pub fn durable(&self, dir: impl AsRef<Path>) -> Result<DurableService, DurabilityError> {
        DurableService::open(self.clone(), dir.as_ref())
    }
}

impl DurableService {
    fn open(deployment: Deployment, dir: &Path) -> Result<Self, DurabilityError> {
        fs::create_dir_all(dir).map_err(|e| io_err(dir, "create", e))?;
        let wal_path = dir.join(WAL_FILE);
        let scan = read_wal(&wal_path)?;
        let wal_records = scan.records.len() as u64;

        // Newest-first snapshot chain.
        let mut snapshot_names: Vec<String> = fs::read_dir(dir)
            .map_err(|e| io_err(dir, "read dir", e))?
            .filter_map(|entry| entry.ok())
            .filter_map(|entry| entry.file_name().into_string().ok())
            .filter(|name| name.starts_with("snap-") && name.ends_with(".snap"))
            .collect();
        snapshot_names.sort_unstable_by(|a, b| b.cmp(a));

        let mut report = RecoveryReport {
            wal_records,
            torn_tail: scan.torn.clone(),
            ..RecoveryReport::default()
        };
        let mut base: Option<(SocialGraph, PolicyStore, u64)> = None;
        for name in snapshot_names {
            let path = dir.join(&name);
            let loaded = fs::read(&path)
                .map_err(|e| io_err(&path, "read", e))
                .and_then(|bytes| decode_snapshot(&path, &bytes))
                .and_then(|(g, store, covered)| {
                    if covered > wal_records {
                        Err(DurabilityError::SnapshotAheadOfWal {
                            path: path.clone(),
                            snapshot_records: covered,
                            wal_records,
                        })
                    } else {
                        Ok((g, store, covered))
                    }
                });
            match loaded {
                Ok(found) => {
                    report.snapshot_loaded = Some((name, found.2));
                    base = Some(found);
                    break;
                }
                Err(e) => report.snapshots_skipped.push((name, e)),
            }
        }

        let (mut mirror, mut store, replay_from) =
            base.unwrap_or_else(|| (SocialGraph::new(), PolicyStore::new(), 0));
        let mut inner = deployment.from_graph(&mirror, store.clone());
        {
            let writes = inner.writes();
            for (i, record) in scan.records.iter().enumerate().skip(replay_from as usize) {
                apply_record(record, writes, &mut mirror, &mut store).map_err(|detail| {
                    DurabilityError::Replay {
                        record: i as u64,
                        detail,
                    }
                })?;
                report.records_replayed += 1;
            }
        }

        // Truncate a torn tail so future appends start at the valid
        // prefix instead of extending garbage.
        if scan.torn.is_some() {
            let f = OpenOptions::new()
                .write(true)
                .open(&wal_path)
                .map_err(|e| io_err(&wal_path, "open", e))?;
            f.set_len(scan.valid_len)
                .map_err(|e| io_err(&wal_path, "truncate", e))?;
        }
        let wal = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&wal_path)
            .map_err(|e| io_err(&wal_path, "open", e))?;

        Ok(DurableService {
            inner,
            mirror,
            store,
            dir: dir.to_path_buf(),
            wal_path,
            wal,
            wal_records,
            report,
        })
    }

    /// What recovery found: the snapshot used, artifacts skipped (with
    /// their typed errors), records replayed, torn tail discarded.
    pub fn recovery_report(&self) -> &RecoveryReport {
        &self.report
    }

    /// Number of intact records in the write-ahead log.
    pub fn wal_records(&self) -> u64 {
        self.wal_records
    }

    /// The data directory this service persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The canonical mirror graph (authoritative for snapshots and for
    /// ground-truth audits of the wrapped backend).
    pub fn graph(&self) -> &SocialGraph {
        &self.mirror
    }

    /// The canonical policy store.
    pub fn store(&self) -> &PolicyStore {
        &self.store
    }

    /// This service as a deployment-agnostic read service.
    pub fn reads(&self) -> &dyn AccessService {
        self
    }

    /// This service as a deployment-agnostic write service.
    pub fn writes(&mut self) -> &mut dyn MutateService {
        self
    }

    /// Persists a snapshot of the current state, stamped with the WAL
    /// position it covers, and returns its path. Written to a temp
    /// file and atomically renamed; never overwrites a good snapshot
    /// with a partial one. Takes `&self`: concurrent readers (behind a
    /// shared lock) keep reading while the snapshot persists.
    pub fn snapshot(&self) -> Result<PathBuf, DurabilityError> {
        let bytes = encode_snapshot(&self.mirror, &self.store, self.wal_records);
        let final_path = self.dir.join(snapshot_file_name(self.wal_records));
        let tmp_path = self.dir.join(format!(
            "{}.tmp-{}",
            snapshot_file_name(self.wal_records),
            std::process::id()
        ));
        fs::write(&tmp_path, &bytes).map_err(|e| io_err(&tmp_path, "write", e))?;
        fs::rename(&tmp_path, &final_path).map_err(|e| io_err(&final_path, "rename", e))?;
        Ok(final_path)
    }

    /// Appends one frame to the log. WAL append failure is fail-stop:
    /// acknowledging a write the log did not capture would break the
    /// recovery contract.
    fn append(&mut self, record: &WalRecord) {
        let frame = encode_frame(record);
        self.wal
            .write_all(&frame)
            .unwrap_or_else(|e| panic!("WAL append to {} failed: {e}", self.wal_path.display()));
        self.wal_records += 1;
    }
}

/// Applies one record to a backend and the canonical mirror, checking
/// the two stay id-for-id identical. Invalid ids (possible only under
/// a log that disagrees with its own history) error — never panic.
fn apply_record(
    record: &WalRecord,
    inner: &mut dyn MutateService,
    mirror: &mut SocialGraph,
    store: &mut PolicyStore,
) -> Result<(), String> {
    let check_member = |user: NodeId, mirror: &SocialGraph| {
        if mirror.contains_node(user) {
            Ok(())
        } else {
            Err(format!(
                "member {user} out of range ({} members)",
                mirror.num_nodes()
            ))
        }
    };
    match record {
        WalRecord::AddUser { name } => {
            let got = inner.add_user(name);
            let expect = mirror.add_node(name);
            if got != expect {
                return Err(format!(
                    "backend assigned member id {got}, history says {expect}"
                ));
            }
        }
        WalRecord::SetUserAttr { user, key, value } => {
            check_member(*user, mirror)?;
            inner.set_user_attr(*user, key, value.clone());
            mirror.set_node_attr(*user, key, value.clone());
        }
        WalRecord::AddRelationship { src, label, dst } => {
            check_member(*src, mirror)?;
            check_member(*dst, mirror)?;
            inner.add_relationship(*src, label, *dst);
            mirror.connect(*src, label, *dst);
        }
        WalRecord::AddResource { owner } => {
            check_member(*owner, mirror)?;
            let got = inner.add_resource(*owner);
            let expect = store.register_resource(*owner);
            if got != expect {
                return Err(format!(
                    "backend assigned resource id {got:?}, history says {expect:?}"
                ));
            }
        }
        WalRecord::AddRule { resource, path } => {
            store
                .allow(*resource, path, mirror)
                .map_err(|e| format!("rule rejected: {e}"))?;
            inner
                .add_rule(*resource, path)
                .map_err(|e| format!("backend rejected a rule the history accepted: {e}"))?;
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Trait impls: reads forward, writes log
// ---------------------------------------------------------------------

impl AccessService for DurableService {
    fn describe(&self) -> String {
        format!("durable({})", self.inner.reads().describe())
    }

    fn num_members(&self) -> usize {
        self.inner.reads().num_members()
    }

    fn num_relationships(&self) -> usize {
        self.inner.reads().num_relationships()
    }

    fn resolve_user(&self, name: &str) -> Result<NodeId, EvalError> {
        self.inner.reads().resolve_user(name)
    }

    fn member_name(&self, member: NodeId) -> &str {
        self.inner.member_name(member)
    }

    fn label_name(&self, label: LabelId) -> &str {
        self.inner.label_name(label)
    }

    fn check(&self, resource: ResourceId, requester: NodeId) -> Result<Decision, EvalError> {
        self.inner.reads().check(resource, requester)
    }

    fn check_batch(
        &self,
        requests: &[(ResourceId, NodeId)],
        threads: usize,
    ) -> Result<Vec<Decision>, EvalError> {
        self.inner.reads().check_batch(requests, threads)
    }

    fn audience_batch_with_stats(
        &self,
        rids: &[ResourceId],
    ) -> Result<(Vec<Vec<NodeId>>, ReadStats), EvalError> {
        self.inner.reads().audience_batch_with_stats(rids)
    }

    fn explain(
        &self,
        resource: ResourceId,
        requester: NodeId,
    ) -> Result<Option<Explanation>, EvalError> {
        self.inner.reads().explain(resource, requester)
    }

    fn cache_stats(&self) -> (u64, u64) {
        self.inner.reads().cache_stats()
    }

    fn check_with_stats(
        &self,
        resource: ResourceId,
        requester: NodeId,
    ) -> Result<(Decision, ReadStats), EvalError> {
        self.inner.reads().check_with_stats(resource, requester)
    }

    fn check_batch_with_stats(
        &self,
        requests: &[(ResourceId, NodeId)],
        threads: usize,
    ) -> Result<(Vec<Decision>, ReadStats), EvalError> {
        self.inner.reads().check_batch_with_stats(requests, threads)
    }

    fn explain_with_stats(
        &self,
        resource: ResourceId,
        requester: NodeId,
    ) -> Result<(Option<Explanation>, ReadStats), EvalError> {
        self.inner.reads().explain_with_stats(resource, requester)
    }

    fn read_batch(&self, batch: &ReadBatch) -> Result<Vec<AccessResponse>, EvalError> {
        self.inner.reads().read_batch(batch)
    }

    fn stats_supported(&self) -> bool {
        self.inner.reads().stats_supported()
    }

    fn audience_batch_forced(
        &self,
        rids: &[ResourceId],
        strategy: BundleStrategy,
    ) -> Result<(Vec<Vec<NodeId>>, ReadStats), EvalError> {
        self.inner.reads().audience_batch_forced(rids, strategy)
    }

    fn check_batch_forced(
        &self,
        requests: &[(ResourceId, NodeId)],
        threads: usize,
        plan: CheckPlan,
    ) -> Result<(Vec<Decision>, ReadStats), EvalError> {
        self.inner
            .reads()
            .check_batch_forced(requests, threads, plan)
    }
}

impl MutateService for DurableService {
    fn add_user(&mut self, name: &str) -> NodeId {
        self.append(&WalRecord::AddUser {
            name: name.to_owned(),
        });
        let got = self.inner.writes().add_user(name);
        let expect = self.mirror.add_node(name);
        debug_assert_eq!(got, expect, "sequential id assignment diverged");
        got
    }

    fn set_user_attr(&mut self, user: NodeId, key: &str, value: AttrValue) {
        self.append(&WalRecord::SetUserAttr {
            user,
            key: key.to_owned(),
            value: value.clone(),
        });
        self.inner.writes().set_user_attr(user, key, value.clone());
        self.mirror.set_node_attr(user, key, value);
    }

    fn add_relationship(&mut self, src: NodeId, label: &str, dst: NodeId) {
        self.append(&WalRecord::AddRelationship {
            src,
            label: label.to_owned(),
            dst,
        });
        self.inner.writes().add_relationship(src, label, dst);
        self.mirror.connect(src, label, dst);
    }

    fn add_resource(&mut self, owner: NodeId) -> ResourceId {
        self.append(&WalRecord::AddResource { owner });
        let got = self.inner.writes().add_resource(owner);
        let expect = self.store.register_resource(owner);
        debug_assert_eq!(got, expect, "sequential id assignment diverged");
        got
    }

    /// Validate-then-log: the rule is parsed and applied to the
    /// canonical mirror first, so a rejected rule is never logged (a
    /// logged record must always re-apply on recovery).
    fn add_rule(&mut self, resource: ResourceId, path_text: &str) -> Result<(), EvalError> {
        self.store.allow(resource, path_text, &mut self.mirror)?;
        self.append(&WalRecord::AddRule {
            resource,
            path: path_text.to_owned(),
        });
        self.inner
            .writes()
            .add_rule(resource, path_text)
            .expect("backend accepts a rule the canonical mirror accepted");
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "srdur-unit-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn wal_frames_round_trip() {
        let records = vec![
            WalRecord::AddUser {
                name: "Alice".to_owned(),
            },
            WalRecord::SetUserAttr {
                user: NodeId(0),
                key: "age".to_owned(),
                value: AttrValue::Int(30),
            },
            WalRecord::AddRelationship {
                src: NodeId(0),
                label: "friend".to_owned(),
                dst: NodeId(1),
            },
            WalRecord::AddResource { owner: NodeId(0) },
            WalRecord::AddRule {
                resource: ResourceId(0),
                path: "friend+[1,2]{age>=18}".to_owned(),
            },
        ];
        let dir = temp_dir("frames");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join(WAL_FILE);
        let mut bytes = Vec::new();
        for r in &records {
            bytes.extend_from_slice(&encode_frame(r));
        }
        fs::write(&path, &bytes).unwrap();
        let scan = read_wal(&path).unwrap();
        assert_eq!(scan.records, records);
        assert_eq!(scan.valid_len, bytes.len() as u64);
        assert!(scan.torn.is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_wal_reads_as_empty() {
        let dir = temp_dir("missing");
        let scan = read_wal(&dir.join(WAL_FILE)).unwrap();
        assert!(scan.records.is_empty());
        assert!(scan.torn.is_none());
    }

    #[test]
    fn snapshot_round_trips() {
        let mut g = SocialGraph::new();
        let a = g.add_node("Alice");
        let b = g.add_node("Bob");
        g.connect(a, "friend", b);
        g.set_node_attr(b, "age", 26i64);
        let mut store = PolicyStore::new();
        let rid = store.register_resource(a);
        store.allow(rid, "friend+[1]", &mut g).unwrap();

        let bytes = encode_snapshot(&g, &store, 7);
        let path = PathBuf::from("snap-test.snap");
        let (g2, store2, covered) = decode_snapshot(&path, &bytes).unwrap();
        assert_eq!(covered, 7);
        assert_eq!(g2.num_nodes(), 2);
        assert_eq!(g2.num_edges(), 1);
        assert_eq!(store2.num_resources(), 1);
        assert_eq!(store2.owner_of(rid).unwrap(), a);
        assert_eq!(store2.rules_for(rid).len(), 1);
    }

    #[test]
    fn snapshot_section_bitflip_is_typed() {
        let mut g = SocialGraph::new();
        g.add_node("Alice");
        let bytes = encode_snapshot(&g, &PolicyStore::new(), 0);
        let path = PathBuf::from("snap-test.snap");
        // Flip one bit in every byte position past the header: each
        // must surface as a typed error (checksum, version, …), never
        // a panic or a silent success.
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x10;
            assert!(
                decode_snapshot(&path, &corrupt).is_err(),
                "bit flip at byte {i} must not decode"
            );
        }
    }

    #[test]
    fn unknown_snapshot_version_is_typed() {
        let g = SocialGraph::new();
        let mut bytes = encode_snapshot(&g, &PolicyStore::new(), 0);
        bytes[8] = 99;
        let err = decode_snapshot(&PathBuf::from("x.snap"), &bytes).unwrap_err();
        assert!(matches!(
            err,
            DurabilityError::UnsupportedVersion { found: 99, .. }
        ));
    }
}
