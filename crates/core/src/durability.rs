//! Durability: write-ahead logging, checksummed snapshots and crash
//! recovery for any serving deployment.
//!
//! An access-control system must **fail closed across restarts**: a
//! crash that silently loses rules or relationships re-opens every
//! decision those facts gated. This module makes the serving state
//! durable without touching either backend:
//!
//! * **Write-ahead log** — [`DurableService`] wraps a
//!   [`ServiceInstance`] and records every [`MutateService`] operation
//!   as a [`WalRecord`] in an append-only log (`wal.log`) of
//!   length-prefixed, CRC-32-checksummed frames *before* applying it.
//!   Replaying the log through the same `MutateService` trait rebuilds
//!   the exact state — member and resource ids are assigned
//!   sequentially by every backend, so replay is deterministic.
//! * **Snapshots** — [`DurableService::snapshot`] serializes the
//!   canonical state (graph via the binary codec in
//!   `socialreach_graph::persist`, policy store as JSON) into a
//!   versioned, per-section-checksummed file stamped with the WAL
//!   position it covers. Snapshots are written to a temp file and
//!   atomically renamed; older snapshots are kept as a fallback chain.
//! * **Recovery** — [`Deployment::durable`] reopens a data directory:
//!   newest valid snapshot + WAL suffix replay. A torn or truncated
//!   WAL tail (the expected shape of a crash mid-append) is discarded
//!   and reported; everything else — a bit-flipped record in the body
//!   of the log, a corrupt or version-incompatible snapshot, a
//!   snapshot ahead of the log — is either detected loudly as a typed
//!   [`DurabilityError`] or skipped onto an older snapshot with a
//!   longer replay, per the [`RecoveryReport`]. Recovery never panics
//!   and never silently grants: the recovered state always equals the
//!   state after some prefix of the logged operations.
//!
//! The WAL retains the full mutation history by default (snapshots
//! never truncate it), so the fallback chain always terminates at
//! "empty state + full replay" — and the history itself is a served
//! surface:
//!
//! * **Point-in-time audit reads** — [`Deployment::durable_at`]
//!   recovers the state *as of any historical position* (newest
//!   snapshot ≤ position + WAL replay to exactly that position) into a
//!   throwaway backend serving `&dyn AccessService`. [`read_history`]
//!   enumerates the logged records with their positions (who changed
//!   what, between which reads), and [`Deployment::audience_diff`]
//!   reports who entered and left a resource's audience between two
//!   positions — the audit/compliance questions a present-state-only
//!   store cannot answer.
//! * **Compaction with a retention horizon** — once history is
//!   consumable it can also be bounded: [`DurableService::compact`]
//!   truncates the log *front* up to the newest valid snapshot at or
//!   below the horizon (snapshot-anchored, so the fallback chain stays
//!   sound: the anchor snapshot replaces "empty state + full replay"
//!   as the chain's terminal). A compacted log recovers identically to
//!   the uncompacted one; positions below the new base become typed
//!   [`DurabilityError::HistoryCompacted`] refusals, never wrong
//!   answers.
//!
//! Appends are buffered by the OS (no per-record fsync): a process
//! crash loses nothing, a host crash may lose a suffix of appends —
//! exactly the shape torn-tail recovery handles. Damage that
//! truncation *cannot* explain — a checksum mismatch or a corrupted
//! length field with intact frames after it — is never classified as
//! a torn tail: the scanner looks past the damaged frame, and any
//! CRC-valid frame beyond it proves mid-log corruption
//! ([`DurabilityError::CorruptWal`], acknowledged writes are never
//! silently discarded).
//!
//! ```
//! use socialreach_core::{AccessService, Deployment, Decision, MutateService};
//!
//! let dir = std::env::temp_dir().join(format!("srdur-doc-{}", std::process::id()));
//! let mut svc = Deployment::online().durable(&dir).unwrap();
//! let alice = svc.add_user("Alice");
//! let bob = svc.add_user("Bob");
//! svc.add_relationship(alice, "friend", bob);
//! let album = svc.add_resource(alice);
//! svc.add_rule(album, "friend+[1]").unwrap();
//! svc.snapshot().unwrap();
//! drop(svc); // "crash"
//!
//! let recovered = Deployment::online().durable(&dir).unwrap();
//! assert_eq!(recovered.reads().check(album, bob).unwrap(), Decision::Grant);
//!
//! // Point-in-time audit: at position 4 the rule had not landed yet,
//! // so the album was still owner-only — replay proves it.
//! let past = Deployment::online().durable_at(&dir, 4).unwrap();
//! assert_eq!(past.reads().check(album, bob).unwrap(), Decision::Deny);
//! assert_eq!(past.reads().check(album, alice).unwrap(), Decision::Grant);
//! let history = socialreach_core::durability::read_history(&dir).unwrap();
//! assert_eq!(history.len(), 5);
//! assert_eq!(history[4].position, 4); // the rule append, in wire form
//! # std::fs::remove_dir_all(&dir).unwrap();
//! ```

use crate::error::EvalError;
use crate::policy::{Decision, PolicyStore, ResourceId};
use crate::service::{
    AccessResponse, AccessService, BundleStrategy, CheckPlan, Deployment, Explanation,
    MutateService, ReadBatch, ReadStats, ServiceInstance,
};
use serde::{Deserialize, Serialize};
use socialreach_graph::wire::crc32;
use socialreach_graph::{persist, AttrValue, LabelId, NodeId, SocialGraph};
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

/// On-disk format version of snapshot files.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Magic bytes opening every snapshot file.
const SNAPSHOT_MAGIC: &[u8; 8] = b"SRSNAP\r\n";

/// Name of the write-ahead log inside a data directory.
const WAL_FILE: &str = "wal.log";

/// Magic bytes opening a *compacted* write-ahead log. A fresh log is
/// headerless (frames from byte 0, base position 0); compaction
/// rewrites the file with this header so the absolute position of the
/// first retained record survives the truncation. Layout:
/// `[8B magic][u64 LE base][u32 LE CRC-32(magic‖base)]`.
const WAL_MAGIC: &[u8; 8] = b"SRWALHDR";

/// Byte length of the compacted-log header.
const WAL_HEADER_LEN: usize = 20;

/// Upper bound on a single WAL frame's payload — far above any real
/// record; a length field claiming more is treated as damage.
const MAX_FRAME: u32 = 1 << 24;

// ---------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------

/// Typed durability failure: every corruption mode recovery can meet
/// has a loud, named shape (the module never panics on bad bytes and
/// never silently degrades a decision).
#[derive(Debug)]
pub enum DurabilityError {
    /// An OS-level I/O failure (open, read, write, rename, …).
    Io {
        /// The file or directory involved.
        path: PathBuf,
        /// The operation that failed.
        op: &'static str,
        /// The OS error text.
        message: String,
    },
    /// The WAL body is damaged: a checksum mismatch or undecodable
    /// record *before* the final frame — truncation cannot explain it,
    /// so recovery refuses to guess.
    CorruptWal {
        /// The log file.
        path: PathBuf,
        /// Byte offset of the damaged frame.
        offset: u64,
        /// What was wrong.
        detail: String,
    },
    /// A snapshot file is damaged (bad magic, bad section checksum,
    /// undecodable section, trailing bytes). Recovery skips it and
    /// falls back to an older snapshot with a longer replay.
    CorruptSnapshot {
        /// The snapshot file.
        path: PathBuf,
        /// What was wrong.
        detail: String,
    },
    /// A snapshot was written by an unknown format version.
    UnsupportedVersion {
        /// The snapshot file.
        path: PathBuf,
        /// The version the file claims.
        found: u32,
        /// The newest version this build reads.
        supported: u32,
    },
    /// A snapshot claims to cover more WAL records than the log holds
    /// — the log was truncated or swapped under the snapshot. The
    /// snapshot is unusable (replaying from its position would skip
    /// operations); recovery falls back.
    SnapshotAheadOfWal {
        /// The snapshot file.
        path: PathBuf,
        /// WAL records the snapshot claims to cover.
        snapshot_records: u64,
        /// WAL records actually on disk.
        wal_records: u64,
    },
    /// A structurally valid WAL record failed to re-apply — the log
    /// and the recorded history have diverged (records are only
    /// appended after the operation validated).
    Replay {
        /// Zero-based index of the failing record.
        record: u64,
        /// Why it failed.
        detail: String,
    },
    /// A point-in-time read asked for a position past the end of the
    /// recorded history.
    PositionBeyondHistory {
        /// The log file.
        path: PathBuf,
        /// The requested position.
        requested: u64,
        /// Positions `0..=available` are addressable.
        available: u64,
    },
    /// A point-in-time read asked for a position below the compaction
    /// horizon: the records needed to replay there were truncated away
    /// by [`DurableService::compact`].
    HistoryCompacted {
        /// The log file.
        path: PathBuf,
        /// The requested position.
        requested: u64,
        /// The first position still recoverable (the log's base).
        base: u64,
    },
    /// A snapshot covers a position *below* the compacted log's base —
    /// the records needed to replay forward from it are gone (a crash
    /// between compaction's rename and its snapshot cleanup can leave
    /// one). Recovery skips it.
    SnapshotBehindCompactedWal {
        /// The snapshot file.
        path: PathBuf,
        /// WAL records the snapshot claims to cover.
        snapshot_records: u64,
        /// The compacted log's base position.
        base: u64,
    },
    /// A compacted log (base > 0) has no usable snapshot at or above
    /// its base: the chain cannot terminate at "empty + full replay"
    /// because the pre-base records no longer exist. Recovery refuses
    /// — the anchor snapshot compaction kept must be restored.
    MissingCompactionAnchor {
        /// The log file.
        path: PathBuf,
        /// The compacted log's base position.
        base: u64,
    },
}

impl fmt::Display for DurabilityError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DurabilityError::Io { path, op, message } => {
                write!(f, "{op} {}: {message}", path.display())
            }
            DurabilityError::CorruptWal {
                path,
                offset,
                detail,
            } => write!(
                f,
                "corrupt write-ahead log {} at byte {offset}: {detail}",
                path.display()
            ),
            DurabilityError::CorruptSnapshot { path, detail } => {
                write!(f, "corrupt snapshot {}: {detail}", path.display())
            }
            DurabilityError::UnsupportedVersion {
                path,
                found,
                supported,
            } => write!(
                f,
                "snapshot {} has format version {found}; this build reads up to {supported}",
                path.display()
            ),
            DurabilityError::SnapshotAheadOfWal {
                path,
                snapshot_records,
                wal_records,
            } => write!(
                f,
                "snapshot {} covers {snapshot_records} WAL records but the log holds {wal_records}",
                path.display()
            ),
            DurabilityError::Replay { record, detail } => {
                write!(f, "WAL record {record} failed to re-apply: {detail}")
            }
            DurabilityError::PositionBeyondHistory {
                path,
                requested,
                available,
            } => write!(
                f,
                "position {requested} is beyond the recorded history of {} ({available} records)",
                path.display()
            ),
            DurabilityError::HistoryCompacted {
                path,
                requested,
                base,
            } => write!(
                f,
                "position {requested} of {} was compacted away (history starts at {base})",
                path.display()
            ),
            DurabilityError::SnapshotBehindCompactedWal {
                path,
                snapshot_records,
                base,
            } => write!(
                f,
                "snapshot {} covers {snapshot_records} records, below the compacted log's base {base}",
                path.display()
            ),
            DurabilityError::MissingCompactionAnchor { path, base } => write!(
                f,
                "compacted log {} (base {base}) has no usable snapshot at or above its base",
                path.display()
            ),
        }
    }
}

impl std::error::Error for DurabilityError {}

fn io_err(path: &Path, op: &'static str, e: std::io::Error) -> DurabilityError {
    DurabilityError::Io {
        path: path.to_path_buf(),
        op,
        message: e.to_string(),
    }
}

// ---------------------------------------------------------------------
// WAL records and framing
// ---------------------------------------------------------------------

/// One logged [`MutateService`] operation, in wire form. Ids are
/// recorded (not re-derived) so replay can cross-check the backend's
/// sequential assignment.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum WalRecord {
    /// [`MutateService::add_user`].
    AddUser {
        /// Display name.
        name: String,
    },
    /// [`MutateService::set_user_attr`].
    SetUserAttr {
        /// The member.
        user: NodeId,
        /// Attribute key.
        key: String,
        /// Attribute value.
        value: AttrValue,
    },
    /// [`MutateService::add_relationship`].
    AddRelationship {
        /// Source member.
        src: NodeId,
        /// Relationship type name.
        label: String,
        /// Target member.
        dst: NodeId,
    },
    /// [`MutateService::add_resource`].
    AddResource {
        /// The owner.
        owner: NodeId,
    },
    /// [`MutateService::add_rule`] (the rule re-parses on replay).
    AddRule {
        /// The resource.
        resource: ResourceId,
        /// The path-expression text.
        path: String,
    },
}

impl fmt::Display for WalRecord {
    /// Human-readable one-liner for audit surfaces (`history` in the
    /// CLI, the audit-trail example).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalRecord::AddUser { name } => write!(f, "add-user {name:?}"),
            WalRecord::SetUserAttr { user, key, value } => {
                write!(f, "set-attr member={user} {key}={value:?}")
            }
            WalRecord::AddRelationship { src, label, dst } => {
                write!(f, "add-relationship {src} -{label}-> {dst}")
            }
            WalRecord::AddResource { owner } => write!(f, "add-resource owner={owner}"),
            WalRecord::AddRule { resource, path } => {
                write!(f, "add-rule resource={} {path:?}", resource.0)
            }
        }
    }
}

/// Encodes one record as a WAL frame:
/// `[u32 LE payload len][u32 LE CRC-32][payload]`, where the checksum
/// covers the length bytes *and* the payload, so a damaged length
/// field cannot masquerade as a valid frame.
fn encode_frame(record: &WalRecord) -> Vec<u8> {
    let payload = serde_json::to_string(record)
        .expect("WAL records serialize (no non-finite floats)")
        .into_bytes();
    let len = payload.len() as u32;
    let mut checked = Vec::with_capacity(4 + payload.len());
    checked.extend_from_slice(&len.to_le_bytes());
    checked.extend_from_slice(&payload);
    let crc = crc32(&checked);
    let mut frame = Vec::with_capacity(8 + payload.len());
    frame.extend_from_slice(&len.to_le_bytes());
    frame.extend_from_slice(&crc.to_le_bytes());
    frame.extend_from_slice(&payload);
    frame
}

/// A discarded torn tail: the expected damage shape of a crash during
/// an append (partial frame at end-of-log).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TornTail {
    /// Byte offset the valid prefix ends at (the log was truncated
    /// back to this length).
    pub offset: u64,
    /// What the discarded bytes looked like.
    pub detail: String,
}

/// Result of scanning a WAL file.
struct WalScan {
    /// Absolute position of the first record in the file (0 unless the
    /// log was compacted; read from the compaction header).
    base: u64,
    records: Vec<WalRecord>,
    /// Byte offset each record's frame *ends* at (`ends[i]` closes
    /// record `base + i`; the first frame starts at the header end).
    ends: Vec<u64>,
    /// Length of the valid prefix in bytes (header included).
    valid_len: u64,
    torn: Option<TornTail>,
}

impl WalScan {
    /// Absolute position one past the last intact record.
    fn total(&self) -> u64 {
        self.base + self.records.len() as u64
    }
}

/// Looks for a CRC-valid frame starting at any byte offset after
/// `after`. One is proof that damage at `after` is *mid-log*
/// corruption: a crash tears only the suffix of the file, so intact
/// acknowledged frames past the damage cannot be explained by
/// truncation (a 2⁻³² accidental CRC match is the error floor).
fn later_valid_frame(bytes: &[u8], after: usize) -> Option<usize> {
    let mut o = after + 1;
    while o + 8 <= bytes.len() {
        let len = u32::from_le_bytes(bytes[o..o + 4].try_into().expect("len 4"));
        if len <= MAX_FRAME && o + 8 + len as usize <= bytes.len() {
            let crc = u32::from_le_bytes(bytes[o + 4..o + 8].try_into().expect("len 4"));
            let mut checked = Vec::with_capacity(4 + len as usize);
            checked.extend_from_slice(&len.to_le_bytes());
            checked.extend_from_slice(&bytes[o + 8..o + 8 + len as usize]);
            if crc32(&checked) == crc {
                return Some(o);
            }
        }
        o += 1;
    }
    None
}

/// Scans a WAL file front to back. A partial frame at end-of-log is a
/// torn tail (reported, prefix kept); damage with any intact frame
/// after it — a corrupted mid-log length field included — is a typed
/// [`DurabilityError::CorruptWal`], never a silent truncation of
/// acknowledged writes.
fn read_wal(path: &Path) -> Result<WalScan, DurabilityError> {
    let bytes = match fs::read(path) {
        Ok(b) => b,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return Ok(WalScan {
                base: 0,
                records: Vec::new(),
                ends: Vec::new(),
                valid_len: 0,
                torn: None,
            })
        }
        Err(e) => return Err(io_err(path, "read", e)),
    };
    let mut base = 0u64;
    let mut pos = 0usize;
    if bytes.len() >= 8 && &bytes[..8] == WAL_MAGIC {
        // A compacted log: the header is written in one atomic rename,
        // so damage here is corruption, not a torn append.
        if bytes.len() < WAL_HEADER_LEN {
            return Err(DurabilityError::CorruptWal {
                path: path.to_path_buf(),
                offset: 0,
                detail: format!("{}-byte truncated compaction header", bytes.len()),
            });
        }
        let stored = u32::from_le_bytes(bytes[16..20].try_into().expect("len 4"));
        if crc32(&bytes[..16]) != stored {
            return Err(DurabilityError::CorruptWal {
                path: path.to_path_buf(),
                offset: 0,
                detail: "compaction header checksum mismatch".to_owned(),
            });
        }
        base = u64::from_le_bytes(bytes[8..16].try_into().expect("len 8"));
        pos = WAL_HEADER_LEN;
    }
    let mut records = Vec::new();
    let mut ends = Vec::new();
    loop {
        let remaining = bytes.len() - pos;
        if remaining == 0 {
            return Ok(WalScan {
                base,
                records,
                ends,
                valid_len: pos as u64,
                torn: None,
            });
        }
        let torn = |records: Vec<WalRecord>, ends: Vec<u64>, detail: String| {
            Ok(WalScan {
                base,
                records,
                ends,
                valid_len: pos as u64,
                torn: Some(TornTail {
                    offset: pos as u64,
                    detail,
                }),
            })
        };
        let corrupt_midlog = |next: usize, detail: String| {
            Err(DurabilityError::CorruptWal {
                path: path.to_path_buf(),
                offset: pos as u64,
                detail: format!("{detail}, but an intact frame follows at byte {next} — mid-log corruption, not a torn tail"),
            })
        };
        if remaining < 8 {
            return torn(
                records,
                ends,
                format!("{remaining}-byte partial frame header"),
            );
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("len 4"));
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("len 4"));
        if len > MAX_FRAME || (len as usize) > remaining - 8 {
            // The claimed payload extends past end-of-log: a frame cut
            // short by a crash, or a damaged length field. Truncation
            // only ever loses the suffix — so an intact frame anywhere
            // past this point disproves the torn-tail reading.
            if let Some(next) = later_valid_frame(&bytes, pos) {
                return corrupt_midlog(
                    next,
                    format!("length field claims a {len}-byte payload past end-of-log"),
                );
            }
            return torn(
                records,
                ends,
                format!(
                    "frame claims {len}-byte payload, {} bytes remain",
                    remaining - 8
                ),
            );
        }
        let payload = &bytes[pos + 8..pos + 8 + len as usize];
        let mut checked = Vec::with_capacity(4 + payload.len());
        checked.extend_from_slice(&len.to_le_bytes());
        checked.extend_from_slice(payload);
        let frame_end = pos + 8 + len as usize;
        if crc32(&checked) != crc {
            if frame_end == bytes.len() {
                // Checksum mismatch on what claims to be the final
                // frame. A torn write (header landed, payload didn't
                // finish) — unless a damaged length field swallowed
                // intact frames into its claimed payload.
                if let Some(next) = later_valid_frame(&bytes, pos) {
                    return corrupt_midlog(next, "checksum mismatch on final frame".to_owned());
                }
                return torn(records, ends, "checksum mismatch on final frame".to_owned());
            }
            return Err(DurabilityError::CorruptWal {
                path: path.to_path_buf(),
                offset: pos as u64,
                detail: format!(
                    "checksum mismatch (stored {crc:#010x}, computed {:#010x}) before end of log",
                    crc32(&checked)
                ),
            });
        }
        let text = std::str::from_utf8(payload).map_err(|_| DurabilityError::CorruptWal {
            path: path.to_path_buf(),
            offset: pos as u64,
            detail: "checksummed payload is not UTF-8".to_owned(),
        })?;
        let record: WalRecord =
            serde_json::from_str(text).map_err(|e| DurabilityError::CorruptWal {
                path: path.to_path_buf(),
                offset: pos as u64,
                detail: format!("undecodable record: {e}"),
            })?;
        records.push(record);
        ends.push(frame_end as u64);
        pos = frame_end;
    }
}

// ---------------------------------------------------------------------
// Snapshot files
// ---------------------------------------------------------------------

fn snapshot_file_name(wal_records: u64) -> String {
    // Zero-padded so lexicographic order is numeric order.
    format!("snap-{wal_records:020}.snap")
}

fn encode_snapshot(g: &SocialGraph, store: &PolicyStore, wal_records: u64) -> Vec<u8> {
    let graph_bytes = persist::encode_graph(g);
    let store_bytes = serde_json::to_string(store)
        .expect("policy store serializes")
        .into_bytes();
    let mut out = Vec::with_capacity(28 + graph_bytes.len() + store_bytes.len() + 16);
    out.extend_from_slice(SNAPSHOT_MAGIC);
    out.extend_from_slice(&SNAPSHOT_VERSION.to_le_bytes());
    out.extend_from_slice(&wal_records.to_le_bytes());
    let header_crc = crc32(&out);
    out.extend_from_slice(&header_crc.to_le_bytes());
    for section in [&graph_bytes, &store_bytes] {
        out.extend_from_slice(&(section.len() as u32).to_le_bytes());
        out.extend_from_slice(&crc32(section).to_le_bytes());
        out.extend_from_slice(section);
    }
    out
}

fn decode_snapshot(
    path: &Path,
    bytes: &[u8],
) -> Result<(SocialGraph, PolicyStore, u64), DurabilityError> {
    let corrupt = |detail: String| DurabilityError::CorruptSnapshot {
        path: path.to_path_buf(),
        detail,
    };
    if bytes.len() < 24 {
        return Err(corrupt(format!("{}-byte file is too short", bytes.len())));
    }
    if &bytes[..8] != SNAPSHOT_MAGIC {
        return Err(corrupt("bad magic".to_owned()));
    }
    // Version is read before any checksum so a future-format file is
    // reported as such (its layout past the version field is unknown).
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("len 4"));
    if version != SNAPSHOT_VERSION {
        return Err(DurabilityError::UnsupportedVersion {
            path: path.to_path_buf(),
            found: version,
            supported: SNAPSHOT_VERSION,
        });
    }
    let header_crc = u32::from_le_bytes(bytes[20..24].try_into().expect("len 4"));
    if crc32(&bytes[..20]) != header_crc {
        return Err(corrupt("header checksum mismatch".to_owned()));
    }
    let wal_records = u64::from_le_bytes(bytes[12..20].try_into().expect("len 8"));
    let mut pos = 24usize;
    let mut sections: Vec<&[u8]> = Vec::with_capacity(2);
    for name in ["graph", "policy"] {
        if bytes.len() - pos < 8 {
            return Err(corrupt(format!("truncated before {name} section header")));
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("len 4")) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().expect("len 4"));
        pos += 8;
        if bytes.len() - pos < len {
            return Err(corrupt(format!(
                "{name} section claims {len} bytes, {} remain",
                bytes.len() - pos
            )));
        }
        let section = &bytes[pos..pos + len];
        if crc32(section) != crc {
            return Err(corrupt(format!("{name} section checksum mismatch")));
        }
        sections.push(section);
        pos += len;
    }
    if pos != bytes.len() {
        return Err(corrupt(format!("{} trailing bytes", bytes.len() - pos)));
    }
    let g = persist::decode_graph(sections[0]).map_err(|e| corrupt(format!("graph: {e}")))?;
    let store_text =
        std::str::from_utf8(sections[1]).map_err(|_| corrupt("policy: not UTF-8".to_owned()))?;
    let store: PolicyStore =
        serde_json::from_str(store_text).map_err(|e| corrupt(format!("policy: {e}")))?;
    Ok((g, store, wal_records))
}

// ---------------------------------------------------------------------
// Recovery report
// ---------------------------------------------------------------------

/// What [`Deployment::durable`] found and did while reopening a data
/// directory. Every skipped artifact carries its typed error —
/// corruption is always loud, even when recovery routed around it.
#[derive(Debug, Default)]
pub struct RecoveryReport {
    /// The snapshot recovery started from (file name, WAL position),
    /// or `None` when it replayed the full log from empty state.
    pub snapshot_loaded: Option<(String, u64)>,
    /// Snapshots that were newer but unusable, newest first, each with
    /// the typed error that disqualified it.
    pub snapshots_skipped: Vec<(String, DurabilityError)>,
    /// Absolute position one past the last intact record of the log.
    pub wal_records: u64,
    /// Absolute position of the first record still in the log — 0
    /// unless [`DurableService::compact`] truncated earlier history.
    pub wal_base: u64,
    /// Records replayed on top of the loaded snapshot.
    pub records_replayed: u64,
    /// The discarded torn tail, if the log ended mid-append.
    pub torn_tail: Option<TornTail>,
}

// ---------------------------------------------------------------------
// The durable decorator
// ---------------------------------------------------------------------

/// A [`ServiceInstance`] with durability: every write is appended to
/// the write-ahead log, a canonical mirror of the state (graph +
/// policy store) is kept for snapshotting, and reads forward to the
/// wrapped backend untouched. Construct with [`Deployment::durable`].
///
/// The mirror exists because the sharded backend has no global graph
/// to export; it is authoritative for snapshots and doubles as the
/// ground-truth source recovery audits replay against. Backends assign
/// member and resource ids sequentially, so the mirror, the backend
/// and any replayed copy agree on every id — divergence is checked on
/// every write and surfaces as a loud error, never a wrong answer.
pub struct DurableService {
    inner: ServiceInstance,
    mirror: SocialGraph,
    store: PolicyStore,
    dir: PathBuf,
    wal_path: PathBuf,
    wal: File,
    wal_base: u64,
    wal_records: u64,
    report: RecoveryReport,
}

impl Deployment {
    /// Opens (or initializes) a durable deployment in `dir`: recovery
    /// is newest-valid-snapshot + WAL-suffix replay, after which every
    /// mutation through the returned service is write-ahead logged.
    /// See [`DurableService`] and the module docs for the corruption
    /// semantics.
    pub fn durable(&self, dir: impl AsRef<Path>) -> Result<DurableService, DurabilityError> {
        DurableService::open(self.clone(), dir.as_ref())
    }

    /// Recovers the state of a durable data directory **as of an
    /// historical position**: the newest valid snapshot at or below
    /// `position` plus WAL replay to exactly `position`, served from a
    /// throwaway in-memory backend of this deployment shape. Position
    /// `k` means "after the first `k` logged records" — `0` is the
    /// empty state, [`DurableService::wal_records`] is the present.
    ///
    /// The directory is only read, never written: the returned
    /// instance is not durable, logs nothing, and can be dropped
    /// freely — it exists to answer audit questions ("who could see
    /// this resource after record `k`?") with the full policy
    /// semantics of a live deployment. Positions past the history or
    /// below a compaction horizon are typed refusals
    /// ([`DurabilityError::PositionBeyondHistory`] /
    /// [`DurabilityError::HistoryCompacted`]).
    pub fn durable_at(
        &self,
        dir: impl AsRef<Path>,
        position: u64,
    ) -> Result<ServiceInstance, DurabilityError> {
        let dir = dir.as_ref();
        let wal_path = dir.join(WAL_FILE);
        let scan = read_wal(&wal_path)?;
        check_position(&wal_path, &scan, position)?;
        Ok(recover_to(self, dir, &wal_path, &scan, position)?.inner)
    }

    /// Audits how a resource's audience changed between two historical
    /// positions: who **entered**, who **left**, and who was
    /// **retained**, computed by recovering both points with
    /// [`Deployment::durable_at`] semantics and materializing the
    /// audience at each. A position where the resource did not exist
    /// yet contributes an empty audience (nobody could see a resource
    /// before it was shared).
    pub fn audience_diff(
        &self,
        dir: impl AsRef<Path>,
        resource: ResourceId,
        from: u64,
        to: u64,
    ) -> Result<AudienceDiff, AuditError> {
        let dir = dir.as_ref();
        let wal_path = dir.join(WAL_FILE);
        let scan = read_wal(&wal_path)?;
        check_position(&wal_path, &scan, from)?;
        check_position(&wal_path, &scan, to)?;
        let audience_at = |target: u64| -> Result<Vec<NodeId>, AuditError> {
            let rec = recover_to(self, dir, &wal_path, &scan, target)?;
            if (resource.0 as usize) < rec.store.num_resources() {
                rec.inner
                    .reads()
                    .audience(resource)
                    .map_err(AuditError::Eval)
            } else {
                Ok(Vec::new())
            }
        };
        let before = audience_at(from)?;
        let after = audience_at(to)?;
        // Audiences come back sorted; split them with one merge pass.
        let mut entered = Vec::new();
        let mut left = Vec::new();
        let mut retained = Vec::new();
        let (mut i, mut j) = (0, 0);
        while i < before.len() || j < after.len() {
            match (before.get(i), after.get(j)) {
                (Some(&b), Some(&a)) if b == a => {
                    retained.push(b);
                    i += 1;
                    j += 1;
                }
                (Some(&b), Some(&a)) if b < a => {
                    left.push(b);
                    i += 1;
                }
                (Some(_), Some(&a)) => {
                    entered.push(a);
                    j += 1;
                }
                (Some(&b), None) => {
                    left.push(b);
                    i += 1;
                }
                (None, Some(&a)) => {
                    entered.push(a);
                    j += 1;
                }
                (None, None) => unreachable!("loop guard"),
            }
        }
        Ok(AudienceDiff {
            resource,
            from,
            to,
            entered,
            left,
            retained,
        })
    }
}

/// One logged mutation with its absolute position in the history.
/// The state *after* this record is `durable_at(dir, position + 1)`;
/// the state it acted on is `durable_at(dir, position)`.
#[derive(Clone, Debug, PartialEq)]
pub struct HistoryEntry {
    /// Absolute zero-based position of the record in the WAL.
    pub position: u64,
    /// The logged operation, in wire form.
    pub record: WalRecord,
}

/// Enumerates the durable history of a data directory: every intact
/// WAL record with its absolute position (after compaction, positions
/// start at the retained base, not 0). A torn tail is tolerated — the
/// intact records before it *are* the history — while mid-log
/// corruption is a typed [`DurabilityError::CorruptWal`].
pub fn read_history(dir: impl AsRef<Path>) -> Result<Vec<HistoryEntry>, DurabilityError> {
    let wal_path = dir.as_ref().join(WAL_FILE);
    let scan = read_wal(&wal_path)?;
    let base = scan.base;
    Ok(scan
        .records
        .into_iter()
        .enumerate()
        .map(|(i, record)| HistoryEntry {
            position: base + i as u64,
            record,
        })
        .collect())
}

/// How a resource's audience changed between two historical positions
/// (see [`Deployment::audience_diff`]). Member ids are stable across
/// the whole history (backends assign them sequentially), so the same
/// id names the same member at both points.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AudienceDiff {
    /// The audited resource.
    pub resource: ResourceId,
    /// The earlier position.
    pub from: u64,
    /// The later position.
    pub to: u64,
    /// Members in the audience at `to` but not at `from`, sorted.
    pub entered: Vec<NodeId>,
    /// Members in the audience at `from` but not at `to`, sorted.
    pub left: Vec<NodeId>,
    /// Members in both audiences, sorted.
    pub retained: Vec<NodeId>,
}

/// An audit read failure: either the history could not be recovered
/// (durability layer) or the recovered backend refused the read
/// (evaluation layer).
#[derive(Debug)]
pub enum AuditError {
    /// Recovering the requested position failed.
    Durability(DurabilityError),
    /// The recovered backend rejected the read.
    Eval(EvalError),
}

impl fmt::Display for AuditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AuditError::Durability(e) => write!(f, "{e}"),
            AuditError::Eval(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for AuditError {}

impl From<DurabilityError> for AuditError {
    fn from(e: DurabilityError) -> Self {
        AuditError::Durability(e)
    }
}

impl From<EvalError> for AuditError {
    fn from(e: EvalError) -> Self {
        AuditError::Eval(e)
    }
}

/// What [`DurableService::compact`] did: the snapshot the truncation
/// anchored at, the history it dropped, and the snapshots it deleted.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CompactionReport {
    /// The anchor snapshot `(file name, position)` the log was cut at,
    /// or `None` when no snapshot at or below the horizon exists (the
    /// log is left untouched — compaction never cuts past what a
    /// snapshot can recover).
    pub anchor: Option<(String, u64)>,
    /// Records truncated off the front of the log.
    pub records_dropped: u64,
    /// Snapshot files deleted because their positions fell below the
    /// new base (replaying forward from them is no longer possible).
    pub snapshots_deleted: Vec<String>,
    /// The log's base position after the call.
    pub base: u64,
}

/// Rejects positions outside the recoverable range of a scanned log.
fn check_position(wal_path: &Path, scan: &WalScan, position: u64) -> Result<(), DurabilityError> {
    if position > scan.total() {
        Err(DurabilityError::PositionBeyondHistory {
            path: wal_path.to_path_buf(),
            requested: position,
            available: scan.total(),
        })
    } else if position < scan.base {
        Err(DurabilityError::HistoryCompacted {
            path: wal_path.to_path_buf(),
            requested: position,
            base: scan.base,
        })
    } else {
        Ok(())
    }
}

/// A recovered state: the backend, its canonical mirror, and the
/// report of how it was reconstructed.
struct Recovered {
    inner: ServiceInstance,
    mirror: SocialGraph,
    store: PolicyStore,
    report: RecoveryReport,
}

/// The shared recovery engine: reconstructs the state as of absolute
/// position `target` (`scan.base <= target <= scan.total()`) from the
/// newest usable snapshot at or below it plus WAL replay. Snapshots
/// newer than `target` but within the log are simply not candidates
/// (a point-in-time read routes around them silently); damaged,
/// ahead-of-log or behind-compaction snapshots are skipped loudly in
/// the report.
fn recover_to(
    deployment: &Deployment,
    dir: &Path,
    wal_path: &Path,
    scan: &WalScan,
    target: u64,
) -> Result<Recovered, DurabilityError> {
    let total = scan.total();
    debug_assert!(target >= scan.base && target <= total, "caller bounds");

    let mut snapshot_names: Vec<String> = fs::read_dir(dir)
        .map_err(|e| io_err(dir, "read dir", e))?
        .filter_map(|entry| entry.ok())
        .filter_map(|entry| entry.file_name().into_string().ok())
        .filter(|name| name.starts_with("snap-") && name.ends_with(".snap"))
        .collect();
    snapshot_names.sort_unstable_by(|a, b| b.cmp(a));

    let mut report = RecoveryReport {
        wal_records: total,
        wal_base: scan.base,
        torn_tail: scan.torn.clone(),
        ..RecoveryReport::default()
    };
    let mut base_state: Option<(SocialGraph, PolicyStore, u64)> = None;
    for name in snapshot_names {
        let path = dir.join(&name);
        let loaded = fs::read(&path)
            .map_err(|e| io_err(&path, "read", e))
            .and_then(|bytes| decode_snapshot(&path, &bytes))
            .and_then(|(g, store, covered)| {
                if covered > total {
                    Err(DurabilityError::SnapshotAheadOfWal {
                        path: path.clone(),
                        snapshot_records: covered,
                        wal_records: total,
                    })
                } else if covered < scan.base {
                    Err(DurabilityError::SnapshotBehindCompactedWal {
                        path: path.clone(),
                        snapshot_records: covered,
                        base: scan.base,
                    })
                } else {
                    Ok((g, store, covered))
                }
            });
        match loaded {
            Ok((_, _, covered)) if covered > target => {
                // Intact, but newer than the requested point in time.
            }
            Ok(found) => {
                report.snapshot_loaded = Some((name, found.2));
                base_state = Some(found);
                break;
            }
            Err(e) => report.snapshots_skipped.push((name, e)),
        }
    }

    let (mut mirror, mut store, replay_from) = match base_state {
        Some(found) => found,
        None if scan.base > 0 => {
            // A compacted log cannot fall back to empty + full replay:
            // the pre-base records are gone.
            return Err(DurabilityError::MissingCompactionAnchor {
                path: wal_path.to_path_buf(),
                base: scan.base,
            });
        }
        None => (SocialGraph::new(), PolicyStore::new(), 0),
    };
    let mut inner = deployment.from_graph(&mirror, store.clone());
    {
        let writes = inner.writes();
        let lo = (replay_from - scan.base) as usize;
        let hi = (target - scan.base) as usize;
        for (i, record) in scan.records[lo..hi].iter().enumerate() {
            apply_record(record, writes, &mut mirror, &mut store).map_err(|detail| {
                DurabilityError::Replay {
                    record: replay_from + i as u64,
                    detail,
                }
            })?;
            report.records_replayed += 1;
        }
    }
    Ok(Recovered {
        inner,
        mirror,
        store,
        report,
    })
}

impl DurableService {
    fn open(deployment: Deployment, dir: &Path) -> Result<Self, DurabilityError> {
        fs::create_dir_all(dir).map_err(|e| io_err(dir, "create", e))?;
        let wal_path = dir.join(WAL_FILE);
        let scan = read_wal(&wal_path)?;
        let recovered = recover_to(&deployment, dir, &wal_path, &scan, scan.total())?;

        // Truncate a torn tail so future appends start at the valid
        // prefix instead of extending garbage. The surviving record
        // count — not the pre-truncation byte length — is what every
        // later snapshot stamp must cover.
        if scan.torn.is_some() {
            let f = OpenOptions::new()
                .write(true)
                .open(&wal_path)
                .map_err(|e| io_err(&wal_path, "open", e))?;
            f.set_len(scan.valid_len)
                .map_err(|e| io_err(&wal_path, "truncate", e))?;
        }
        let wal = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&wal_path)
            .map_err(|e| io_err(&wal_path, "open", e))?;

        Ok(DurableService {
            inner: recovered.inner,
            mirror: recovered.mirror,
            store: recovered.store,
            dir: dir.to_path_buf(),
            wal_path,
            wal,
            wal_base: scan.base,
            wal_records: scan.total(),
            report: recovered.report,
        })
    }

    /// What recovery found: the snapshot used, artifacts skipped (with
    /// their typed errors), records replayed, torn tail discarded.
    pub fn recovery_report(&self) -> &RecoveryReport {
        &self.report
    }

    /// Absolute position one past the last record in the write-ahead
    /// log — the "present" position for [`Deployment::durable_at`].
    pub fn wal_records(&self) -> u64 {
        self.wal_records
    }

    /// Absolute position of the oldest record still in the log: 0 on
    /// an uncompacted log, the anchor-snapshot position after
    /// [`DurableService::compact`]. Point-in-time reads below this are
    /// refused with [`DurabilityError::HistoryCompacted`].
    pub fn wal_base(&self) -> u64 {
        self.wal_base
    }

    /// The durable history of this service's data directory: every
    /// logged record with its absolute position (see [`read_history`]).
    pub fn history(&self) -> Result<Vec<HistoryEntry>, DurabilityError> {
        read_history(&self.dir)
    }

    /// The data directory this service persists into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The canonical mirror graph (authoritative for snapshots and for
    /// ground-truth audits of the wrapped backend).
    pub fn graph(&self) -> &SocialGraph {
        &self.mirror
    }

    /// The canonical policy store.
    pub fn store(&self) -> &PolicyStore {
        &self.store
    }

    /// This service as a deployment-agnostic read service.
    pub fn reads(&self) -> &dyn AccessService {
        self
    }

    /// This service as a deployment-agnostic write service.
    pub fn writes(&mut self) -> &mut dyn MutateService {
        self
    }

    /// Persists a snapshot of the current state, stamped with the WAL
    /// position it covers, and returns its path. Written to a temp
    /// file and atomically renamed; never overwrites a good snapshot
    /// with a partial one. Takes `&self`: concurrent readers (behind a
    /// shared lock) keep reading while the snapshot persists.
    pub fn snapshot(&self) -> Result<PathBuf, DurabilityError> {
        let bytes = encode_snapshot(&self.mirror, &self.store, self.wal_records);
        let final_path = self.dir.join(snapshot_file_name(self.wal_records));
        let tmp_path = self.dir.join(format!(
            "{}.tmp-{}",
            snapshot_file_name(self.wal_records),
            std::process::id()
        ));
        fs::write(&tmp_path, &bytes).map_err(|e| io_err(&tmp_path, "write", e))?;
        fs::rename(&tmp_path, &final_path).map_err(|e| io_err(&final_path, "rename", e))?;
        Ok(final_path)
    }

    /// Truncates history older than `horizon` off the *front* of the
    /// write-ahead log, anchored at the newest valid snapshot at or
    /// below the horizon. Snapshot-anchored means the fallback chain
    /// stays sound by construction: the log is only ever cut at a
    /// position a snapshot on disk can recover, that anchor becomes
    /// the chain's terminal (replacing "empty + full replay"), and the
    /// rewritten log carries the cut position in a checksummed header
    /// so positions stay absolute. Without a usable snapshot at or
    /// below the horizon the call is a no-op (`anchor: None`) — the
    /// log is never cut past what a snapshot can prove.
    ///
    /// The rewrite is tmp-file + atomic rename (a crash leaves either
    /// the old or the new log, both recoverable). Snapshots below the
    /// new base are deleted afterwards: replaying forward from them is
    /// no longer possible, and recovery would only skip them loudly.
    /// Point-in-time reads below the new base become typed
    /// [`DurabilityError::HistoryCompacted`] refusals.
    pub fn compact(&mut self, horizon: u64) -> Result<CompactionReport, DurabilityError> {
        let horizon = horizon.min(self.wal_records);
        let mut report = CompactionReport {
            base: self.wal_base,
            ..CompactionReport::default()
        };

        // Newest valid snapshot within [base, horizon] anchors the cut
        // (validated by a full decode — anchoring on a snapshot that
        // cannot load would break the chain's terminal).
        let mut names: Vec<String> = fs::read_dir(&self.dir)
            .map_err(|e| io_err(&self.dir, "read dir", e))?
            .filter_map(|entry| entry.ok())
            .filter_map(|entry| entry.file_name().into_string().ok())
            .filter(|name| name.starts_with("snap-") && name.ends_with(".snap"))
            .collect();
        names.sort_unstable_by(|a, b| b.cmp(a));
        let mut anchor: Option<(String, u64)> = None;
        for name in names.iter() {
            let path = self.dir.join(name);
            let Ok(bytes) = fs::read(&path) else { continue };
            let Ok((_, _, covered)) = decode_snapshot(&path, &bytes) else {
                continue;
            };
            if covered >= self.wal_base && covered <= horizon {
                anchor = Some((name.clone(), covered));
                break;
            }
        }
        let Some((anchor_name, cut)) = anchor else {
            return Ok(report);
        };
        report.anchor = Some((anchor_name, cut));
        if cut <= self.wal_base {
            // Already compacted at least this far; nothing to drop.
            return Ok(report);
        }

        // Rewrite the log as header + the frames from `cut` on, with
        // byte boundaries re-derived from disk (every acknowledged
        // append is already on the file).
        let scan = read_wal(&self.wal_path)?;
        debug_assert!(scan.torn.is_none(), "live log has whole frames only");
        debug_assert_eq!(scan.total(), self.wal_records, "log matches service");
        let bytes = fs::read(&self.wal_path).map_err(|e| io_err(&self.wal_path, "read", e))?;
        let keep_from = scan.ends[(cut - scan.base) as usize - 1] as usize;
        let mut out = Vec::with_capacity(WAL_HEADER_LEN + bytes.len() - keep_from);
        out.extend_from_slice(WAL_MAGIC);
        out.extend_from_slice(&cut.to_le_bytes());
        let header_crc = crc32(&out);
        out.extend_from_slice(&header_crc.to_le_bytes());
        out.extend_from_slice(&bytes[keep_from..scan.valid_len as usize]);
        let tmp_path = self
            .dir
            .join(format!("{WAL_FILE}.tmp-{}", std::process::id()));
        fs::write(&tmp_path, &out).map_err(|e| io_err(&tmp_path, "write", e))?;
        fs::rename(&tmp_path, &self.wal_path).map_err(|e| io_err(&self.wal_path, "rename", e))?;
        // The old append handle points at the replaced inode; reopen.
        self.wal = OpenOptions::new()
            .append(true)
            .open(&self.wal_path)
            .map_err(|e| io_err(&self.wal_path, "open", e))?;
        report.records_dropped = cut - self.wal_base;
        report.base = cut;
        self.wal_base = cut;

        // Snapshots below the new base can no longer seed a replay.
        for name in names {
            let covered: Option<u64> = name
                .strip_prefix("snap-")
                .and_then(|n| n.strip_suffix(".snap"))
                .and_then(|n| n.parse().ok());
            if covered.is_some_and(|c| c < cut) {
                let path = self.dir.join(&name);
                fs::remove_file(&path).map_err(|e| io_err(&path, "remove", e))?;
                report.snapshots_deleted.push(name);
            }
        }
        Ok(report)
    }

    /// Appends one frame to the log. WAL append failure is fail-stop:
    /// acknowledging a write the log did not capture would break the
    /// recovery contract.
    fn append(&mut self, record: &WalRecord) {
        let frame = encode_frame(record);
        self.wal
            .write_all(&frame)
            .unwrap_or_else(|e| panic!("WAL append to {} failed: {e}", self.wal_path.display()));
        self.wal_records += 1;
    }
}

/// Applies one record to a backend and the canonical mirror, checking
/// the two stay id-for-id identical. Invalid ids (possible only under
/// a log that disagrees with its own history) error — never panic.
fn apply_record(
    record: &WalRecord,
    inner: &mut dyn MutateService,
    mirror: &mut SocialGraph,
    store: &mut PolicyStore,
) -> Result<(), String> {
    let check_member = |user: NodeId, mirror: &SocialGraph| {
        if mirror.contains_node(user) {
            Ok(())
        } else {
            Err(format!(
                "member {user} out of range ({} members)",
                mirror.num_nodes()
            ))
        }
    };
    match record {
        WalRecord::AddUser { name } => {
            let got = inner.add_user(name);
            let expect = mirror.add_node(name);
            if got != expect {
                return Err(format!(
                    "backend assigned member id {got}, history says {expect}"
                ));
            }
        }
        WalRecord::SetUserAttr { user, key, value } => {
            check_member(*user, mirror)?;
            inner.set_user_attr(*user, key, value.clone());
            mirror.set_node_attr(*user, key, value.clone());
        }
        WalRecord::AddRelationship { src, label, dst } => {
            check_member(*src, mirror)?;
            check_member(*dst, mirror)?;
            inner.add_relationship(*src, label, *dst);
            mirror.connect(*src, label, *dst);
        }
        WalRecord::AddResource { owner } => {
            check_member(*owner, mirror)?;
            let got = inner.add_resource(*owner);
            let expect = store.register_resource(*owner);
            if got != expect {
                return Err(format!(
                    "backend assigned resource id {got:?}, history says {expect:?}"
                ));
            }
        }
        WalRecord::AddRule { resource, path } => {
            store
                .allow(*resource, path, mirror)
                .map_err(|e| format!("rule rejected: {e}"))?;
            inner
                .add_rule(*resource, path)
                .map_err(|e| format!("backend rejected a rule the history accepted: {e}"))?;
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Trait impls: reads forward, writes log
// ---------------------------------------------------------------------

impl AccessService for DurableService {
    fn describe(&self) -> String {
        format!("durable({})", self.inner.reads().describe())
    }

    fn num_members(&self) -> usize {
        self.inner.reads().num_members()
    }

    fn num_relationships(&self) -> usize {
        self.inner.reads().num_relationships()
    }

    fn resolve_user(&self, name: &str) -> Result<NodeId, EvalError> {
        self.inner.reads().resolve_user(name)
    }

    fn member_name(&self, member: NodeId) -> &str {
        self.inner.member_name(member)
    }

    fn label_name(&self, label: LabelId) -> &str {
        self.inner.label_name(label)
    }

    fn check(&self, resource: ResourceId, requester: NodeId) -> Result<Decision, EvalError> {
        self.inner.reads().check(resource, requester)
    }

    fn check_batch(
        &self,
        requests: &[(ResourceId, NodeId)],
        threads: usize,
    ) -> Result<Vec<Decision>, EvalError> {
        self.inner.reads().check_batch(requests, threads)
    }

    fn audience_batch_with_stats(
        &self,
        rids: &[ResourceId],
    ) -> Result<(Vec<Vec<NodeId>>, ReadStats), EvalError> {
        self.inner.reads().audience_batch_with_stats(rids)
    }

    fn query_audience_bundle(
        &self,
        queries: &[(NodeId, &str)],
    ) -> Result<Vec<Vec<NodeId>>, EvalError> {
        self.inner.reads().query_audience_bundle(queries)
    }

    fn explain(
        &self,
        resource: ResourceId,
        requester: NodeId,
    ) -> Result<Option<Explanation>, EvalError> {
        self.inner.reads().explain(resource, requester)
    }

    fn cache_stats(&self) -> (u64, u64) {
        self.inner.reads().cache_stats()
    }

    fn check_with_stats(
        &self,
        resource: ResourceId,
        requester: NodeId,
    ) -> Result<(Decision, ReadStats), EvalError> {
        self.inner.reads().check_with_stats(resource, requester)
    }

    fn check_batch_with_stats(
        &self,
        requests: &[(ResourceId, NodeId)],
        threads: usize,
    ) -> Result<(Vec<Decision>, ReadStats), EvalError> {
        self.inner.reads().check_batch_with_stats(requests, threads)
    }

    fn explain_with_stats(
        &self,
        resource: ResourceId,
        requester: NodeId,
    ) -> Result<(Option<Explanation>, ReadStats), EvalError> {
        self.inner.reads().explain_with_stats(resource, requester)
    }

    fn read_batch(&self, batch: &ReadBatch) -> Result<Vec<AccessResponse>, EvalError> {
        self.inner.reads().read_batch(batch)
    }

    fn stats_supported(&self) -> bool {
        self.inner.reads().stats_supported()
    }

    fn audience_batch_forced(
        &self,
        rids: &[ResourceId],
        strategy: BundleStrategy,
    ) -> Result<(Vec<Vec<NodeId>>, ReadStats), EvalError> {
        self.inner.reads().audience_batch_forced(rids, strategy)
    }

    fn check_batch_forced(
        &self,
        requests: &[(ResourceId, NodeId)],
        threads: usize,
        plan: CheckPlan,
    ) -> Result<(Vec<Decision>, ReadStats), EvalError> {
        self.inner
            .reads()
            .check_batch_forced(requests, threads, plan)
    }
}

impl MutateService for DurableService {
    fn add_user(&mut self, name: &str) -> NodeId {
        self.append(&WalRecord::AddUser {
            name: name.to_owned(),
        });
        let got = self.inner.writes().add_user(name);
        let expect = self.mirror.add_node(name);
        debug_assert_eq!(got, expect, "sequential id assignment diverged");
        got
    }

    fn set_user_attr(&mut self, user: NodeId, key: &str, value: AttrValue) {
        self.append(&WalRecord::SetUserAttr {
            user,
            key: key.to_owned(),
            value: value.clone(),
        });
        self.inner.writes().set_user_attr(user, key, value.clone());
        self.mirror.set_node_attr(user, key, value);
    }

    fn add_relationship(&mut self, src: NodeId, label: &str, dst: NodeId) {
        self.append(&WalRecord::AddRelationship {
            src,
            label: label.to_owned(),
            dst,
        });
        self.inner.writes().add_relationship(src, label, dst);
        self.mirror.connect(src, label, dst);
    }

    fn add_resource(&mut self, owner: NodeId) -> ResourceId {
        self.append(&WalRecord::AddResource { owner });
        let got = self.inner.writes().add_resource(owner);
        let expect = self.store.register_resource(owner);
        debug_assert_eq!(got, expect, "sequential id assignment diverged");
        got
    }

    /// Validate-then-log: the rule is parsed and applied to the
    /// canonical mirror first, so a rejected rule is never logged (a
    /// logged record must always re-apply on recovery).
    fn add_rule(&mut self, resource: ResourceId, path_text: &str) -> Result<(), EvalError> {
        self.store.allow(resource, path_text, &mut self.mirror)?;
        self.append(&WalRecord::AddRule {
            resource,
            path: path_text.to_owned(),
        });
        self.inner
            .writes()
            .add_rule(resource, path_text)
            .expect("backend accepts a rule the canonical mirror accepted");
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "srdur-unit-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn wal_frames_round_trip() {
        let records = vec![
            WalRecord::AddUser {
                name: "Alice".to_owned(),
            },
            WalRecord::SetUserAttr {
                user: NodeId(0),
                key: "age".to_owned(),
                value: AttrValue::Int(30),
            },
            WalRecord::AddRelationship {
                src: NodeId(0),
                label: "friend".to_owned(),
                dst: NodeId(1),
            },
            WalRecord::AddResource { owner: NodeId(0) },
            WalRecord::AddRule {
                resource: ResourceId(0),
                path: "friend+[1,2]{age>=18}".to_owned(),
            },
        ];
        let dir = temp_dir("frames");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join(WAL_FILE);
        let mut bytes = Vec::new();
        for r in &records {
            bytes.extend_from_slice(&encode_frame(r));
        }
        fs::write(&path, &bytes).unwrap();
        let scan = read_wal(&path).unwrap();
        assert_eq!(scan.records, records);
        assert_eq!(scan.valid_len, bytes.len() as u64);
        assert!(scan.torn.is_none());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_wal_reads_as_empty() {
        let dir = temp_dir("missing");
        let scan = read_wal(&dir.join(WAL_FILE)).unwrap();
        assert!(scan.records.is_empty());
        assert!(scan.torn.is_none());
    }

    #[test]
    fn snapshot_round_trips() {
        let mut g = SocialGraph::new();
        let a = g.add_node("Alice");
        let b = g.add_node("Bob");
        g.connect(a, "friend", b);
        g.set_node_attr(b, "age", 26i64);
        let mut store = PolicyStore::new();
        let rid = store.register_resource(a);
        store.allow(rid, "friend+[1]", &mut g).unwrap();

        let bytes = encode_snapshot(&g, &store, 7);
        let path = PathBuf::from("snap-test.snap");
        let (g2, store2, covered) = decode_snapshot(&path, &bytes).unwrap();
        assert_eq!(covered, 7);
        assert_eq!(g2.num_nodes(), 2);
        assert_eq!(g2.num_edges(), 1);
        assert_eq!(store2.num_resources(), 1);
        assert_eq!(store2.owner_of(rid).unwrap(), a);
        assert_eq!(store2.rules_for(rid).len(), 1);
    }

    #[test]
    fn snapshot_section_bitflip_is_typed() {
        let mut g = SocialGraph::new();
        g.add_node("Alice");
        let bytes = encode_snapshot(&g, &PolicyStore::new(), 0);
        let path = PathBuf::from("snap-test.snap");
        // Flip one bit in every byte position past the header: each
        // must surface as a typed error (checksum, version, …), never
        // a panic or a silent success.
        for i in 0..bytes.len() {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 0x10;
            assert!(
                decode_snapshot(&path, &corrupt).is_err(),
                "bit flip at byte {i} must not decode"
            );
        }
    }

    #[test]
    fn unknown_snapshot_version_is_typed() {
        let g = SocialGraph::new();
        let mut bytes = encode_snapshot(&g, &PolicyStore::new(), 0);
        bytes[8] = 99;
        let err = decode_snapshot(&PathBuf::from("x.snap"), &bytes).unwrap_err();
        assert!(matches!(
            err,
            DurabilityError::UnsupportedVersion { found: 99, .. }
        ));
    }
}
