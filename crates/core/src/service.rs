//! The deployment-agnostic serving API: one request/response
//! vocabulary over every enforcement backend.
//!
//! The paper's model is a single contract — a path-expression rule
//! evaluated as an ordered label-constraint reachability query — but
//! the repo grew two serving facades with drifting surfaces:
//! [`AccessControlSystem`] (one epoch-published graph, pluggable
//! engines) and [`ShardedSystem`] (N hash-partitioned shards with
//! cross-shard fixpoints). This module is the seam that makes the
//! backends interchangeable:
//!
//! * [`AccessService`] — the **object-safe read surface** (`check`,
//!   `check_batch`, `audience`, `audience_batch`, `explain`, …) every
//!   backend implements. Callers hold a `&dyn AccessService` and never
//!   learn which deployment answers them.
//! * [`MutateService`] — the `&mut self` write surface
//!   (`add_user` / `add_relationship` / `add_resource` / `add_rule`).
//! * [`ReadRequest`] / [`ReadBatch`] / [`AccessResponse`] — a uniform
//!   request/response vocabulary carrying decisions, audiences,
//!   structured witnesses and per-read [`ReadStats`].
//! * [`Deployment`] — the builder that constructs either backend from
//!   one config: [`Deployment::single`] wraps an [`EngineChoice`],
//!   [`Deployment::sharded`] a shard count + placement seed (or a full
//!   [`ShardAssignment`] via [`Deployment::sharded_with`]).
//! * [`ServiceInstance`] — the constructed backend, usable as both
//!   traits or narrowed with [`ServiceInstance::reads`] /
//!   [`ServiceInstance::writes`].
//!
//! The differential harnesses compare any two `&dyn AccessService`
//! implementations, so a future backend (e.g. the ROADMAP's
//! distributed-transport shards) is testable against the existing ones
//! the day it implements the trait.
//!
//! ```
//! use socialreach_core::service::{AccessService, Deployment, MutateService};
//! use socialreach_core::{Decision, EngineChoice};
//!
//! // One config line decides the deployment; nothing below changes.
//! let mut svc = Deployment::single(EngineChoice::Online).build();
//! // let mut svc = Deployment::sharded(4, 7).build();
//!
//! let alice = svc.add_user("Alice");
//! let bob = svc.add_user("Bob");
//! svc.add_relationship(alice, "friend", bob);
//! let album = svc.add_resource(alice);
//! svc.add_rule(album, "friend+[1,2]").unwrap();
//!
//! let reads = svc.reads(); // &dyn AccessService
//! assert_eq!(reads.check(album, bob).unwrap(), Decision::Grant);
//! assert_eq!(reads.audience(album).unwrap(), vec![alice, bob]);
//! ```

use crate::error::EvalError;
use crate::policy::{Decision, ResourceId};
use crate::remote::{NetworkedSystem, ShardAddr};
use crate::sharded::ShardedSystem;
use crate::system::{AccessControlSystem, EngineChoice};
use socialreach_graph::shard::ShardAssignment;
use socialreach_graph::{AttrValue, LabelId, NodeId, SocialGraph};

// ---------------------------------------------------------------------
// Uniform read statistics
// ---------------------------------------------------------------------

/// Uniform work census of a read, comparable across deployments (zero
/// where a backend has nothing to report — the same convention as
/// [`crate::EvalStats`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ReadStats {
    /// Distinct `(owner, path)` conditions evaluated after bundle-level
    /// dedup.
    pub conditions: usize,
    /// Shared traversal passes run — one per path-template group ×
    /// 64-condition mask chunk on both deployments (multi-source mask
    /// BFS passes on a single graph, masked fixpoints on a sharded
    /// one), so the column is comparable across backends.
    pub traversals: usize,
    /// Fixpoint rounds across those traversals. Equals `traversals` on
    /// a single graph (one pass is one "round"); on a sharded
    /// deployment it counts the cross-shard round-trips the read paid.
    pub rounds: usize,
    /// Product states expanded by the engines (cumulative across
    /// shards; zero for the join-index engine, which counts work in
    /// [`crate::EvalStats::line_queries`] instead).
    pub states_expanded: usize,
    /// Boundary states routed between shards (always zero on
    /// single-graph deployments — a useful sanity probe for tests).
    pub exported_states: usize,
    /// Automaton layers of the shared-prefix bundle plan
    /// ([`crate::query::BundlePlan`]) the batched read compiled — each
    /// shared prefix counted **once**. Zero when no bundle plan was
    /// compiled (targeted reads, empty bundles).
    pub plan_states: usize,
    /// Automaton layers the same bundle occupies with one chain per
    /// condition (no sharing). `1 − plan_states / expr_states` is the
    /// bundle's shared-prefix hit rate — the telemetry
    /// [`crate::planner::PlannedService`] learns from.
    pub expr_states: usize,
}

impl ReadStats {
    /// Element-wise accumulation.
    pub fn absorb(&mut self, other: &ReadStats) {
        self.conditions += other.conditions;
        self.traversals += other.traversals;
        self.rounds += other.rounds;
        self.states_expanded += other.states_expanded;
        self.exported_states += other.exported_states;
        self.plan_states += other.plan_states;
        self.expr_states += other.expr_states;
    }

    /// The bundle's shared-prefix hit rate in `[0, 1]` — the fraction
    /// of per-condition automaton layers the compiled plan elided —
    /// or `None` when no plan census was recorded.
    pub fn prefix_share(&self) -> Option<f64> {
        if self.expr_states == 0 {
            return None;
        }
        Some(1.0 - self.plan_states as f64 / self.expr_states as f64)
    }
}

// ---------------------------------------------------------------------
// Witnesses
// ---------------------------------------------------------------------

/// One hop of a witness walk, in deployment-global member ids.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WalkHop {
    /// Global id of the edge's source member.
    pub src: NodeId,
    /// Global id of the edge's target member.
    pub dst: NodeId,
    /// Relationship type.
    pub label: LabelId,
    /// Whether the hop traverses the edge along its orientation.
    pub forward: bool,
}

impl WalkHop {
    /// The member the hop departs from.
    pub fn from(&self) -> NodeId {
        if self.forward {
            self.src
        } else {
            self.dst
        }
    }

    /// The member the hop arrives at.
    pub fn to(&self) -> NodeId {
        if self.forward {
            self.dst
        } else {
            self.src
        }
    }
}

/// A witness walk for one satisfied access condition: real edges from
/// the condition owner to the requester, in walk order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WitnessWalk {
    /// The condition owner the walk starts from.
    pub start: NodeId,
    /// The hops, chaining `start ⇝ requester` (empty when the
    /// requester *is* the condition owner of an empty path).
    pub hops: Vec<WalkHop>,
}

/// Why a request was granted: the structured form every backend
/// produces, renderable to the human-readable walk strings with
/// [`Explanation::render`] and replayable through the path automaton
/// by the conformance suites.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Explanation {
    /// The requester owns the resource.
    Ownership {
        /// The owning member.
        owner: NodeId,
    },
    /// Some rule granted: one witness walk per condition of the first
    /// granting rule.
    Rule {
        /// The per-condition walks, in rule-condition order.
        walks: Vec<WitnessWalk>,
    },
}

impl Explanation {
    /// Renders the explanation as human-readable lines (`"Alice
    /// -friend-> Bob"` walks, or the ownership sentence), resolving
    /// names through the service that produced it.
    pub fn render<S: AccessService + ?Sized>(&self, svc: &S) -> Vec<String> {
        match self {
            Explanation::Ownership { owner } => {
                vec![format!("{} owns the resource", svc.member_name(*owner))]
            }
            Explanation::Rule { walks } => walks
                .iter()
                .map(|walk| {
                    let mut line = vec![svc.member_name(walk.start).to_owned()];
                    for hop in &walk.hops {
                        let label = svc.label_name(hop.label);
                        line.push(if hop.forward {
                            format!("-{label}->")
                        } else {
                            format!("<-{label}-")
                        });
                        line.push(svc.member_name(hop.to()).to_owned());
                    }
                    line.join(" ")
                })
                .collect(),
        }
    }
}

// ---------------------------------------------------------------------
// Request / response vocabulary
// ---------------------------------------------------------------------

/// One read, in the shared deployment-agnostic vocabulary.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReadRequest {
    /// Decide whether `requester` may access `resource`.
    Check {
        /// The requested resource.
        resource: ResourceId,
        /// Who is asking.
        requester: NodeId,
    },
    /// Materialize the full audience of `resource`.
    Audience {
        /// The resource whose audience to materialize.
        resource: ResourceId,
    },
    /// Decide and, when granted, explain with witness walks.
    Explain {
        /// The requested resource.
        resource: ResourceId,
        /// Who is asking.
        requester: NodeId,
    },
}

/// A batch of reads evaluated together (backends answer every request
/// of one batch against a coherent snapshot state, amortizing shared
/// work — condition dedup, multi-source traversal — across the batch).
#[derive(Clone, Debug, Default)]
pub struct ReadBatch {
    /// The reads, answered in order.
    pub reads: Vec<ReadRequest>,
    /// Worker-thread hint for backends that fan a batch out per
    /// request (sharded deployments parallelize per fixpoint round
    /// across shards instead and ignore it). `0` behaves as `1`.
    pub threads: usize,
}

impl ReadBatch {
    /// An empty batch with the default thread hint.
    pub fn new() -> Self {
        ReadBatch::default()
    }

    /// Appends a check read.
    pub fn check(mut self, resource: ResourceId, requester: NodeId) -> Self {
        self.reads.push(ReadRequest::Check {
            resource,
            requester,
        });
        self
    }

    /// Appends an audience read.
    pub fn audience(mut self, resource: ResourceId) -> Self {
        self.reads.push(ReadRequest::Audience { resource });
        self
    }

    /// Appends an explain read.
    pub fn explain(mut self, resource: ResourceId, requester: NodeId) -> Self {
        self.reads.push(ReadRequest::Explain {
            resource,
            requester,
        });
        self
    }
}

/// The response to one [`ReadRequest`]: exactly the fields the request
/// kind implies are populated, plus the read's share of the batch work
/// census (shared traversal work is attributed to the first read that
/// triggered it and zero on the rest, so summing responses stays
/// truthful — the [`crate::AccessEngine`] convention).
#[derive(Clone, Debug, Default)]
pub struct AccessResponse {
    /// The decision (`Check` and `Explain` reads).
    pub decision: Option<Decision>,
    /// The materialized audience, sorted (`Audience` reads).
    pub audience: Option<Vec<NodeId>>,
    /// The structured witness walks (`Explain` reads that granted).
    pub explanation: Option<Explanation>,
    /// This read's share of the work census.
    pub stats: ReadStats,
}

// ---------------------------------------------------------------------
// Evaluation-strategy vocabulary (the planner's dispatch alphabet)
// ---------------------------------------------------------------------

/// How a bundle's deduped access conditions are traversed. Both
/// in-tree backends implement both strategies with identical
/// semantics — the choice moves latency, never correctness — which is
/// what lets [`crate::planner::PlannedService`] pick per bundle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum BundleStrategy {
    /// The multi-source masked engine: up to 64 conditions ride one
    /// traversal (the single-graph 64-way mask BFS, or the sharded
    /// masked cross-shard fixpoint). Wins when conditions share path
    /// templates over dense regions.
    Batched,
    /// One independent traversal per deduped condition. Wins on sparse
    /// graphs and low-overlap bundles where mask bookkeeping is pure
    /// overhead.
    PerCondition,
}

/// How a batch of `check` requests is decided.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CheckPlan {
    /// Early-exit targeted evaluation, one per request: stop as soon
    /// as the requester is reached. Wins for small batches over
    /// resources with large audiences.
    Targeted,
    /// Materialize the deduped resources' audiences with the given
    /// bundle strategy and decide each request by (binary-search)
    /// membership. Wins when many requests share few resources.
    Audience(BundleStrategy),
}

// ---------------------------------------------------------------------
// The read trait
// ---------------------------------------------------------------------

/// The deployment-agnostic **read** surface of an access-control
/// serving backend. Object-safe: callers hold `&dyn AccessService`
/// and stay oblivious to whether one epoch-published graph or N
/// shards answer them.
///
/// Required methods are the per-backend primitives; `audience`,
/// `audience_batch`, `explain_lines` and `read_batch` are provided in
/// terms of them, so a backend implements one body per primitive and
/// inherits the rest.
pub trait AccessService: Send + Sync {
    /// Deployment label for logs and benchmark tables
    /// (e.g. `"single(online-bfs)"`, `"sharded(n=4)"`).
    fn describe(&self) -> String;

    /// Number of registered members.
    fn num_members(&self) -> usize;

    /// Number of relationships (each boundary edge counted once on
    /// sharded deployments).
    fn num_relationships(&self) -> usize;

    /// Looks a member up by display name (first registered wins).
    fn resolve_user(&self, name: &str) -> Result<NodeId, EvalError>;

    /// Display name of a member.
    fn member_name(&self, member: NodeId) -> &str;

    /// Display name of a relationship type.
    fn label_name(&self, label: LabelId) -> &str;

    /// Decides whether `requester` may access `resource` (owner always
    /// granted; rules disjoin; conditions within a rule conjoin; no
    /// rules ⇒ private).
    fn check(&self, resource: ResourceId, requester: NodeId) -> Result<Decision, EvalError>;

    /// Decides a batch of requests over one coherent snapshot state;
    /// decisions come back in request order. `threads` is the worker
    /// hint of [`ReadBatch::threads`].
    fn check_batch(
        &self,
        requests: &[(ResourceId, NodeId)],
        threads: usize,
    ) -> Result<Vec<Decision>, EvalError>;

    /// Audiences of a whole bundle of resources in `rids` order, plus
    /// the bundle's uniform work census. This is the primitive the
    /// audience reads build on: backends amortize shared traversal
    /// across the bundle's deduped conditions here.
    fn audience_batch_with_stats(
        &self,
        rids: &[ResourceId],
    ) -> Result<(Vec<Vec<NodeId>>, ReadStats), EvalError>;

    /// Explains a grant with structured witness walks, or `None` when
    /// access is denied. Render with [`Explanation::render`] or
    /// [`AccessService::explain_lines`]; replay through the path
    /// automaton in conformance tests.
    fn explain(
        &self,
        resource: ResourceId,
        requester: NodeId,
    ) -> Result<Option<Explanation>, EvalError>;

    /// Decision-cache statistics `(hits, misses)`.
    fn cache_stats(&self) -> (u64, u64);

    /// Whether the `*_with_stats` reads report **real** work censuses.
    /// Backends that override [`AccessService::check_with_stats`],
    /// [`AccessService::explain_with_stats`] and
    /// [`AccessService::check_batch_with_stats`] with live counters
    /// must also override this to `true`; the inherited defaults
    /// report all-zero censuses that would silently starve any
    /// telemetry consumer (the adaptive planner learns nothing from
    /// zeros). Both in-tree backends support stats.
    fn stats_supported(&self) -> bool {
        false
    }

    /// [`AccessService::check`] plus the read's work census. Backends
    /// override this with real counters (the default reports zeros);
    /// decision-cache hits and the owner fast path legitimately report
    /// an all-zero census — no traversal ran.
    fn check_with_stats(
        &self,
        resource: ResourceId,
        requester: NodeId,
    ) -> Result<(Decision, ReadStats), EvalError> {
        debug_assert!(
            !self.stats_supported(),
            "{}: stats_supported() is true but check_with_stats inherited the zero-census default",
            self.describe()
        );
        Ok((self.check(resource, requester)?, ReadStats::default()))
    }

    /// [`AccessService::check_batch`] plus the batch's cumulative work
    /// census. Backends override this with real counters.
    fn check_batch_with_stats(
        &self,
        requests: &[(ResourceId, NodeId)],
        threads: usize,
    ) -> Result<(Vec<Decision>, ReadStats), EvalError> {
        debug_assert!(
            !self.stats_supported(),
            "{}: stats_supported() is true but check_batch_with_stats inherited the zero-census default",
            self.describe()
        );
        Ok((self.check_batch(requests, threads)?, ReadStats::default()))
    }

    /// [`AccessService::explain`] plus the read's work census.
    /// Backends override this with real counters.
    fn explain_with_stats(
        &self,
        resource: ResourceId,
        requester: NodeId,
    ) -> Result<(Option<Explanation>, ReadStats), EvalError> {
        debug_assert!(
            !self.stats_supported(),
            "{}: stats_supported() is true but explain_with_stats inherited the zero-census default",
            self.describe()
        );
        Ok((self.explain(resource, requester)?, ReadStats::default()))
    }

    /// [`AccessService::audience_batch_with_stats`] with the bundle
    /// strategy **forced** instead of backend-chosen. Backends with
    /// interchangeable engines override both arms (the planner's
    /// dispatch seam); the default serves its one path regardless of
    /// the hint, which is always semantically correct.
    fn audience_batch_forced(
        &self,
        rids: &[ResourceId],
        strategy: BundleStrategy,
    ) -> Result<(Vec<Vec<NodeId>>, ReadStats), EvalError> {
        let _ = strategy;
        self.audience_batch_with_stats(rids)
    }

    /// [`AccessService::check_batch_with_stats`] with the decision
    /// route **forced** instead of backend-chosen. Backends with both
    /// a targeted path and an audience-membership path override; the
    /// default serves its one path regardless of the hint.
    fn check_batch_forced(
        &self,
        requests: &[(ResourceId, NodeId)],
        threads: usize,
        plan: CheckPlan,
    ) -> Result<(Vec<Decision>, ReadStats), EvalError> {
        let _ = plan;
        self.check_batch_with_stats(requests, threads)
    }

    /// Materializes the audiences of a bundle of **ad-hoc queries**,
    /// in request order: each `(owner, text)` pair is parsed with
    /// [`crate::query::parse_policy`] (openCypher-flavored `MATCH`
    /// syntax or classic path syntax) and evaluated as a raw access
    /// condition anchored at `owner` — the sorted members some
    /// matching walk reaches. No resource or rule is registered;
    /// parsing is read-only against the deployment's vocabulary, and a
    /// query mentioning a relationship type or attribute the graph has
    /// never seen has an empty audience. Backends share traversal
    /// across the bundle exactly as registered-rule bundles do.
    fn query_audience_bundle(
        &self,
        queries: &[(NodeId, &str)],
    ) -> Result<Vec<Vec<NodeId>>, EvalError>;

    /// [`AccessService::query_audience_bundle`] for one query.
    fn query_audience(&self, owner: NodeId, text: &str) -> Result<Vec<NodeId>, EvalError> {
        Ok(self
            .query_audience_bundle(&[(owner, text)])?
            .pop()
            .expect("one audience per query"))
    }

    /// The full audience of one resource (global member ids, sorted).
    fn audience(&self, resource: ResourceId) -> Result<Vec<NodeId>, EvalError> {
        Ok(self
            .audience_batch(std::slice::from_ref(&resource))?
            .pop()
            .expect("one audience per requested resource"))
    }

    /// Audiences of a whole bundle of resources, in `rids` order.
    fn audience_batch(&self, rids: &[ResourceId]) -> Result<Vec<Vec<NodeId>>, EvalError> {
        Ok(self.audience_batch_with_stats(rids)?.0)
    }

    /// [`AccessService::explain`], rendered to the human-readable walk
    /// lines the CLI and examples print.
    fn explain_lines(
        &self,
        resource: ResourceId,
        requester: NodeId,
    ) -> Result<Option<Vec<String>>, EvalError> {
        Ok(self.explain(resource, requester)?.map(|e| e.render(self)))
    }

    /// Evaluates a heterogeneous batch of reads, responses in request
    /// order. Check reads of the batch are decided together through
    /// [`AccessService::check_batch_with_stats`] (whose census is
    /// attributed to the first check read); audience reads together
    /// through [`AccessService::audience_batch_with_stats`] (census on
    /// the first audience read); explains run targeted, each carrying
    /// its own census.
    fn read_batch(&self, batch: &ReadBatch) -> Result<Vec<AccessResponse>, EvalError> {
        let mut responses: Vec<AccessResponse> = (0..batch.reads.len())
            .map(|_| AccessResponse::default())
            .collect();
        let mut checks: Vec<(usize, (ResourceId, NodeId))> = Vec::new();
        let mut audiences: Vec<(usize, ResourceId)> = Vec::new();
        for (i, read) in batch.reads.iter().enumerate() {
            match *read {
                ReadRequest::Check {
                    resource,
                    requester,
                } => checks.push((i, (resource, requester))),
                ReadRequest::Audience { resource } => audiences.push((i, resource)),
                ReadRequest::Explain {
                    resource,
                    requester,
                } => {
                    let (explanation, stats) = self.explain_with_stats(resource, requester)?;
                    responses[i].decision = Some(if explanation.is_some() {
                        Decision::Grant
                    } else {
                        Decision::Deny
                    });
                    responses[i].explanation = explanation;
                    responses[i].stats = stats;
                }
            }
        }
        if !checks.is_empty() {
            let requests: Vec<(ResourceId, NodeId)> = checks.iter().map(|&(_, r)| r).collect();
            let (decisions, stats) =
                self.check_batch_with_stats(&requests, batch.threads.max(1))?;
            for (k, (&(i, _), d)) in checks.iter().zip(decisions).enumerate() {
                responses[i].decision = Some(d);
                if k == 0 {
                    responses[i].stats = stats;
                }
            }
        }
        if !audiences.is_empty() {
            let rids: Vec<ResourceId> = audiences.iter().map(|&(_, r)| r).collect();
            let (results, stats) = self.audience_batch_with_stats(&rids)?;
            for (k, (&(i, _), audience)) in audiences.iter().zip(results).enumerate() {
                responses[i].audience = Some(audience);
                if k == 0 {
                    responses[i].stats = stats;
                }
            }
        }
        Ok(responses)
    }
}

// ---------------------------------------------------------------------
// The write trait
// ---------------------------------------------------------------------

/// The deployment-agnostic **write** surface: every mutation takes
/// `&mut self`, guaranteeing exclusivity against the lock-free `&self`
/// readers of [`AccessService`]. Backends only *stale* derived state
/// on mutation and republish incrementally on the next read.
pub trait MutateService {
    /// Registers a member.
    fn add_user(&mut self, name: &str) -> NodeId;

    /// Sets a member attribute (path predicates read these).
    fn set_user_attr(&mut self, user: NodeId, key: &str, value: AttrValue);

    /// Adds a directed relationship.
    fn add_relationship(&mut self, src: NodeId, label: &str, dst: NodeId);

    /// Adds a mutual relationship (both directions), as platforms model
    /// symmetric friendship.
    fn add_mutual_relationship(&mut self, a: NodeId, label: &str, b: NodeId) {
        self.add_relationship(a, label, b);
        self.add_relationship(b, label, a);
    }

    /// Registers a resource owned by `owner`. New resources are
    /// private until a rule is attached.
    fn add_resource(&mut self, owner: NodeId) -> ResourceId;

    /// Attaches a rule granting access along `path_text`
    /// (e.g. `"friend+[1,2]/colleague+[1]"`); repeated rules disjoin.
    fn add_rule(&mut self, resource: ResourceId, path_text: &str) -> Result<(), EvalError>;
}

// ---------------------------------------------------------------------
// Deployment builder
// ---------------------------------------------------------------------

/// One config describing *which* backend serves: the deployment is the
/// only place the backend choice appears; everything downstream holds
/// trait objects.
///
/// Three constructions cover every serving shape:
///
/// * [`Deployment::build`] — an empty in-memory backend;
/// * [`Deployment::from_graph`] — a backend over an existing graph and
///   policy store (ids preserved);
/// * [`Deployment::durable`] (in [`crate::durability`]) — a persistent
///   backend in a data directory: every mutation is write-ahead
///   logged, [`crate::DurableService::snapshot`] checkpoints, and
///   reopening the same directory recovers newest-valid-snapshot +
///   WAL-suffix-replay. Either backend can sit behind it — durability
///   wraps the deployment, not a particular engine.
///
/// A durable directory also answers **point-in-time audit reads**:
/// [`Deployment::durable_at`] recovers the state as of any logged
/// position into a throwaway backend of this shape,
/// [`Deployment::audience_diff`] compares a resource's audience
/// between two positions, and [`crate::read_history`] enumerates the
/// records themselves — see [`crate::durability`].
#[derive(Clone, Debug)]
pub enum Deployment {
    /// One epoch-published graph behind the chosen evaluation engine.
    Single(EngineChoice),
    /// Members hash-partitioned across shards under the placement.
    Sharded(ShardAssignment),
    /// Shards as **processes**: the same hash placement, but each
    /// shard is a [`crate::remote::ShardServer`] reached over the
    /// CRC-framed wire protocol. The fleet must already be listening
    /// on the spec's endpoints when the deployment is built.
    Networked(NetworkedSpec),
}

/// Endpoints + placement seed of a networked deployment
/// ([`Deployment::Networked`]); one endpoint per shard, shard index =
/// position in `addrs`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct NetworkedSpec {
    /// One listening endpoint per shard.
    pub addrs: Vec<ShardAddr>,
    /// Seed of the hashed placement (must match any in-process twin
    /// the deployment is compared against).
    pub seed: u64,
}

impl Deployment {
    /// A single-graph deployment with an explicit engine choice.
    pub fn single(choice: EngineChoice) -> Self {
        Deployment::Single(choice)
    }

    /// A single-graph deployment evaluating online (good default for
    /// evolving graphs).
    pub fn online() -> Self {
        Deployment::Single(EngineChoice::Online)
    }

    /// A sharded deployment of `shards` hash-partitioned shards
    /// (placement seeded by `seed`).
    pub fn sharded(shards: u32, seed: u64) -> Self {
        Deployment::Sharded(ShardAssignment::hashed(shards, seed))
    }

    /// A sharded deployment with an explicit placement function.
    pub fn sharded_with(assignment: ShardAssignment) -> Self {
        Deployment::Sharded(assignment)
    }

    /// A networked deployment over an already-listening shard fleet
    /// (placement seed 0). Spawn a local fleet with
    /// [`crate::remote::spawn_local_fleet`], or point this at
    /// `socialreach serve-shard` processes.
    pub fn networked(addrs: Vec<ShardAddr>) -> Self {
        Self::networked_with(addrs, 0)
    }

    /// [`Deployment::networked`] with an explicit placement seed.
    pub fn networked_with(addrs: Vec<ShardAddr>, seed: u64) -> Self {
        Deployment::Networked(NetworkedSpec { addrs, seed })
    }

    /// Deployment label for logs and benchmark tables.
    pub fn describe(&self) -> String {
        match self {
            Deployment::Single(choice) => format!("single({choice:?})"),
            Deployment::Sharded(a) => format!("sharded(n={})", a.shards()),
            Deployment::Networked(spec) => format!("networked(n={})", spec.addrs.len()),
        }
    }

    /// Constructs an empty backend for this deployment.
    pub fn build(&self) -> ServiceInstance {
        match self {
            Deployment::Single(choice) => {
                ServiceInstance::Single(AccessControlSystem::new(*choice))
            }
            Deployment::Sharded(a) => {
                ServiceInstance::Sharded(ShardedSystem::with_assignment(a.clone()))
            }
            Deployment::Networked(spec) => ServiceInstance::Networked(
                NetworkedSystem::connect(&spec.addrs, spec.seed)
                    .expect("networked deployment: shard fleet unreachable"),
            ),
        }
    }

    /// Constructs a backend serving an existing graph under an
    /// existing policy store (ids preserved — a store built against
    /// `g` is adopted verbatim). This is the one-liner the benches and
    /// differential harnesses use to stand any backend up over a
    /// shared workload.
    pub fn from_graph(
        &self,
        g: &SocialGraph,
        store: crate::policy::PolicyStore,
    ) -> ServiceInstance {
        match self {
            Deployment::Single(choice) => {
                let mut sys = AccessControlSystem::from_graph(g, *choice);
                sys.adopt_store(store);
                ServiceInstance::Single(sys)
            }
            Deployment::Sharded(a) => {
                let mut sys = ShardedSystem::from_graph(g, a.clone());
                sys.adopt_store(store);
                ServiceInstance::Sharded(sys)
            }
            Deployment::Networked(spec) => ServiceInstance::Networked(
                NetworkedSystem::from_graph(
                    &spec.addrs,
                    ShardAssignment::hashed(spec.addrs.len() as u32, spec.seed),
                    g,
                    store,
                )
                .expect("networked deployment: shard fleet unreachable"),
            ),
        }
    }
}

/// A constructed serving backend. Use it directly (it implements both
/// traits), or narrow to the read/write halves with
/// [`ServiceInstance::reads`] / [`ServiceInstance::writes`].
pub enum ServiceInstance {
    /// One epoch-published graph ([`AccessControlSystem`]).
    Single(AccessControlSystem),
    /// Hash-partitioned shards ([`ShardedSystem`]).
    Sharded(ShardedSystem),
    /// Remote shard processes behind a router ([`NetworkedSystem`]).
    Networked(NetworkedSystem),
}

impl ServiceInstance {
    /// This backend as a deployment-agnostic read service.
    pub fn reads(&self) -> &dyn AccessService {
        match self {
            ServiceInstance::Single(s) => s,
            ServiceInstance::Sharded(s) => s,
            ServiceInstance::Networked(s) => s,
        }
    }

    /// This backend as a deployment-agnostic write service.
    pub fn writes(&mut self) -> &mut dyn MutateService {
        match self {
            ServiceInstance::Single(s) => s,
            ServiceInstance::Sharded(s) => s,
            ServiceInstance::Networked(s) => s,
        }
    }

    /// The wrapped single-graph system, if this deployment is one.
    pub fn as_single(&self) -> Option<&AccessControlSystem> {
        match self {
            ServiceInstance::Single(s) => Some(s),
            _ => None,
        }
    }

    /// The wrapped sharded system, if this deployment is one.
    pub fn as_sharded(&self) -> Option<&ShardedSystem> {
        match self {
            ServiceInstance::Sharded(s) => Some(s),
            _ => None,
        }
    }

    /// The wrapped networked router, if this deployment is one.
    pub fn as_networked(&self) -> Option<&NetworkedSystem> {
        match self {
            ServiceInstance::Networked(s) => Some(s),
            _ => None,
        }
    }

    /// Mutable access to the wrapped networked router (retargeting a
    /// restarted shard takes `&self`; shrinking the read timeout takes
    /// `&mut self`).
    pub fn as_networked_mut(&mut self) -> Option<&mut NetworkedSystem> {
        match self {
            ServiceInstance::Networked(s) => Some(s),
            _ => None,
        }
    }
}

impl AccessService for ServiceInstance {
    fn describe(&self) -> String {
        self.reads().describe()
    }

    fn num_members(&self) -> usize {
        self.reads().num_members()
    }

    fn num_relationships(&self) -> usize {
        self.reads().num_relationships()
    }

    fn resolve_user(&self, name: &str) -> Result<NodeId, EvalError> {
        self.reads().resolve_user(name)
    }

    fn member_name(&self, member: NodeId) -> &str {
        match self {
            ServiceInstance::Single(s) => s.member_name(member),
            ServiceInstance::Sharded(s) => AccessService::member_name(s, member),
            ServiceInstance::Networked(s) => AccessService::member_name(s, member),
        }
    }

    fn label_name(&self, label: LabelId) -> &str {
        match self {
            ServiceInstance::Single(s) => AccessService::label_name(s, label),
            ServiceInstance::Sharded(s) => AccessService::label_name(s, label),
            ServiceInstance::Networked(s) => AccessService::label_name(s, label),
        }
    }

    fn check(&self, resource: ResourceId, requester: NodeId) -> Result<Decision, EvalError> {
        self.reads().check(resource, requester)
    }

    fn check_batch(
        &self,
        requests: &[(ResourceId, NodeId)],
        threads: usize,
    ) -> Result<Vec<Decision>, EvalError> {
        self.reads().check_batch(requests, threads)
    }

    fn audience_batch_with_stats(
        &self,
        rids: &[ResourceId],
    ) -> Result<(Vec<Vec<NodeId>>, ReadStats), EvalError> {
        self.reads().audience_batch_with_stats(rids)
    }

    fn explain(
        &self,
        resource: ResourceId,
        requester: NodeId,
    ) -> Result<Option<Explanation>, EvalError> {
        self.reads().explain(resource, requester)
    }

    fn cache_stats(&self) -> (u64, u64) {
        self.reads().cache_stats()
    }

    fn check_with_stats(
        &self,
        resource: ResourceId,
        requester: NodeId,
    ) -> Result<(Decision, ReadStats), EvalError> {
        self.reads().check_with_stats(resource, requester)
    }

    fn check_batch_with_stats(
        &self,
        requests: &[(ResourceId, NodeId)],
        threads: usize,
    ) -> Result<(Vec<Decision>, ReadStats), EvalError> {
        self.reads().check_batch_with_stats(requests, threads)
    }

    fn explain_with_stats(
        &self,
        resource: ResourceId,
        requester: NodeId,
    ) -> Result<(Option<Explanation>, ReadStats), EvalError> {
        self.reads().explain_with_stats(resource, requester)
    }

    fn stats_supported(&self) -> bool {
        self.reads().stats_supported()
    }

    fn audience_batch_forced(
        &self,
        rids: &[ResourceId],
        strategy: BundleStrategy,
    ) -> Result<(Vec<Vec<NodeId>>, ReadStats), EvalError> {
        self.reads().audience_batch_forced(rids, strategy)
    }

    fn check_batch_forced(
        &self,
        requests: &[(ResourceId, NodeId)],
        threads: usize,
        plan: CheckPlan,
    ) -> Result<(Vec<Decision>, ReadStats), EvalError> {
        self.reads().check_batch_forced(requests, threads, plan)
    }

    fn query_audience_bundle(
        &self,
        queries: &[(NodeId, &str)],
    ) -> Result<Vec<Vec<NodeId>>, EvalError> {
        self.reads().query_audience_bundle(queries)
    }
}

impl MutateService for ServiceInstance {
    fn add_user(&mut self, name: &str) -> NodeId {
        self.writes().add_user(name)
    }

    fn set_user_attr(&mut self, user: NodeId, key: &str, value: AttrValue) {
        self.writes().set_user_attr(user, key, value);
    }

    fn add_relationship(&mut self, src: NodeId, label: &str, dst: NodeId) {
        self.writes().add_relationship(src, label, dst);
    }

    fn add_resource(&mut self, owner: NodeId) -> ResourceId {
        self.writes().add_resource(owner)
    }

    fn add_rule(&mut self, resource: ResourceId, path_text: &str) -> Result<(), EvalError> {
        self.writes().add_rule(resource, path_text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn populate(svc: &mut dyn MutateService) -> (Vec<NodeId>, ResourceId) {
        let alice = svc.add_user("Alice");
        let bob = svc.add_user("Bob");
        let carol = svc.add_user("Carol");
        let dave = svc.add_user("Dave");
        svc.add_relationship(alice, "friend", bob);
        svc.add_relationship(bob, "friend", carol);
        svc.add_relationship(carol, "colleague", dave);
        let rid = svc.add_resource(alice);
        svc.add_rule(rid, "friend+[1,2]").unwrap();
        (vec![alice, bob, carol, dave], rid)
    }

    #[test]
    fn both_deployments_serve_the_same_script() {
        for deployment in [
            Deployment::online(),
            Deployment::single(EngineChoice::JoinIndex(
                crate::joinengine::JoinEngineConfig::default(),
            )),
            Deployment::sharded(3, 7),
        ] {
            let mut svc = deployment.build();
            let (members, rid) = populate(svc.writes());
            let reads = svc.reads();
            assert_eq!(reads.num_members(), 4, "{}", deployment.describe());
            assert_eq!(reads.num_relationships(), 3);
            assert_eq!(reads.resolve_user("Carol").unwrap(), members[2]);
            assert_eq!(reads.check(rid, members[1]).unwrap(), Decision::Grant);
            assert_eq!(reads.check(rid, members[3]).unwrap(), Decision::Deny);
            assert_eq!(
                reads.audience(rid).unwrap(),
                vec![members[0], members[1], members[2]],
                "{}",
                deployment.describe()
            );
        }
    }

    #[test]
    fn read_batch_mixes_request_kinds() {
        let mut svc = Deployment::sharded(2, 5).build();
        let (members, rid) = populate(svc.writes());
        let batch = ReadBatch::new()
            .check(rid, members[2])
            .audience(rid)
            .explain(rid, members[1])
            .check(rid, members[3]);
        let responses = svc.reads().read_batch(&batch).unwrap();
        assert_eq!(responses.len(), 4);
        assert_eq!(responses[0].decision, Some(Decision::Grant));
        assert_eq!(
            responses[1].audience.as_deref(),
            Some(&[members[0], members[1], members[2]][..])
        );
        assert!(responses[1].stats.conditions > 0, "census attributed");
        assert_eq!(responses[2].decision, Some(Decision::Grant));
        let lines = responses[2]
            .explanation
            .as_ref()
            .expect("granted explain carries walks")
            .render(svc.reads());
        assert_eq!(lines, vec!["Alice -friend-> Bob".to_owned()]);
        assert_eq!(responses[3].decision, Some(Decision::Deny));
    }

    #[test]
    fn explanation_rendering_matches_the_legacy_strings() {
        let mut svc = Deployment::online().build();
        let (members, rid) = populate(svc.writes());
        let reads = svc.reads();
        assert_eq!(
            reads.explain_lines(rid, members[0]).unwrap().unwrap(),
            vec!["Alice owns the resource".to_owned()]
        );
        assert_eq!(
            reads.explain_lines(rid, members[2]).unwrap().unwrap(),
            vec!["Alice -friend-> Bob -friend-> Carol".to_owned()]
        );
        assert_eq!(reads.explain_lines(rid, members[3]).unwrap(), None);
    }

    #[test]
    fn query_audience_is_deployment_agnostic() {
        for deployment in [Deployment::online(), Deployment::sharded(3, 7)] {
            let mut svc = deployment.build();
            let (members, _) = populate(svc.writes());
            let reads = svc.reads();
            let a = reads
                .query_audience(members[0], "MATCH (owner)-[:friend*1..2]->(v)")
                .unwrap();
            assert_eq!(a, vec![members[1], members[2]], "{}", deployment.describe());
            assert_eq!(
                a,
                reads.query_audience(members[0], "friend+[1,2]").unwrap(),
                "both syntaxes answer alike"
            );
            assert!(
                reads
                    .query_audience(members[0], "MATCH (o)-[:stranger]->(v)")
                    .unwrap()
                    .is_empty(),
                "unknown relationship type has an empty audience"
            );
            let bundled = reads
                .query_audience_bundle(&[
                    (members[0], "friend+[1]"),
                    (members[1], "MATCH (o)-[:friend]->(v)-[:colleague]->(w)"),
                    (members[2], "MATCH (o)"),
                ])
                .unwrap();
            assert_eq!(bundled[0], vec![members[1]]);
            assert_eq!(bundled[1], vec![members[3]]);
            assert_eq!(bundled[2], vec![members[2]], "empty path yields the owner");
        }
    }

    #[test]
    fn deployment_describe_names_the_backend() {
        assert!(Deployment::online().describe().starts_with("single("));
        assert_eq!(Deployment::sharded(4, 0).describe(), "sharded(n=4)");
    }
}
