//! Access rules and the policy store — §2, Definitions 2 and 3.
//!
//! * An **access condition** `(o, p)` names the resource owner `o` and a
//!   path expression `p`; a requester satisfies it when a walk from `o`
//!   to the requester matches `p`.
//! * An **access rule** `(rid, ACS)` attaches a *set* of access
//!   conditions to a resource; the rule is satisfied when **all** of its
//!   conditions hold (§2: *"In order to be valid, an access rule should
//!   have all its access conditions validated"*).
//! * A resource may carry several rules; access is granted when **at
//!   least one** rule is fully satisfied (rules are alternative
//!   audiences — the paper does not legislate multi-rule combination, so
//!   we adopt the permissive-disjunction reading and document it).
//! * With **no** rules a resource is private: only its owner may access
//!   it (fail closed). The owner is always granted access to their own
//!   resource.

use crate::error::EvalError;
use crate::path::{parse_path, PathExpr};
use serde::{Deserialize, Serialize};
use socialreach_graph::{NodeId, SocialGraph};
use std::collections::HashMap;

/// Identifier of a shared resource (photo, note, album, …).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ResourceId(pub u64);

/// The outcome of an access check.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Decision {
    /// The requester may access the resource.
    Grant,
    /// The requester may not access the resource.
    Deny,
}

impl Decision {
    /// Convenience predicate.
    pub fn is_granted(self) -> bool {
        matches!(self, Decision::Grant)
    }
}

/// An access condition `(o, p)` — Definition 3.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AccessCondition {
    /// The starting node (resource owner).
    pub owner: NodeId,
    /// The reachability constraint.
    pub path: PathExpr,
}

impl AccessCondition {
    /// Parses the paper's combined notation `Owner/path…`, e.g.
    /// `Alice/friend+[1,2]/colleague+[1]` (Figure 2): the first segment
    /// is a node name, the remainder a path expression.
    pub fn parse(text: &str, g: &mut SocialGraph) -> Result<AccessCondition, EvalError> {
        let trimmed = text.trim_start();
        let sep = trimmed.find('/').ok_or_else(|| {
            crate::error::ParseError::new(text.len(), "expected 'Owner/path…'", text)
        })?;
        let owner_name = trimmed[..sep].trim();
        let owner = g.require_node(owner_name)?;
        let path = parse_path(&trimmed[sep + 1..], g.vocab_mut())?;
        Ok(AccessCondition { owner, path })
    }
}

/// An access rule `(rid, ACS)` — Definition 2.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AccessRule {
    /// The governed resource.
    pub resource: ResourceId,
    /// The conjunction of conditions a requester must satisfy.
    pub conditions: Vec<AccessCondition>,
}

/// Stores resource ownership and access rules.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct PolicyStore {
    owners: HashMap<u64, NodeId>,
    rules: HashMap<u64, Vec<AccessRule>>,
    next_resource: u64,
}

impl PolicyStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a new resource owned by `owner`, returning its id.
    pub fn register_resource(&mut self, owner: NodeId) -> ResourceId {
        let rid = ResourceId(self.next_resource);
        self.next_resource += 1;
        self.owners.insert(rid.0, owner);
        self.rules.entry(rid.0).or_default();
        rid
    }

    /// Owner of a resource.
    pub fn owner_of(&self, rid: ResourceId) -> Result<NodeId, EvalError> {
        self.owners
            .get(&rid.0)
            .copied()
            .ok_or(EvalError::UnknownResource(rid.0))
    }

    /// Attaches a rule to its resource.
    ///
    /// # Errors
    /// Fails when the rule's resource was never registered.
    pub fn add_rule(&mut self, rule: AccessRule) -> Result<(), EvalError> {
        if !self.owners.contains_key(&rule.resource.0) {
            return Err(EvalError::UnknownResource(rule.resource.0));
        }
        self.rules
            .get_mut(&rule.resource.0)
            .expect("rules entry created at registration")
            .push(rule);
        Ok(())
    }

    /// Convenience: adds a single-condition rule whose owner is the
    /// resource owner and whose path is parsed from `path_text` — in
    /// either syntax, classic path notation or the openCypher-flavored
    /// `MATCH` grammar ([`crate::query::parse_policy`]).
    pub fn allow(
        &mut self,
        rid: ResourceId,
        path_text: &str,
        g: &mut SocialGraph,
    ) -> Result<(), EvalError> {
        let owner = self.owner_of(rid)?;
        let path = crate::query::parse_policy(path_text, g.vocab_mut())?;
        self.add_rule(AccessRule {
            resource: rid,
            conditions: vec![AccessCondition { owner, path }],
        })
    }

    /// Rules attached to a resource (empty slice for private resources).
    pub fn rules_for(&self, rid: ResourceId) -> &[AccessRule] {
        self.rules.get(&rid.0).map(Vec::as_slice).unwrap_or(&[])
    }

    /// All registered resources.
    pub fn resources(&self) -> impl Iterator<Item = (ResourceId, NodeId)> + '_ {
        self.owners.iter().map(|(&r, &o)| (ResourceId(r), o))
    }

    /// Number of registered resources.
    pub fn num_resources(&self) -> usize {
        self.owners.len()
    }

    /// Total number of rules.
    pub fn num_rules(&self) -> usize {
        self.rules.values().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph() -> SocialGraph {
        let mut g = SocialGraph::new();
        let a = g.add_node("Alice");
        let b = g.add_node("Bob");
        g.connect(a, "friend", b);
        g
    }

    #[test]
    fn register_and_lookup_resources() {
        let mut store = PolicyStore::new();
        let g = graph();
        let alice = g.node_by_name("Alice").unwrap();
        let r1 = store.register_resource(alice);
        let r2 = store.register_resource(alice);
        assert_ne!(r1, r2);
        assert_eq!(store.owner_of(r1).unwrap(), alice);
        assert_eq!(store.num_resources(), 2);
        assert!(store.owner_of(ResourceId(99)).is_err());
        assert!(store.rules_for(r1).is_empty(), "new resources are private");
    }

    #[test]
    fn allow_parses_and_attaches_a_rule() {
        let mut store = PolicyStore::new();
        let mut g = graph();
        let alice = g.node_by_name("Alice").unwrap();
        let rid = store.register_resource(alice);
        store.allow(rid, "friend+[1,2]", &mut g).unwrap();
        let rules = store.rules_for(rid);
        assert_eq!(rules.len(), 1);
        assert_eq!(rules[0].conditions.len(), 1);
        assert_eq!(rules[0].conditions[0].owner, alice);
        assert_eq!(store.num_rules(), 1);
    }

    #[test]
    fn allow_rejects_bad_paths_and_unknown_resources() {
        let mut store = PolicyStore::new();
        let mut g = graph();
        let alice = g.node_by_name("Alice").unwrap();
        let rid = store.register_resource(alice);
        assert!(matches!(
            store.allow(rid, "friend+[0]", &mut g),
            Err(EvalError::Parse(_))
        ));
        assert!(matches!(
            store.allow(ResourceId(42), "friend", &mut g),
            Err(EvalError::UnknownResource(42))
        ));
        let orphan = AccessRule {
            resource: ResourceId(42),
            conditions: vec![],
        };
        assert!(store.add_rule(orphan).is_err());
    }

    #[test]
    fn access_condition_parses_owner_slash_path() {
        let mut g = graph();
        let cond = AccessCondition::parse("Alice/friend+[1,2]/colleague+[1]", &mut g).unwrap();
        assert_eq!(cond.owner, g.node_by_name("Alice").unwrap());
        assert_eq!(cond.path.len(), 2);
        assert!(AccessCondition::parse("Zoe/friend", &mut g).is_err());
        assert!(AccessCondition::parse("AliceNoSlash", &mut g).is_err());
    }

    #[test]
    fn decision_predicate() {
        assert!(Decision::Grant.is_granted());
        assert!(!Decision::Deny.is_granted());
    }
}
