//! Length-prefixed, CRC-framed message transport.
//!
//! Every message between a router and a shard server travels as one
//! frame: `[u32 LE payload len][u32 LE CRC-32][payload]`, the exact
//! shape of the durability WAL's record frames — and for the same
//! reason: the checksum covers the **length bytes and the payload**,
//! so a damaged length field cannot masquerade as a valid frame (a
//! corrupted length changes the CRC input and the mismatch is caught
//! before any payload byte is interpreted).
//!
//! Reads classify failures instead of guessing:
//!
//! * [`FrameError::Closed`] — the peer closed cleanly *between*
//!   frames (a normal connection end).
//! * [`FrameError::Torn`] — the stream ended *mid*-frame (a crashed
//!   or killed peer).
//! * [`FrameError::Corrupt`] — the header or payload failed the CRC
//!   (bit rot, a mis-framed stream, or an overlong length field).
//! * [`FrameError::Io`] — the transport itself failed (including
//!   read timeouts, which callers map to their own timeout error).
//!
//! The conformance tier's byte-flip sweep pins the contract: every
//! single-byte corruption of a valid frame must surface as one of the
//! typed errors above, never as a successfully parsed wrong payload.

use socialreach_graph::wire::crc32;
use std::fmt;
use std::io::{self, Read, Write};

/// Upper bound on a frame payload. Far above any real round batch
/// (export batching caps request sizes well below this); its job is to
/// stop a corrupted length field from provoking a giant allocation.
pub const MAX_FRAME: usize = 64 << 20;

/// Why a frame could not be read.
#[derive(Debug)]
pub enum FrameError {
    /// The underlying transport failed (includes read timeouts).
    Io(io::Error),
    /// The peer closed the connection cleanly between frames.
    Closed,
    /// The stream ended in the middle of a frame.
    Torn {
        /// Bytes of the frame that did arrive.
        got: usize,
        /// Bytes the frame header promised.
        wanted: usize,
    },
    /// The frame failed its checksum or carried an impossible header.
    Corrupt {
        /// Human-readable diagnosis.
        detail: String,
    },
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "transport i/o error: {e}"),
            FrameError::Closed => write!(f, "connection closed"),
            FrameError::Torn { got, wanted } => {
                write!(f, "torn frame: stream ended after {got} of {wanted} bytes")
            }
            FrameError::Corrupt { detail } => write!(f, "corrupt frame: {detail}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Encodes one payload as a standalone frame (the byte layout tests
/// and the golden-bytes pins read this form).
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    assert!(payload.len() <= MAX_FRAME, "frame payload exceeds cap");
    let len = (payload.len() as u32).to_le_bytes();
    let mut checked = Vec::with_capacity(4 + payload.len());
    checked.extend_from_slice(&len);
    checked.extend_from_slice(payload);
    let crc = crc32(&checked);
    let mut frame = Vec::with_capacity(8 + payload.len());
    frame.extend_from_slice(&len);
    frame.extend_from_slice(&crc.to_le_bytes());
    frame.extend_from_slice(payload);
    frame
}

/// Writes one frame to `w` and flushes.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> Result<(), FrameError> {
    if payload.len() > MAX_FRAME {
        return Err(FrameError::Corrupt {
            detail: format!(
                "refusing to send {}-byte payload (cap {MAX_FRAME})",
                payload.len()
            ),
        });
    }
    w.write_all(&encode_frame(payload))?;
    w.flush()?;
    Ok(())
}

/// Reads one frame from `r`, verifying the checksum before returning
/// the payload. A clean EOF before the first byte is [`FrameError::Closed`];
/// an EOF anywhere later is [`FrameError::Torn`].
pub fn read_frame<R: Read>(r: &mut R) -> Result<Vec<u8>, FrameError> {
    let mut first = [0u8; 1];
    loop {
        match r.read(&mut first) {
            Ok(0) => return Err(FrameError::Closed),
            Ok(_) => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    read_frame_resume(r, first[0])
}

/// [`read_frame`] after the caller already consumed the frame's first
/// byte (servers poll for it with a short timeout so a shutdown flag
/// is noticed between requests without risking a mid-frame timeout).
pub fn read_frame_resume<R: Read>(r: &mut R, first: u8) -> Result<Vec<u8>, FrameError> {
    let mut header = [0u8; 8];
    header[0] = first;
    read_exact_into_frame(r, &mut header[1..], 1, 8)?;
    let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes")) as usize;
    let expected_crc = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
    if len > MAX_FRAME {
        return Err(FrameError::Corrupt {
            detail: format!("length field claims {len} bytes (cap {MAX_FRAME})"),
        });
    }
    let mut checked = vec![0u8; 4 + len];
    checked[0..4].copy_from_slice(&header[0..4]);
    read_exact_into_frame(r, &mut checked[4..], 8, 8 + len)?;
    let actual = crc32(&checked);
    if actual != expected_crc {
        return Err(FrameError::Corrupt {
            detail: format!(
                "checksum mismatch (stored {expected_crc:#010x}, computed {actual:#010x})"
            ),
        });
    }
    checked.drain(0..4);
    Ok(checked)
}

/// `read_exact` that reports a mid-frame EOF as [`FrameError::Torn`]
/// with frame-relative offsets (`already` bytes consumed before this
/// call, `wanted` total frame bytes).
fn read_exact_into_frame<R: Read>(
    r: &mut R,
    buf: &mut [u8],
    already: usize,
    wanted: usize,
) -> Result<(), FrameError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return Err(FrameError::Torn {
                    got: already + filled,
                    wanted,
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(FrameError::Io(e)),
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frames_round_trip() {
        for payload in [&b""[..], b"x", b"socialreach", &[0u8; 4096][..]] {
            let frame = encode_frame(payload);
            assert_eq!(frame.len(), 8 + payload.len());
            let mut r = &frame[..];
            assert_eq!(read_frame(&mut r).unwrap(), payload);
            assert!(matches!(read_frame(&mut r), Err(FrameError::Closed)));
        }
    }

    #[test]
    fn consecutive_frames_stream() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"one").unwrap();
        write_frame(&mut buf, b"two").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), b"one");
        assert_eq!(read_frame(&mut r).unwrap(), b"two");
        assert!(matches!(read_frame(&mut r), Err(FrameError::Closed)));
    }

    #[test]
    fn truncation_is_torn_not_corrupt() {
        let frame = encode_frame(b"payload bytes");
        for cut in 1..frame.len() {
            let mut r = &frame[..cut];
            match read_frame(&mut r) {
                Err(FrameError::Torn { got, wanted }) => {
                    assert_eq!(got, cut);
                    // Inside the header the reader can't yet know the
                    // full frame length — it reports the 8 header bytes
                    // it was after; past the header it knows the total.
                    let expect = if cut < 8 { 8 } else { frame.len() };
                    assert_eq!(wanted, expect);
                }
                other => panic!("cut at {cut}: expected torn, got {other:?}"),
            }
        }
    }

    #[test]
    fn oversize_length_field_is_typed() {
        let mut frame = encode_frame(b"ok");
        frame[0..4].copy_from_slice(&(u32::MAX).to_le_bytes());
        let mut r = &frame[..];
        assert!(matches!(
            read_frame(&mut r),
            Err(FrameError::Corrupt { .. })
        ));
    }
}
