//! The shard server: one process (or thread) owning one partition.
//!
//! A server holds a [`SocialGraph`] of home members and ghost replicas
//! in **shard-local** node ids, a `global → local` translation map,
//! and a published epoch. It speaks the [`super::proto`] protocol over
//! the CRC frames of [`super::frame`]: one blocking acceptor thread
//! plus one worker thread per connection (no async runtime — the
//! acceptor polls non-blocking so a shutdown flag is honored, workers
//! poll for each frame's first byte with a short timeout for the same
//! reason).
//!
//! State changes only through the epoch fence: `Prepare` validates and
//! stages a batch of [`ShardOp`]s, `Commit` applies them atomically
//! under the core lock and publishes the new epoch (also invalidating
//! every open evaluation session — their engines were built over the
//! old topology). Evaluation sessions pin a CSR snapshot and a
//! round-persistent [`SeededBatchState`], so the rounds of one
//! cross-shard fixpoint reuse visited state exactly like the
//! in-process sharded backend.

use super::frame;
use super::proto::{
    self, Request, Response, ShardOp, WireHop, WireMatch, WireRefusal, PROTOCOL_VERSION,
};
use super::{Conn, Listener, ShardAddr};
use crate::online::{self, MaskedSeedState, SeededBatchState};
use crate::path::{parse_path, PathExpr};
use crate::query::{ChunkMasks, PlanBatchState, PlanNode};
use parking_lot::Mutex;
use socialreach_graph::csr::CsrSnapshot;
use socialreach_graph::shard::{MaskedExport, MaskedStateKey};
use socialreach_graph::{NodeId, SocialGraph};
use std::collections::{HashMap, HashSet};
use std::io::{self, Read};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// How often idle workers / the acceptor check the stop flag.
const POLL: Duration = Duration::from_millis(50);
/// Patience for the rest of a frame once its first byte arrived — a
/// client torn mid-frame releases the worker instead of pinning it.
const FRAME_TIMEOUT: Duration = Duration::from_secs(10);

/// The engine behind an open evaluation: the linear path automaton
/// (`BeginEval` — targeted stop and parent-tracked traces supported)
/// or the shared-prefix trie plan (`BeginEvalPlan` — batched audience
/// fixpoints only).
enum EvalEngine {
    /// One path expression, seeds carry step indexes.
    Linear {
        /// Round-persistent masked visited state.
        engine: SeededBatchState,
        /// The re-parsed path the engine runs.
        path: PathExpr,
    },
    /// A shipped bundle plan, seeds carry plan node ids in the `step`
    /// slot.
    Plan {
        /// Round-persistent per-node masked visited state.
        engine: PlanBatchState,
        /// The re-parsed trie nodes.
        nodes: Vec<PlanNode>,
        /// This chunk's node/accept masks.
        masks: ChunkMasks,
    },
}

/// One open masked-fixpoint evaluation.
struct EvalSession {
    engine: EvalEngine,
    snap: Arc<CsrSnapshot>,
    word: u32,
}

/// The shard's mutable state, shared by every connection worker.
struct ShardCore {
    graph: SocialGraph,
    /// Local node index → global member id.
    globals: Vec<NodeId>,
    /// Local node index → is this copy a ghost replica (the seeded
    /// BFS's export watch set; ghosts are never reported as matches).
    ghost: Vec<bool>,
    /// Global member id → local node id.
    local_of: HashMap<u32, NodeId>,
    /// Published epoch (0 = fresh process; the router replays its op
    /// log to catch a revived shard up).
    epoch: u64,
    staged: Option<(u64, Vec<ShardOp>)>,
    snap: Option<Arc<CsrSnapshot>>,
    evals: HashMap<u64, EvalSession>,
}

impl ShardCore {
    fn new() -> Self {
        ShardCore {
            graph: SocialGraph::new(),
            globals: Vec::new(),
            ghost: Vec::new(),
            local_of: HashMap::new(),
            epoch: 0,
            staged: None,
            snap: None,
            evals: HashMap::new(),
        }
    }

    /// The published snapshot for the current topology, patching or
    /// rebuilding if a commit staled it.
    fn snapshot(&mut self) -> Arc<CsrSnapshot> {
        if let Some(s) = &self.snap {
            if s.matches(&self.graph) {
                return Arc::clone(s);
            }
        }
        let next = self
            .snap
            .as_ref()
            .and_then(|prev| prev.apply_edge_appends(&self.graph))
            .unwrap_or_else(|| CsrSnapshot::build(&self.graph));
        let arc = Arc::new(next);
        self.snap = Some(Arc::clone(&arc));
        arc
    }

    /// Checks a prepare batch without applying it: every referenced
    /// member must exist (or be added earlier in the batch), no member
    /// may be materialized twice, and every label/attr name must
    /// already be interned (the router `Intern`s in master-vocabulary
    /// order first, so interned ids agree fleet-wide).
    fn validate(&self, ops: &[ShardOp]) -> Result<(), WireRefusal> {
        let mut pending: HashSet<u32> = HashSet::new();
        let known =
            |m: &u32, pending: &HashSet<u32>| self.local_of.contains_key(m) || pending.contains(m);
        for op in ops {
            match op {
                ShardOp::AddNode { global, .. } => {
                    if self.local_of.contains_key(global) || !pending.insert(*global) {
                        return Err(WireRefusal::BadRequest {
                            detail: format!("member {global} already has a copy on this shard"),
                        });
                    }
                }
                ShardOp::SetAttr { global, key, .. } => {
                    if !known(global, &pending) {
                        return Err(WireRefusal::UnknownMember { member: *global });
                    }
                    if self.graph.vocab().attr(key).is_none() {
                        return Err(WireRefusal::BadRequest {
                            detail: format!("attr key {key:?} not interned (Intern first)"),
                        });
                    }
                }
                ShardOp::AddEdge { src, label, dst } => {
                    for m in [src, dst] {
                        if !known(m, &pending) {
                            return Err(WireRefusal::UnknownMember { member: *m });
                        }
                    }
                    if self.graph.vocab().label(label).is_none() {
                        return Err(WireRefusal::BadRequest {
                            detail: format!("label {label:?} not interned (Intern first)"),
                        });
                    }
                }
            }
        }
        Ok(())
    }

    /// Applies a validated batch (commit path).
    fn apply(&mut self, ops: Vec<ShardOp>) {
        for op in ops {
            match op {
                ShardOp::AddNode {
                    global,
                    name,
                    ghost,
                } => {
                    let local = self.graph.add_node(&name);
                    self.globals.push(NodeId(global));
                    self.ghost.push(ghost);
                    self.local_of.insert(global, local);
                }
                ShardOp::SetAttr { global, key, value } => {
                    let local = self.local_of[&global];
                    self.graph.set_node_attr(local, &key, value);
                }
                ShardOp::AddEdge { src, label, dst } => {
                    let (ls, ld) = (self.local_of[&src], self.local_of[&dst]);
                    self.graph.connect(ls, &label, ld);
                }
            }
        }
    }

    /// Serves one request. Returns the response and whether the server
    /// should shut down afterwards.
    fn handle(&mut self, req: Request) -> (Response, bool) {
        let refuse = |r: WireRefusal| (Response::Refused(r), false);
        match req {
            Request::Hello { version } => {
                if version != PROTOCOL_VERSION {
                    return refuse(WireRefusal::Version {
                        shard: PROTOCOL_VERSION,
                        requested: version,
                    });
                }
                (
                    Response::Hello {
                        version: PROTOCOL_VERSION,
                        epoch: self.epoch,
                        nodes: self.graph.num_nodes() as u64,
                    },
                    false,
                )
            }
            Request::Intern { labels, attrs } => {
                for name in &labels {
                    self.graph.intern_label(name);
                }
                for name in &attrs {
                    self.graph.intern_attr(name);
                }
                (Response::Ok, false)
            }
            Request::Prepare { epoch, ops } => {
                let replacing = self.staged.as_ref().is_some_and(|(e, _)| *e == epoch);
                if epoch <= self.epoch {
                    return refuse(WireRefusal::EpochMismatch {
                        shard_epoch: self.epoch,
                        requested: epoch,
                    });
                }
                if !replacing {
                    if let Some((staged, _)) = &self.staged {
                        return refuse(WireRefusal::BadRequest {
                            detail: format!("epoch {staged} is already staged"),
                        });
                    }
                }
                if let Err(r) = self.validate(&ops) {
                    return refuse(r);
                }
                self.staged = Some((epoch, ops));
                (Response::Prepared { epoch }, false)
            }
            Request::Commit { epoch } => {
                if epoch == self.epoch {
                    // Idempotent re-commit (a router retrying after a
                    // lost acknowledgement).
                    return (Response::Committed { epoch }, false);
                }
                match self.staged.take() {
                    Some((staged, ops)) if staged == epoch => {
                        self.apply(ops);
                        self.epoch = epoch;
                        // Open sessions were built over the old
                        // topology; a commit invalidates them so a
                        // racing read fails typed instead of mixing
                        // epochs.
                        self.evals.clear();
                        (Response::Committed { epoch }, false)
                    }
                    other => {
                        self.staged = other;
                        refuse(WireRefusal::EpochMismatch {
                            shard_epoch: self.epoch,
                            requested: epoch,
                        })
                    }
                }
            }
            Request::Abort { epoch } => {
                if self.staged.as_ref().is_some_and(|(e, _)| *e == epoch) {
                    self.staged = None;
                }
                (Response::Aborted { epoch }, false)
            }
            Request::BeginEval {
                eval,
                epoch,
                path,
                word,
                parents,
            } => {
                if epoch != self.epoch {
                    return refuse(WireRefusal::EpochMismatch {
                        shard_epoch: self.epoch,
                        requested: epoch,
                    });
                }
                // Parse against a throwaway copy of the vocabulary: a
                // path naming labels/attrs this shard has not interned
                // means the router skipped `Intern` — refuse rather
                // than intern out of master order.
                let mut vocab = self.graph.vocab().clone();
                let before = (vocab.num_labels(), vocab.num_attrs());
                let parsed = match parse_path(&path, &mut vocab) {
                    Ok(p) => p,
                    Err(e) => {
                        return refuse(WireRefusal::BadRequest {
                            detail: format!(
                                "unparsable path {path:?}: {}",
                                crate::EvalError::from(e)
                            ),
                        })
                    }
                };
                if (vocab.num_labels(), vocab.num_attrs()) != before {
                    return refuse(WireRefusal::BadRequest {
                        detail: format!(
                            "path {path:?} names vocabulary this shard has not interned"
                        ),
                    });
                }
                if parsed.is_empty() {
                    return refuse(WireRefusal::BadRequest {
                        detail: "empty paths are decided router-side".to_owned(),
                    });
                }
                let snap = self.snapshot();
                let engine = if parents {
                    SeededBatchState::with_parents(&self.graph, &snap, &parsed)
                } else {
                    SeededBatchState::new(&self.graph, &snap, &parsed)
                };
                self.evals.insert(
                    eval,
                    EvalSession {
                        engine: EvalEngine::Linear {
                            engine,
                            path: parsed,
                        },
                        snap,
                        word,
                    },
                );
                (Response::EvalOpen { eval }, false)
            }
            Request::BeginEvalPlan {
                eval,
                epoch,
                nodes,
                word,
            } => {
                if epoch != self.epoch {
                    return refuse(WireRefusal::EpochMismatch {
                        shard_epoch: self.epoch,
                        requested: epoch,
                    });
                }
                if nodes.is_empty() {
                    return refuse(WireRefusal::BadRequest {
                        detail: "a bundle plan needs at least one node".to_owned(),
                    });
                }
                // Re-parse each node's step against a throwaway copy of
                // the vocabulary, refusing unknown names exactly like
                // `BeginEval` does for its one path.
                let mut vocab = self.graph.vocab().clone();
                let before = (vocab.num_labels(), vocab.num_attrs());
                let mut plan_nodes: Vec<PlanNode> = Vec::with_capacity(nodes.len());
                let mut masks = ChunkMasks::default();
                for n in &nodes {
                    let parsed = match parse_path(&n.step, &mut vocab) {
                        Ok(p) => p,
                        Err(e) => {
                            return refuse(WireRefusal::BadRequest {
                                detail: format!(
                                    "unparsable plan step {:?}: {}",
                                    n.step,
                                    crate::EvalError::from(e)
                                ),
                            })
                        }
                    };
                    if (vocab.num_labels(), vocab.num_attrs()) != before {
                        return refuse(WireRefusal::BadRequest {
                            detail: format!(
                                "plan step {:?} names vocabulary this shard has not interned",
                                n.step
                            ),
                        });
                    }
                    if parsed.len() != 1 {
                        return refuse(WireRefusal::BadRequest {
                            detail: format!("plan node step {:?} is not a single step", n.step),
                        });
                    }
                    if let Some(&c) = n.children.iter().find(|&&c| c as usize >= nodes.len()) {
                        return refuse(WireRefusal::BadRequest {
                            detail: format!("plan child id {c} is out of range"),
                        });
                    }
                    plan_nodes.push(PlanNode {
                        step: parsed.steps[0].canonical(),
                        children: n.children.clone(),
                    });
                    masks.node_mask.push(n.mask);
                    masks.accept_mask.push(n.accept);
                }
                let snap = self.snapshot();
                let engine = PlanBatchState::new(&self.graph, &snap, &plan_nodes);
                self.evals.insert(
                    eval,
                    EvalSession {
                        engine: EvalEngine::Plan {
                            engine,
                            nodes: plan_nodes,
                            masks,
                        },
                        snap,
                        word,
                    },
                );
                (Response::EvalOpen { eval }, false)
            }
            Request::Round { eval, seeds, stop } => {
                let Some(sess) = self.evals.get(&eval) else {
                    return refuse(WireRefusal::UnknownEval { eval });
                };
                let word = sess.word;
                let mut local_seeds: Vec<MaskedSeedState> = Vec::with_capacity(seeds.len());
                for e in &seeds {
                    if e.key.word != word {
                        return refuse(WireRefusal::BadRequest {
                            detail: format!(
                                "seed word {} does not match the session's word {word}",
                                e.key.word
                            ),
                        });
                    }
                    let Some(&local) = self.local_of.get(&e.key.member) else {
                        return refuse(WireRefusal::UnknownMember {
                            member: e.key.member,
                        });
                    };
                    local_seeds.push((local, e.key.step, e.key.depth, e.mask));
                }
                if stop.is_some() && matches!(sess.engine, EvalEngine::Plan { .. }) {
                    return refuse(WireRefusal::BadRequest {
                        detail: "plan sessions serve audience fixpoints only (no stop target)"
                            .to_owned(),
                    });
                }
                let stop_local = match stop {
                    Some(m) => match self.local_of.get(&m) {
                        Some(&l) if !self.ghost[l.index()] => Some(l),
                        Some(_) => {
                            return refuse(WireRefusal::BadRequest {
                                detail: format!("stop member {m} is a ghost on this shard"),
                            })
                        }
                        None => return refuse(WireRefusal::UnknownMember { member: m }),
                    },
                    None => None,
                };
                let ShardCore {
                    graph,
                    globals,
                    ghost,
                    evals,
                    ..
                } = self;
                let sess = evals.get_mut(&eval).expect("checked above");
                let out = match &mut sess.engine {
                    EvalEngine::Linear { engine, path } => {
                        online::evaluate_audience_batch_seeded_stop(
                            graph,
                            &sess.snap,
                            path,
                            engine,
                            &local_seeds,
                            ghost,
                            stop_local,
                        )
                    }
                    EvalEngine::Plan {
                        engine,
                        nodes,
                        masks,
                    } => crate::query::evaluate_plan_batch_seeded(
                        graph,
                        &sess.snap,
                        nodes,
                        masks,
                        engine,
                        &local_seeds,
                        ghost,
                    ),
                };
                (
                    Response::Round {
                        matched: out
                            .matched
                            .iter()
                            .filter(|(m, _)| !ghost[m.index()])
                            .map(|&(m, bits)| WireMatch {
                                member: globals[m.index()].0,
                                mask: bits,
                            })
                            .collect(),
                        exports: out
                            .exports
                            .iter()
                            .map(|&(m, step, depth, bits)| MaskedExport {
                                key: MaskedStateKey {
                                    member: globals[m.index()].0,
                                    step,
                                    depth,
                                    word,
                                },
                                mask: bits,
                            })
                            .collect(),
                        hit: out.hit,
                        states_expanded: out.stats.states_visited as u64,
                    },
                    false,
                )
            }
            Request::Trace {
                eval,
                member,
                step,
                depth,
            } => {
                let Some(sess) = self.evals.get(&eval) else {
                    return refuse(WireRefusal::UnknownEval { eval });
                };
                let Some(&local) = self.local_of.get(&member) else {
                    return refuse(WireRefusal::UnknownMember { member });
                };
                let EvalEngine::Linear { engine, .. } = &sess.engine else {
                    return refuse(WireRefusal::BadRequest {
                        detail: "plan sessions keep no parent chains (trace a linear session)"
                            .to_owned(),
                    });
                };
                match engine.trace(local, step, depth) {
                    None => refuse(WireRefusal::BadRequest {
                        detail: format!(
                            "state (member {member}, step {step}, depth {depth}) has no \
                             parent-tracked trace on this shard"
                        ),
                    }),
                    Some((hops, (seed_local, seed_step, seed_depth))) => (
                        Response::Traced {
                            hops: hops
                                .iter()
                                .map(|&(eid, forward)| {
                                    let rec = self.graph.edge(eid);
                                    WireHop {
                                        src: self.globals[rec.src.index()].0,
                                        dst: self.globals[rec.dst.index()].0,
                                        label: rec.label.0,
                                        forward,
                                    }
                                })
                                .collect(),
                            seed_member: self.globals[seed_local.index()].0,
                            seed_step,
                            seed_depth,
                        },
                        false,
                    ),
                }
            }
            Request::EndEval { eval } => {
                self.evals.remove(&eval);
                (Response::Ok, false)
            }
            Request::Census => (
                Response::Census {
                    members: self.ghost.iter().filter(|g| !**g).count() as u64,
                    ghosts: self.ghost.iter().filter(|g| **g).count() as u64,
                    edges: self.graph.num_edges() as u64,
                    epoch: self.epoch,
                },
                false,
            ),
            Request::Shutdown => (Response::Ok, true),
        }
    }
}

/// A bound, not-yet-serving shard server.
pub struct ShardServer {
    listener: Listener,
    addr: ShardAddr,
    core: Arc<Mutex<ShardCore>>,
    stop: Arc<AtomicBool>,
}

impl ShardServer {
    /// Binds the endpoint (TCP `host:0` picks an ephemeral port; a
    /// stale UDS socket file is replaced). The server starts empty at
    /// epoch 0 — the router populates it through the epoch fence.
    pub fn bind(addr: &ShardAddr) -> io::Result<ShardServer> {
        let listener = Listener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(ShardServer {
            listener,
            addr,
            core: Arc::new(Mutex::new(ShardCore::new())),
            stop: Arc::new(AtomicBool::new(false)),
        })
    }

    /// The bound endpoint (with any ephemeral port resolved).
    pub fn local_addr(&self) -> &ShardAddr {
        &self.addr
    }

    /// Serves until a `Shutdown` request arrives (the
    /// `serve-shard` CLI verb and drill children block here).
    pub fn run(self) -> io::Result<()> {
        self.accept_loop()
    }

    /// Serves on a background thread — the in-process fleet
    /// construction tests and benches use. The returned handle kills
    /// the server on drop.
    pub fn spawn(self) -> ShardHandle {
        let addr = self.addr.clone();
        let stop = Arc::clone(&self.stop);
        let join = std::thread::spawn(move || {
            let _ = self.accept_loop();
        });
        ShardHandle {
            addr,
            stop,
            join: Some(join),
        }
    }

    fn accept_loop(self) -> io::Result<()> {
        // Non-blocking accept so the stop flag is honored promptly
        // (std has no way to interrupt a blocking accept).
        self.listener.set_nonblocking(true)?;
        let mut workers: Vec<JoinHandle<()>> = Vec::new();
        while !self.stop.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok(conn) => {
                    let core = Arc::clone(&self.core);
                    let stop = Arc::clone(&self.stop);
                    workers.push(std::thread::spawn(move || serve_conn(conn, core, stop)));
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    workers.retain(|w| !w.is_finished());
                    std::thread::sleep(POLL.min(Duration::from_millis(10)));
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }
        for w in workers {
            let _ = w.join();
        }
        if let ShardAddr::Unix(path) = &self.addr {
            let _ = std::fs::remove_file(path);
        }
        Ok(())
    }
}

/// A running in-process shard server. Dropping (or [`ShardHandle::kill`])
/// stops the acceptor and every worker, severing all connections —
/// the test tier's "kill a shard" lever. All shard state dies with it;
/// a replacement starts fresh at epoch 0 and is caught up by the
/// router's op-log replay.
pub struct ShardHandle {
    addr: ShardAddr,
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<()>>,
}

impl ShardHandle {
    /// The served endpoint.
    pub fn addr(&self) -> &ShardAddr {
        &self.addr
    }

    /// Stops the server and waits for its threads. Idempotent.
    pub fn kill(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(join) = self.join.take() {
            let _ = join.join();
        }
    }
}

impl Drop for ShardHandle {
    fn drop(&mut self) {
        self.kill();
    }
}

/// One connection worker: poll for a frame's first byte (noticing the
/// stop flag between requests), read the frame, serve the request
/// under the core lock, write the response. Any framing failure closes
/// the connection — the client re-dials.
fn serve_conn(mut conn: Conn, core: Arc<Mutex<ShardCore>>, stop: Arc<AtomicBool>) {
    if conn.set_read_timeout(Some(POLL)).is_err() {
        return;
    }
    loop {
        if stop.load(Ordering::SeqCst) {
            return;
        }
        let mut first = [0u8; 1];
        let first = match conn.read(&mut first) {
            Ok(0) => return,
            Ok(_) => first[0],
            Err(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock
                        | io::ErrorKind::TimedOut
                        | io::ErrorKind::Interrupted
                ) =>
            {
                continue
            }
            Err(_) => return,
        };
        if conn.set_read_timeout(Some(FRAME_TIMEOUT)).is_err() {
            return;
        }
        let payload = match frame::read_frame_resume(&mut conn, first) {
            Ok(p) => p,
            Err(_) => return,
        };
        if conn.set_read_timeout(Some(POLL)).is_err() {
            return;
        }
        let (resp, shutdown) = match proto::decode_request(&payload) {
            Ok(req) => core.lock().handle(req),
            Err(e) => (
                Response::Refused(WireRefusal::BadRequest {
                    detail: format!("undecodable request: {e}"),
                }),
                false,
            ),
        };
        if frame::write_frame(&mut conn, &proto::encode_response(&resp)).is_err() {
            return;
        }
        if shutdown {
            stop.store(true, Ordering::SeqCst);
            return;
        }
    }
}
