//! `core::remote` — shards as processes: the networked shard backend.
//!
//! The in-process [`crate::sharded::ShardedSystem`] moves
//! [`MaskedStateKey`](socialreach_graph::shard::MaskedStateKey) /
//! [`MaskedExportSet`](socialreach_graph::shard::MaskedExportSet)
//! boundary exports between shards through function calls. This module
//! is the same round-based masked fixpoint with the calls replaced by
//! a wire: shard **server processes** ([`ShardServer`]) own one
//! partition each — a [`SocialGraph`](socialreach_graph::SocialGraph)
//! of home members and ghost replicas behind an epoch-publishing
//! enforcer — and a **router** ([`NetworkedSystem`]) implements
//! [`crate::AccessService`] / [`crate::MutateService`] by exchanging
//! masked-export batches with them.
//!
//! # Wire stack
//!
//! * [`frame`] — `[u32 LE len][u32 LE CRC-32][payload]` frames over a
//!   blocking stream; the CRC covers the length bytes so a damaged
//!   length cannot fake a frame. No async runtime: plain
//!   `std::net`/`std::os::unix::net` with threads.
//! * [`proto`] — serde-encoded [`Request`]/[`Response`] messages. All
//!   member coordinates on the wire are **global** ids; each server
//!   translates to its local node space at the edge.
//! * [`ShardAddr`] — TCP (`host:port`) or Unix-domain (`unix:/path`)
//!   endpoints; both transports run the identical protocol and the
//!   conformance tier keeps both green.
//!
//! # The epoch fence
//!
//! Every mutation runs a **two-phase commit** across the whole fleet:
//! `Prepare{epoch+1, ops}` stages per-shard mutations (validated, not
//! applied), then `Commit{epoch+1}` applies and publishes them
//! atomically per shard. Any prepare failure aborts the epoch
//! everywhere; once *all* shards prepared, the epoch is presumed
//! committed — a shard that misses its commit is marked down and
//! caught up from the router's per-shard op log on reconnect. Reads
//! open every evaluation with the epoch the router believes current
//! ([`proto::Request::BeginEval`]) and shards refuse mismatches, so a
//! half-committed fleet returns a typed error instead of a torn
//! mixed-epoch answer.
//!
//! # Batching and backpressure
//!
//! A fixpoint round's seeds for one shard are split into
//! [`MAX_ROUND_EXPORTS`]-sized `Round` requests sent back-to-back on
//! the shard's connection — at most one bounded frame in flight per
//! shard, so a giant frontier can never balloon a single frame (the
//! engine's round-persistent visited state makes the split
//! semantically free, and re-delivered bits are absorbed, so
//! duplicated or reordered batches cannot change a decision).
//!
//! # Failure model
//!
//! Transport failures surface as [`RemoteError`] (wrapped in
//! [`crate::EvalError::Remote`]): the router drops the failed
//! connection, retries the whole read once after re-dialing (a fresh
//! shard is replayed from the op log first), and otherwise returns the
//! typed error — never a wrong decision. The fault-injection suite
//! drives torn frames, short reads, corrupt bytes, stalls and
//! kill/restart through a byte-level proxy to pin exactly that.

pub mod frame;
pub mod proto;
mod router;
mod server;

pub use router::NetworkedSystem;
pub use server::{ShardHandle, ShardServer};

use proto::WireRefusal;
use std::fmt;
use std::io::{self, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::time::Duration;

/// Cap on masked exports per `Round` request: the per-round batching
/// unit and the in-flight bound (one request frame at a time per shard
/// connection).
pub const MAX_ROUND_EXPORTS: usize = 512;

/// Default client read timeout: a shard stalling longer than this
/// surfaces as [`RemoteError::Timeout`] instead of hanging the router.
pub const DEFAULT_READ_TIMEOUT: Duration = Duration::from_secs(10);

/// A shard server endpoint: loopback/remote TCP or a Unix-domain
/// socket path.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ShardAddr {
    /// A TCP endpoint, e.g. `127.0.0.1:4701` (port 0 binds ephemeral).
    Tcp(String),
    /// A Unix-domain socket path.
    Unix(PathBuf),
}

impl ShardAddr {
    /// Parses the CLI form: `unix:/path/sock` or `host:port`.
    pub fn parse(text: &str) -> ShardAddr {
        match text.strip_prefix("unix:") {
            Some(path) => ShardAddr::Unix(PathBuf::from(path)),
            None => ShardAddr::Tcp(text.to_owned()),
        }
    }
}

impl fmt::Display for ShardAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardAddr::Tcp(addr) => write!(f, "{addr}"),
            ShardAddr::Unix(path) => write!(f, "unix:{}", path.display()),
        }
    }
}

/// A typed transport/remote-protocol failure. Carried inside
/// [`crate::EvalError::Remote`] so every read surface stays fallible
/// with one error vocabulary.
#[derive(Clone, Debug, PartialEq)]
pub enum RemoteError {
    /// Dialing the endpoint failed.
    Connect {
        /// The endpoint.
        addr: String,
        /// The OS-level detail.
        detail: String,
    },
    /// The connection failed mid-exchange (reset, closed, torn frame).
    Io {
        /// The endpoint.
        addr: String,
        /// What happened.
        detail: String,
    },
    /// The shard stalled past the read timeout.
    Timeout {
        /// The endpoint.
        addr: String,
    },
    /// A frame failed its checksum or carried an impossible header.
    Corrupt {
        /// The endpoint.
        addr: String,
        /// The frame-layer diagnosis.
        detail: String,
    },
    /// The bytes framed fine but were not a valid protocol message,
    /// or the message type was impossible for the request.
    Protocol {
        /// The endpoint.
        addr: String,
        /// What was wrong.
        detail: String,
    },
    /// The shard refused the request with a typed reason.
    Refused {
        /// The endpoint.
        addr: String,
        /// The shard's refusal.
        refusal: WireRefusal,
    },
    /// The shard is marked down (its connection dropped and re-dialing
    /// has not succeeded).
    ShardDown {
        /// The shard index.
        shard: u32,
    },
}

impl RemoteError {
    /// Whether re-dialing and retrying the whole operation could
    /// succeed (connection-level failures and lost evaluation
    /// sessions; *not* semantic refusals like a version mismatch).
    pub fn retryable(&self) -> bool {
        match self {
            RemoteError::Connect { .. }
            | RemoteError::Io { .. }
            | RemoteError::Timeout { .. }
            | RemoteError::ShardDown { .. } => true,
            RemoteError::Refused { refusal, .. } => matches!(
                refusal,
                WireRefusal::UnknownEval { .. } | WireRefusal::EpochMismatch { .. }
            ),
            RemoteError::Corrupt { .. } | RemoteError::Protocol { .. } => false,
        }
    }
}

impl fmt::Display for RemoteError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RemoteError::Connect { addr, detail } => {
                write!(f, "connecting to shard {addr} failed: {detail}")
            }
            RemoteError::Io { addr, detail } => write!(f, "shard {addr} i/o failure: {detail}"),
            RemoteError::Timeout { addr } => {
                write!(f, "shard {addr} stalled past the read timeout")
            }
            RemoteError::Corrupt { addr, detail } => {
                write!(f, "corrupt frame from shard {addr}: {detail}")
            }
            RemoteError::Protocol { addr, detail } => {
                write!(f, "protocol violation from shard {addr}: {detail}")
            }
            RemoteError::Refused { addr, refusal } => write!(f, "shard {addr} refused: {refusal}"),
            RemoteError::ShardDown { shard } => write!(f, "shard {shard} is down"),
        }
    }
}

impl std::error::Error for RemoteError {}

/// One accepted or dialed connection, transport-erased.
pub(crate) enum Conn {
    Tcp(TcpStream),
    Unix(UnixStream),
}

impl Conn {
    pub(crate) fn dial(addr: &ShardAddr) -> io::Result<Conn> {
        match addr {
            ShardAddr::Tcp(a) => {
                let s = TcpStream::connect(a)?;
                s.set_nodelay(true)?;
                Ok(Conn::Tcp(s))
            }
            ShardAddr::Unix(p) => Ok(Conn::Unix(UnixStream::connect(p)?)),
        }
    }

    pub(crate) fn set_read_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.set_read_timeout(timeout),
            Conn::Unix(s) => s.set_read_timeout(timeout),
        }
    }
}

impl Read for Conn {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.read(buf),
            Conn::Unix(s) => s.read(buf),
        }
    }
}

impl Write for Conn {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self {
            Conn::Tcp(s) => s.write(buf),
            Conn::Unix(s) => s.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        match self {
            Conn::Tcp(s) => s.flush(),
            Conn::Unix(s) => s.flush(),
        }
    }
}

/// A bound acceptor, transport-erased.
pub(crate) enum Listener {
    Tcp(TcpListener),
    Unix(UnixListener),
}

impl Listener {
    pub(crate) fn bind(addr: &ShardAddr) -> io::Result<Listener> {
        match addr {
            ShardAddr::Tcp(a) => Ok(Listener::Tcp(TcpListener::bind(a)?)),
            ShardAddr::Unix(p) => {
                // A stale socket file from a killed predecessor blocks
                // the bind; replacing it is the restart semantics the
                // drill relies on.
                let _ = std::fs::remove_file(p);
                Ok(Listener::Unix(UnixListener::bind(p)?))
            }
        }
    }

    /// The bound endpoint (resolves TCP port 0 to the ephemeral port).
    pub(crate) fn local_addr(&self) -> io::Result<ShardAddr> {
        match self {
            Listener::Tcp(l) => Ok(ShardAddr::Tcp(l.local_addr()?.to_string())),
            Listener::Unix(l) => {
                let addr = l.local_addr()?;
                let path = addr
                    .as_pathname()
                    .ok_or_else(|| io::Error::other("unnamed unix socket"))?;
                Ok(ShardAddr::Unix(path.to_path_buf()))
            }
        }
    }

    pub(crate) fn set_nonblocking(&self, nonblocking: bool) -> io::Result<()> {
        match self {
            Listener::Tcp(l) => l.set_nonblocking(nonblocking),
            Listener::Unix(l) => l.set_nonblocking(nonblocking),
        }
    }

    pub(crate) fn accept(&self) -> io::Result<Conn> {
        match self {
            Listener::Tcp(l) => {
                let (s, _) = l.accept()?;
                s.set_nodelay(true)?;
                Ok(Conn::Tcp(s))
            }
            Listener::Unix(l) => {
                let (s, _) = l.accept()?;
                Ok(Conn::Unix(s))
            }
        }
    }
}

/// Spawns an in-process fleet of `n` shard servers on the given
/// transport — the test/bench construction (the CLI drill spawns real
/// child processes instead). Returns the handles; collect their
/// [`ShardHandle::addr`]s into a [`crate::Deployment::networked`].
pub fn spawn_local_fleet(n: usize, unix: bool) -> io::Result<Vec<ShardHandle>> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static FLEET: AtomicU64 = AtomicU64::new(0);
    let fleet = FLEET.fetch_add(1, Ordering::Relaxed);
    (0..n)
        .map(|i| {
            let addr = if unix {
                ShardAddr::Unix(std::env::temp_dir().join(format!(
                    "socialreach-shard-{}-{fleet}-{i}.sock",
                    std::process::id()
                )))
            } else {
                ShardAddr::Tcp("127.0.0.1:0".to_owned())
            };
            Ok(ShardServer::bind(&addr)?.spawn())
        })
        .collect()
}
