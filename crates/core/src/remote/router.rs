//! The router: [`AccessService`]/[`MutateService`] over remote shards.
//!
//! [`NetworkedSystem`] is the wire twin of
//! [`crate::sharded::ShardedSystem`]: the same hash placement
//! ([`ShardAssignment`]), the same ghost-replicated boundary edges,
//! and the same round-based masked fixpoint — but each shard's graph
//! lives in a server process ([`super::ShardServer`]) and the rounds
//! exchange [`MaskedExport`] batches over CRC-framed sockets.
//!
//! The router keeps only **metadata**: member placement, names,
//! attribute tuples (to materialize ghost replicas), the policy store,
//! the boundary table, and a per-shard op log of every committed
//! epoch. Graph topology lives exclusively on the shards; all reads
//! fan out.
//!
//! Mutations run the two-phase epoch fence (`Prepare` everywhere →
//! `Commit` everywhere; any prepare failure aborts the epoch). Once
//! every shard has prepared, the epoch is *presumed committed*: the
//! router records it in the op log and advances before sending
//! commits, so a shard that dies between its prepare and its commit is
//! simply marked down and replayed from the op log on revival — the
//! fleet can never end up split between epochs from the router's point
//! of view, and a shard that *is* behind refuses `BeginEval`'s epoch
//! check rather than serving a torn read.
//!
//! Reads are `&self` and fan out on scoped threads like the in-process
//! backend; on a retryable transport failure the router re-dials every
//! down shard (op-log catch-up included) and re-runs the whole
//! evaluation once with fresh evaluation ids — the engines' masked
//! state is per-evaluation, so a retry cannot observe leftovers.

use super::frame::{self, FrameError};
use super::proto::{self, Request, Response, ShardOp, PROTOCOL_VERSION};
use super::{Conn, RemoteError, ShardAddr, DEFAULT_READ_TIMEOUT, MAX_ROUND_EXPORTS};
use crate::error::EvalError;
use crate::path::PathExpr;
use crate::policy::{Decision, PolicyStore, ResourceId};
use crate::service::{
    AccessService, BundleStrategy, CheckPlan, Explanation, MutateService, ReadStats, WalkHop,
    WitnessWalk,
};
use parking_lot::{Mutex, RwLock};
use socialreach_graph::shard::{
    BoundaryEdge, BoundaryTable, MaskedExport, MaskedExportSet, MaskedStateKey, ShardAssignment,
};
use socialreach_graph::{AttrValue, LabelId, NodeId, SocialGraph, Vocabulary};
use std::collections::{HashMap, HashSet};
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// A cross-shard product-state coordinate: global member, step index,
/// saturated depth.
type StateKey = (u32, u16, u32);

/// One dialed shard connection.
struct ShardClient {
    conn: Conn,
    addr: String,
}

impl ShardClient {
    /// Dials, handshakes, and returns the client plus the shard's
    /// published epoch.
    fn connect(addr: &ShardAddr, timeout: Duration) -> Result<(ShardClient, u64), RemoteError> {
        let text = addr.to_string();
        let conn = Conn::dial(addr).map_err(|e| RemoteError::Connect {
            addr: text.clone(),
            detail: e.to_string(),
        })?;
        conn.set_read_timeout(Some(timeout))
            .map_err(|e| RemoteError::Connect {
                addr: text.clone(),
                detail: e.to_string(),
            })?;
        let mut client = ShardClient { conn, addr: text };
        match client.call(&Request::Hello {
            version: PROTOCOL_VERSION,
        })? {
            Response::Hello { epoch, .. } => Ok((client, epoch)),
            Response::Refused(refusal) => Err(RemoteError::Refused {
                addr: client.addr,
                refusal,
            }),
            other => Err(client.unexpected("Hello", &other)),
        }
    }

    /// One request/response exchange on the framed stream.
    fn call(&mut self, req: &Request) -> Result<Response, RemoteError> {
        frame::write_frame(&mut self.conn, &proto::encode_request(req))
            .map_err(|e| self.classify(e))?;
        let payload = frame::read_frame(&mut self.conn).map_err(|e| self.classify(e))?;
        proto::decode_response(&payload).map_err(|detail| RemoteError::Protocol {
            addr: self.addr.clone(),
            detail,
        })
    }

    /// Maps a frame-layer failure to the typed remote error.
    fn classify(&self, e: FrameError) -> RemoteError {
        let addr = self.addr.clone();
        match e {
            FrameError::Io(e)
                if matches!(
                    e.kind(),
                    io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
                ) =>
            {
                RemoteError::Timeout { addr }
            }
            FrameError::Io(e) => RemoteError::Io {
                addr,
                detail: e.to_string(),
            },
            FrameError::Closed => RemoteError::Io {
                addr,
                detail: "connection closed mid-exchange".to_owned(),
            },
            FrameError::Torn { got, wanted } => RemoteError::Io {
                addr,
                detail: format!("torn frame ({got} of {wanted} bytes)"),
            },
            FrameError::Corrupt { detail } => RemoteError::Corrupt { addr, detail },
        }
    }

    fn unexpected(&self, wanted: &str, got: &Response) -> RemoteError {
        RemoteError::Protocol {
            addr: self.addr.clone(),
            detail: format!("expected a {wanted} response, got {got:?}"),
        }
    }
}

/// Per-shard connection lane: the client (None = marked down) plus how
/// much of the master vocabulary the shard has acknowledged interning.
struct Lane {
    client: Option<ShardClient>,
    synced_labels: usize,
    synced_attrs: usize,
}

/// Where a member lives, plus the shards holding a ghost replica
/// (shard-local ids stay server-side).
struct NetMember {
    home: u32,
    ghosts: Vec<u32>,
}

/// Work census of one remote fixpoint, folded into [`ReadStats`].
#[derive(Clone, Copy, Debug, Default)]
struct NetStats {
    fixpoints: usize,
    rounds: usize,
    states_expanded: usize,
    exported_states: usize,
    /// Shared-trie automaton states (zero in grouped mode).
    plan_states: usize,
    /// One-chain-per-condition automaton states (zero in grouped mode).
    expr_states: usize,
}

/// Result of one remote round on one shard.
struct RoundOutcome {
    matched: Vec<proto::WireMatch>,
    exports: Vec<MaskedExport>,
    hit: Option<(u16, u32)>,
    states_expanded: u64,
}

/// The networked deployment's router (see the module docs).
pub struct NetworkedSystem {
    assignment: ShardAssignment,
    /// Shard endpoints; retargetable so a shard restarted on a new
    /// ephemeral port can be re-registered ([`NetworkedSystem::retarget`]).
    addrs: Vec<Mutex<ShardAddr>>,
    lanes: Vec<Mutex<Lane>>,
    /// Master vocabulary; every shard interns the same names in the
    /// same order (`Intern` requests), so `LabelId`/`AttrKey` values
    /// agree fleet-wide.
    vocab: Vocabulary,
    members: Vec<NetMember>,
    names: Vec<String>,
    name_lookup: HashMap<String, NodeId>,
    /// Current attribute tuple per member, kept to materialize ghost
    /// replicas with the right predicate state.
    attrs: Vec<Vec<(String, AttrValue)>>,
    store: PolicyStore,
    boundary: BoundaryTable,
    edges: Vec<(NodeId, LabelId, NodeId)>,
    /// Per-shard committed history `(epoch, ops)` — the revival replay
    /// source for shards that missed commits.
    oplog: Vec<Vec<(u64, Vec<ShardOp>)>>,
    epoch: u64,
    cache: RwLock<HashMap<(ResourceId, NodeId), Decision>>,
    hits: AtomicU64,
    misses: AtomicU64,
    eval_counter: AtomicU64,
    read_timeout: Duration,
}

impl NetworkedSystem {
    /// Connects to a fleet of (fresh, epoch-0) shard servers with
    /// hash placement seeded by `seed`.
    pub fn connect(addrs: &[ShardAddr], seed: u64) -> Result<NetworkedSystem, RemoteError> {
        Self::with_assignment(addrs, ShardAssignment::hashed(addrs.len() as u32, seed))
    }

    /// [`NetworkedSystem::connect`] with an explicit placement
    /// function (must agree with the fleet size).
    pub fn with_assignment(
        addrs: &[ShardAddr],
        assignment: ShardAssignment,
    ) -> Result<NetworkedSystem, RemoteError> {
        assert_eq!(
            addrs.len(),
            assignment.shards() as usize,
            "one endpoint per shard of the placement"
        );
        let n = addrs.len();
        let sys = NetworkedSystem {
            assignment,
            addrs: addrs.iter().cloned().map(Mutex::new).collect(),
            lanes: (0..n)
                .map(|_| {
                    Mutex::new(Lane {
                        client: None,
                        synced_labels: 0,
                        synced_attrs: 0,
                    })
                })
                .collect(),
            vocab: Vocabulary::new(),
            members: Vec::new(),
            names: Vec::new(),
            name_lookup: HashMap::new(),
            attrs: Vec::new(),
            store: PolicyStore::new(),
            boundary: BoundaryTable::new(n as u32),
            edges: Vec::new(),
            oplog: vec![Vec::new(); n],
            epoch: 0,
            cache: RwLock::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            eval_counter: AtomicU64::new(1),
            read_timeout: DEFAULT_READ_TIMEOUT,
        };
        for shard in 0..n {
            sys.revive(shard)?;
        }
        Ok(sys)
    }

    /// Ingests an existing graph + policy store: same member ids
    /// (insertion order), same label/attr ids, same edge order — the
    /// conformance suites build networked twins of in-process systems
    /// with this.
    pub fn from_graph(
        addrs: &[ShardAddr],
        assignment: ShardAssignment,
        g: &SocialGraph,
        store: PolicyStore,
    ) -> Result<NetworkedSystem, RemoteError> {
        let mut sys = Self::with_assignment(addrs, assignment)?;
        for (_, name) in g.vocab().labels() {
            sys.vocab.intern_label(name);
        }
        for i in 0..g.vocab().num_attrs() {
            sys.vocab.intern_attr(
                g.vocab()
                    .attr_name(socialreach_graph::AttrKey::from_index(i)),
            );
        }
        for v in g.nodes() {
            let global = sys.try_add_user(g.node_name(v))?;
            debug_assert_eq!(global, v, "ingestion preserves member ids");
            for (k, val) in g.node_attrs(v).iter() {
                sys.try_set_user_attr(global, g.vocab().attr_name(k), val.clone())?;
            }
        }
        for (_, rec) in g.edges() {
            sys.try_connect(rec.src, g.vocab().label_name(rec.label), rec.dst)?;
        }
        sys.store = store;
        Ok(sys)
    }

    /// Sets the per-exchange read timeout on future connections (tests
    /// shrink it to exercise the stall path). Existing connections are
    /// dropped so the new patience applies immediately.
    pub fn set_read_timeout(&mut self, timeout: Duration) {
        self.read_timeout = timeout;
        for lane in &self.lanes {
            lane.lock().client = None;
        }
    }

    /// Re-registers a shard's endpoint (a restarted server usually
    /// lands on a new ephemeral port) and drops the old connection;
    /// the next exchange re-dials and replays the op log.
    pub fn retarget(&self, shard: usize, addr: ShardAddr) {
        *self.addrs[shard].lock() = addr;
        self.lanes[shard].lock().client = None;
    }

    /// The placement function.
    pub fn assignment(&self) -> &ShardAssignment {
        &self.assignment
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.lanes.len()
    }

    /// The fleet's current epoch (every committed mutation batch
    /// advanced it by one).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Master vocabulary (labels + attribute keys).
    pub fn vocab(&self) -> &Vocabulary {
        &self.vocab
    }

    /// Read-only view of the policy store.
    pub fn store(&self) -> &PolicyStore {
        &self.store
    }

    /// Adopts a policy store built against the same member ids.
    pub fn adopt_store(&mut self, store: PolicyStore) {
        self.cache.get_mut().clear();
        self.store = store;
    }

    /// Display name of a member.
    pub fn member_name(&self, member: NodeId) -> &str {
        &self.names[member.index()]
    }

    /// The home shard of a member.
    pub fn member_shard(&self, member: NodeId) -> u32 {
        self.members[member.index()].home
    }

    /// Looks a member up by name (first registered wins).
    pub fn user(&self, name: &str) -> Result<NodeId, EvalError> {
        self.name_lookup
            .get(name)
            .copied()
            .ok_or_else(|| socialreach_graph::GraphError::UnknownName(name.to_owned()).into())
    }

    /// Live size census of every shard (`(members, ghosts, edges,
    /// epoch)` per shard), fetched over the wire.
    pub fn shard_census(&self) -> Result<Vec<(u64, u64, u64, u64)>, RemoteError> {
        (0..self.lanes.len())
            .map(|shard| match self.call_reviving(shard, &Request::Census)? {
                Response::Census {
                    members,
                    ghosts,
                    edges,
                    epoch,
                } => Ok((members, ghosts, edges, epoch)),
                other => Err(self.unexpected(shard, "Census", &other)),
            })
            .collect()
    }

    /// Asks every shard process to shut down (best-effort; used by the
    /// CLI drill for a clean fleet teardown).
    pub fn shutdown_fleet(&self) {
        for shard in 0..self.lanes.len() {
            let _ = self.call_shard(shard, &Request::Shutdown);
        }
    }

    // ------------------------------------------------------------------
    // Connection management
    // ------------------------------------------------------------------

    /// One exchange with a shard. A transport failure marks the lane
    /// down (the connection cannot be trusted mid-stream); a typed
    /// refusal keeps it (the stream is still framed correctly).
    fn call_shard(&self, shard: usize, req: &Request) -> Result<Response, RemoteError> {
        let mut lane = self.lanes[shard].lock();
        let Some(client) = lane.client.as_mut() else {
            return Err(RemoteError::ShardDown {
                shard: shard as u32,
            });
        };
        match client.call(req) {
            Ok(Response::Refused(refusal)) => Err(RemoteError::Refused {
                addr: client.addr.clone(),
                refusal,
            }),
            Ok(resp) => Ok(resp),
            Err(e) => {
                lane.client = None;
                Err(e)
            }
        }
    }

    /// [`NetworkedSystem::call_shard`] with one revive-and-retry on a
    /// retryable failure. Only safe for requests that are idempotent
    /// across a shard restart (`Intern`, `Prepare`, `Commit`, `Abort`,
    /// `Census`, `Shutdown`) — evaluation requests retry at the
    /// whole-read level instead, with fresh evaluation ids.
    fn call_reviving(&self, shard: usize, req: &Request) -> Result<Response, RemoteError> {
        match self.call_shard(shard, req) {
            Err(e) if e.retryable() => {
                self.revive(shard)?;
                self.call_shard(shard, req)
            }
            other => other,
        }
    }

    /// (Re-)dials a shard, interns the full vocabulary, and replays
    /// any committed epochs the shard missed (a restarted process
    /// reports epoch 0 and receives the whole op log as one jumped
    /// prepare+commit).
    fn revive(&self, shard: usize) -> Result<(), RemoteError> {
        let addr = self.addrs[shard].lock().clone();
        let mut lane = self.lanes[shard].lock();
        let (mut client, shard_epoch) = ShardClient::connect(&addr, self.read_timeout)?;
        if shard_epoch > self.epoch {
            return Err(RemoteError::Protocol {
                addr: client.addr,
                detail: format!(
                    "shard is at epoch {shard_epoch}, ahead of the router's {} — refusing to \
                     adopt a fleet this router did not populate",
                    self.epoch
                ),
            });
        }
        let labels: Vec<String> = (0..self.vocab.num_labels())
            .map(|i| self.vocab.label_name(LabelId::from_index(i)).to_owned())
            .collect();
        let attrs: Vec<String> = (0..self.vocab.num_attrs())
            .map(|i| {
                self.vocab
                    .attr_name(socialreach_graph::AttrKey::from_index(i))
                    .to_owned()
            })
            .collect();
        let (synced_labels, synced_attrs) = (labels.len(), attrs.len());
        match client.call(&Request::Intern { labels, attrs })? {
            Response::Ok => {}
            Response::Refused(refusal) => {
                return Err(RemoteError::Refused {
                    addr: client.addr,
                    refusal,
                })
            }
            other => return Err(client.unexpected("Ok", &other)),
        }
        if shard_epoch < self.epoch {
            // A presumed-committed epoch may still be staged from
            // before the crash of the *connection* (server alive, the
            // commit lost): clear it, then replay everything missed as
            // one jumped epoch.
            match client.call(&Request::Abort { epoch: self.epoch })? {
                Response::Aborted { .. } => {}
                Response::Refused(refusal) => {
                    return Err(RemoteError::Refused {
                        addr: client.addr,
                        refusal,
                    })
                }
                other => return Err(client.unexpected("Aborted", &other)),
            }
            let ops: Vec<ShardOp> = self.oplog[shard]
                .iter()
                .filter(|(e, _)| *e > shard_epoch)
                .flat_map(|(_, ops)| ops.iter().cloned())
                .collect();
            match client.call(&Request::Prepare {
                epoch: self.epoch,
                ops,
            })? {
                Response::Prepared { .. } => {}
                Response::Refused(refusal) => {
                    return Err(RemoteError::Refused {
                        addr: client.addr,
                        refusal,
                    })
                }
                other => return Err(client.unexpected("Prepared", &other)),
            }
            match client.call(&Request::Commit { epoch: self.epoch })? {
                Response::Committed { .. } => {}
                Response::Refused(refusal) => {
                    return Err(RemoteError::Refused {
                        addr: client.addr,
                        refusal,
                    })
                }
                other => return Err(client.unexpected("Committed", &other)),
            }
        }
        lane.client = Some(client);
        lane.synced_labels = synced_labels;
        lane.synced_attrs = synced_attrs;
        Ok(())
    }

    /// Brings every down lane back up, best-effort (the whole-read
    /// retry path; individual failures surface on the retried calls).
    fn revive_down_lanes(&self) {
        for shard in 0..self.lanes.len() {
            if self.lanes[shard].lock().client.is_none() {
                let _ = self.revive(shard);
            }
        }
    }

    /// Sends the master-vocabulary suffix a shard has not acknowledged
    /// yet (no-op when in sync). Reads call this lazily before opening
    /// an evaluation, so vocabulary grown by `allow`/`parse` (which
    /// touch no shard) reaches the fleet.
    fn ensure_vocab(&self, shard: usize) -> Result<(), RemoteError> {
        let mut lane = self.lanes[shard].lock();
        let (have_l, have_a) = (lane.synced_labels, lane.synced_attrs);
        let (want_l, want_a) = (self.vocab.num_labels(), self.vocab.num_attrs());
        if have_l == want_l && have_a == want_a {
            return Ok(());
        }
        let Some(client) = lane.client.as_mut() else {
            return Err(RemoteError::ShardDown {
                shard: shard as u32,
            });
        };
        let labels: Vec<String> = (have_l..want_l)
            .map(|i| self.vocab.label_name(LabelId::from_index(i)).to_owned())
            .collect();
        let attrs: Vec<String> = (have_a..want_a)
            .map(|i| {
                self.vocab
                    .attr_name(socialreach_graph::AttrKey::from_index(i))
                    .to_owned()
            })
            .collect();
        match client.call(&Request::Intern { labels, attrs }) {
            Ok(Response::Ok) => {
                lane.synced_labels = want_l;
                lane.synced_attrs = want_a;
                Ok(())
            }
            Ok(Response::Refused(refusal)) => Err(RemoteError::Refused {
                addr: client.addr.clone(),
                refusal,
            }),
            Ok(other) => Err(client.unexpected("Ok", &other)),
            Err(e) => {
                lane.client = None;
                Err(e)
            }
        }
    }

    fn unexpected(&self, shard: usize, wanted: &str, got: &Response) -> RemoteError {
        RemoteError::Protocol {
            addr: self.addrs[shard].lock().to_string(),
            detail: format!("expected a {wanted} response, got {got:?}"),
        }
    }

    // ------------------------------------------------------------------
    // Mutations: the two-phase epoch fence
    // ------------------------------------------------------------------

    /// Commits one batch of per-shard ops as the next epoch, or rolls
    /// it back. On `Ok` every shard either applied the epoch or is
    /// marked down with the epoch in its replay log; on `Err` no shard
    /// applied it (prepares staged before the failure are aborted) and
    /// the router's state is untouched.
    fn commit_ops(&mut self, per_shard: Vec<Vec<ShardOp>>) -> Result<(), RemoteError> {
        debug_assert_eq!(per_shard.len(), self.lanes.len());
        let epoch = self.epoch + 1;
        // Vocabulary first: prepare validation refuses ops naming
        // labels/attrs the shard has not interned.
        for shard in 0..self.lanes.len() {
            if let Err(e) = self.ensure_vocab(shard) {
                if !e.retryable() {
                    return Err(e);
                }
                self.revive(shard)?;
                self.ensure_vocab(shard)?;
            }
        }
        // Phase one: stage everywhere (every shard participates, even
        // with no ops — the epoch fence requires the whole fleet to
        // advance together).
        let mut prepared: Vec<usize> = Vec::new();
        for (shard, ops) in per_shard.iter().enumerate() {
            let req = Request::Prepare {
                epoch,
                ops: ops.clone(),
            };
            match self.call_reviving(shard, &req) {
                Ok(Response::Prepared { .. }) => prepared.push(shard),
                Ok(other) => {
                    let err = self.unexpected(shard, "Prepared", &other);
                    self.abort_prepared(&prepared, epoch);
                    return Err(err);
                }
                Err(e) => {
                    self.abort_prepared(&prepared, epoch);
                    return Err(e);
                }
            }
        }
        // Point of no return: every shard holds the staged epoch, so
        // it is presumed committed — record it for replay *before*
        // sending commits, then advance.
        for (shard, ops) in per_shard.into_iter().enumerate() {
            self.oplog[shard].push((epoch, ops));
        }
        self.epoch = epoch;
        // Phase two: publish. A shard whose commit is lost is marked
        // down by `call_shard` and healed by the op-log replay on its
        // next revival — it can never serve the old epoch to a read,
        // because `BeginEval` carries the new epoch.
        for shard in 0..self.lanes.len() {
            match self.call_reviving(shard, &Request::Commit { epoch }) {
                Ok(Response::Committed { .. }) | Err(_) => {}
                Ok(other) => {
                    // Treat as a lost commit: drop the lane, heal later.
                    let _ = self.unexpected(shard, "Committed", &other);
                    self.lanes[shard].lock().client = None;
                }
            }
        }
        self.cache.get_mut().clear();
        Ok(())
    }

    fn abort_prepared(&self, prepared: &[usize], epoch: u64) {
        for &shard in prepared {
            let _ = self.call_shard(shard, &Request::Abort { epoch });
        }
    }

    /// Registers a member on their hash-assigned home shard.
    pub fn try_add_user(&mut self, name: &str) -> Result<NodeId, RemoteError> {
        let global = NodeId::from_index(self.members.len());
        let home = self.assignment.shard_of(name);
        let mut per_shard = vec![Vec::new(); self.lanes.len()];
        per_shard[home as usize].push(ShardOp::AddNode {
            global: global.0,
            name: name.to_owned(),
            ghost: false,
        });
        self.commit_ops(per_shard)?;
        self.members.push(NetMember {
            home,
            ghosts: Vec::new(),
        });
        self.names.push(name.to_owned());
        self.name_lookup.entry(name.to_owned()).or_insert(global);
        self.attrs.push(Vec::new());
        Ok(global)
    }

    /// Sets a member attribute on the home copy and every ghost
    /// replica (predicates must evaluate identically on any shard the
    /// member appears on).
    pub fn try_set_user_attr(
        &mut self,
        member: NodeId,
        key: &str,
        value: AttrValue,
    ) -> Result<(), RemoteError> {
        self.vocab.intern_attr(key);
        let mut per_shard = vec![Vec::new(); self.lanes.len()];
        let entry = &self.members[member.index()];
        let op = ShardOp::SetAttr {
            global: member.0,
            key: key.to_owned(),
            value: value.clone(),
        };
        per_shard[entry.home as usize].push(op.clone());
        for &shard in &entry.ghosts {
            per_shard[shard as usize].push(op.clone());
        }
        self.commit_ops(per_shard)?;
        let tuple = &mut self.attrs[member.index()];
        match tuple.iter_mut().find(|(k, _)| k == key) {
            Some(slot) => slot.1 = value,
            None => tuple.push((key.to_owned(), value)),
        }
        Ok(())
    }

    /// Adds a directed relationship. Intra-shard edges land on the
    /// home shard; cross-shard edges are replicated into both endpoint
    /// shards against ghost replicas (materialized in the same epoch)
    /// and recorded in the boundary table.
    pub fn try_connect(
        &mut self,
        src: NodeId,
        label: &str,
        dst: NodeId,
    ) -> Result<(), RemoteError> {
        let l = self.vocab.intern_label(label);
        let s_home = self.members[src.index()].home;
        let d_home = self.members[dst.index()].home;
        let mut per_shard = vec![Vec::new(); self.lanes.len()];
        let edge = |shard_ops: &mut Vec<ShardOp>| {
            shard_ops.push(ShardOp::AddEdge {
                src: src.0,
                label: label.to_owned(),
                dst: dst.0,
            });
        };
        let mut new_ghosts: Vec<(NodeId, u32)> = Vec::new();
        if s_home == d_home {
            edge(&mut per_shard[s_home as usize]);
        } else {
            for (member, shard) in [(dst, s_home), (src, d_home)] {
                if !self.members[member.index()].ghosts.contains(&shard) {
                    let ops = &mut per_shard[shard as usize];
                    ops.push(ShardOp::AddNode {
                        global: member.0,
                        name: self.names[member.index()].clone(),
                        ghost: true,
                    });
                    for (key, value) in &self.attrs[member.index()] {
                        ops.push(ShardOp::SetAttr {
                            global: member.0,
                            key: key.clone(),
                            value: value.clone(),
                        });
                    }
                    new_ghosts.push((member, shard));
                }
            }
            edge(&mut per_shard[s_home as usize]);
            edge(&mut per_shard[d_home as usize]);
        }
        self.commit_ops(per_shard)?;
        for (member, shard) in new_ghosts {
            self.members[member.index()].ghosts.push(shard);
        }
        if s_home != d_home {
            self.boundary.record(BoundaryEdge {
                src: src.0,
                dst: dst.0,
                label: l,
                src_shard: s_home,
                dst_shard: d_home,
            });
        }
        self.edges.push((src, l, dst));
        Ok(())
    }

    /// Registers a resource owned by `owner` (router-local: policy
    /// lives at the router, only topology is sharded).
    pub fn share(&mut self, owner: NodeId) -> ResourceId {
        self.cache.get_mut().clear();
        self.store.register_resource(owner)
    }

    /// Attaches a single-condition rule parsed from `path_text` — in
    /// either syntax, classic path notation or the openCypher-flavored
    /// `MATCH` grammar ([`crate::query::parse_policy`]).
    pub fn allow(&mut self, rid: ResourceId, path_text: &str) -> Result<(), EvalError> {
        self.cache.get_mut().clear();
        let owner = self.store.owner_of(rid)?;
        let path = crate::query::parse_policy(path_text, &mut self.vocab)?;
        self.store.add_rule(crate::policy::AccessRule {
            resource: rid,
            conditions: vec![crate::policy::AccessCondition { owner, path }],
        })
    }

    // ------------------------------------------------------------------
    // Reads: the remote masked fixpoint
    // ------------------------------------------------------------------

    /// Runs a read closure with one whole-read retry: on a retryable
    /// transport failure every down shard is revived (op-log replay
    /// included) and the closure re-runs with fresh evaluation ids.
    /// Non-retryable failures (corrupt frames, protocol violations,
    /// semantic refusals) surface immediately — never a wrong answer.
    fn with_read_retry<T>(&self, f: impl Fn() -> Result<T, RemoteError>) -> Result<T, EvalError> {
        match f() {
            Ok(v) => Ok(v),
            Err(e) if e.retryable() => {
                self.revive_down_lanes();
                f().map_err(EvalError::Remote)
            }
            Err(e) => Err(EvalError::Remote(e)),
        }
    }

    /// Opens the evaluation on a shard if this is its first activation
    /// (delivering the prebuilt `begin` request — `BeginEval` for the
    /// linear engine, `BeginEvalPlan` for the shared-trie plan), then
    /// delivers the seeds in [`MAX_ROUND_EXPORTS`]-sized sub-batches
    /// (at most one frame in flight per shard). Returns the merged
    /// outcome; an early-exit hit stops further delivery.
    fn shard_round(
        &self,
        shard: usize,
        eval: u64,
        begun: &mut bool,
        seeds: &[MaskedExport],
        begin: &Request,
        stop: Option<u32>,
    ) -> Result<RoundOutcome, RemoteError> {
        if !*begun {
            self.ensure_vocab(shard)?;
            match self.call_shard(shard, begin)? {
                Response::EvalOpen { .. } => *begun = true,
                other => return Err(self.unexpected(shard, "EvalOpen", &other)),
            }
        }
        let mut out = RoundOutcome {
            matched: Vec::new(),
            exports: Vec::new(),
            hit: None,
            states_expanded: 0,
        };
        for chunk in seeds.chunks(MAX_ROUND_EXPORTS) {
            let req = Request::Round {
                eval,
                seeds: chunk.to_vec(),
                stop,
            };
            match self.call_shard(shard, &req)? {
                Response::Round {
                    matched,
                    exports,
                    hit,
                    states_expanded,
                } => {
                    out.matched.extend(matched);
                    out.exports.extend(exports);
                    out.states_expanded += states_expanded;
                    if hit.is_some() {
                        out.hit = hit;
                        break;
                    }
                }
                other => return Err(self.unexpected(shard, "Round", &other)),
            }
        }
        Ok(out)
    }

    /// One fixpoint round across the active shards — on parallel
    /// scoped threads when several shards are active and the host has
    /// real cores (each thread owns its shard's lane lock), inline
    /// otherwise. Mirrors the in-process driver's fan-out policy.
    fn run_remote_round(
        &self,
        round: &[(usize, Vec<MaskedExport>)],
        begun: &mut [bool],
        eval: u64,
        begin: &Request,
        stop: Option<(usize, u32)>,
    ) -> Result<Vec<RoundOutcome>, RemoteError> {
        let eval_one = |shard: usize, seeds: &[MaskedExport], begun: &mut bool| {
            self.shard_round(
                shard,
                eval,
                begun,
                seeds,
                begin,
                stop.filter(|&(s, _)| s == shard).map(|(_, m)| m),
            )
        };
        static CORES: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
        let cores = *CORES.get_or_init(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
        if round.len() == 1 || cores == 1 {
            let mut outs = Vec::with_capacity(round.len());
            for (shard, seeds) in round {
                outs.push(eval_one(*shard, seeds, &mut begun[*shard])?);
            }
            return Ok(outs);
        }
        // Disjoint &mut begun[shard] borrows for the scoped threads.
        let mut slots: Vec<(usize, &Vec<MaskedExport>, &mut bool)> =
            Vec::with_capacity(round.len());
        let mut it = begun.iter_mut().enumerate();
        for (shard, seeds) in round {
            let flag = loop {
                let (i, b) = it.next().expect("round is in ascending shard order");
                if i == *shard {
                    break b;
                }
            };
            slots.push((*shard, seeds, flag));
        }
        std::thread::scope(|scope| {
            let eval_one = &eval_one;
            let handles: Vec<_> = slots
                .into_iter()
                .map(|(shard, seeds, flag)| scope.spawn(move || eval_one(shard, seeds, flag)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard round panicked"))
                .collect()
        })
    }

    /// Closes an evaluation on every shard it was opened on
    /// (best-effort: a dead shard's sessions died with it).
    fn end_eval(&self, eval: u64, begun: &[bool]) {
        for (shard, b) in begun.iter().enumerate() {
            if *b {
                let _ = self.call_shard(shard, &Request::EndEval { eval });
            }
        }
    }

    /// The batched bundle fixpoint over the wire — the exact algorithm
    /// of [`crate::sharded::ShardedSystem::evaluate_conditions_batched`]
    /// with `Round` exchanges in place of in-process seeded runs:
    /// conditions group by path, each group's owners traverse as
    /// condition bits (64 per word chunk), the router forwards only
    /// **new** bits between shards ([`MaskedExportSet`]), and merging
    /// happens in shard order for determinism.
    fn evaluate_conditions_batched(
        &self,
        conds: &[(NodeId, &PathExpr)],
    ) -> Result<(Vec<Vec<NodeId>>, NetStats), RemoteError> {
        if !crate::query::grouped_plan_forced() {
            let paths: Vec<&PathExpr> = conds.iter().map(|&(_, p)| p).collect();
            if let Some(plan) = crate::query::BundlePlan::compile(&paths) {
                return self.evaluate_conditions_planned(conds, &plan);
            }
        }
        let n = self.lanes.len();
        let mut stats = NetStats::default();
        let mut audiences: Vec<Vec<NodeId>> = vec![Vec::new(); conds.len()];
        let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
        for (i, &(_, path)) in conds.iter().enumerate() {
            match groups.iter_mut().find(|(rep, _)| conds[*rep].1 == path) {
                Some((_, members)) => members.push(i),
                None => groups.push((i, vec![i])),
            }
        }
        for (rep, members) in groups {
            let path = conds[rep].1;
            if path.is_empty() {
                for &ci in &members {
                    audiences[ci] = vec![conds[ci].0];
                }
                continue;
            }
            let path_text = path.to_text(&self.vocab);
            let mut imported = MaskedExportSet::new();
            for (word, chunk) in members.chunks(64).enumerate() {
                let word = word as u32;
                stats.fixpoints += 1;
                let eval = self.eval_counter.fetch_add(1, Ordering::Relaxed);
                let begin = Request::BeginEval {
                    eval,
                    epoch: self.epoch,
                    path: path_text.clone(),
                    word,
                    parents: false,
                };
                let mut begun = vec![false; n];
                let mut pending: Vec<Vec<MaskedExport>> = vec![Vec::new(); n];
                for (bit, &ci) in chunk.iter().enumerate() {
                    let owner = conds[ci].0;
                    let key = MaskedStateKey {
                        member: owner.0,
                        step: 0,
                        depth: 0,
                        word,
                    };
                    imported.insert(key, 1 << bit);
                    pending[self.members[owner.index()].home as usize].push(MaskedExport {
                        key,
                        mask: 1 << bit,
                    });
                }
                let result = (|| loop {
                    let round: Vec<(usize, Vec<MaskedExport>)> = pending
                        .iter_mut()
                        .enumerate()
                        .filter(|(_, seeds)| !seeds.is_empty())
                        .map(|(i, seeds)| (i, std::mem::take(seeds)))
                        .collect();
                    if round.is_empty() {
                        return Ok(());
                    }
                    stats.rounds += 1;
                    let outs = self.run_remote_round(&round, &mut begun, eval, &begin, None)?;
                    for ((_, _), out) in round.iter().zip(outs) {
                        for m in &out.matched {
                            let mut b = m.mask;
                            while b != 0 {
                                let bit = b.trailing_zeros() as usize;
                                b &= b - 1;
                                audiences[chunk[bit]].push(NodeId(m.member));
                            }
                        }
                        for exp in &out.exports {
                            let new = imported.insert(exp.key, exp.mask);
                            if new != 0 {
                                stats.exported_states += 1;
                                let home = self.members[exp.key.member as usize].home as usize;
                                pending[home].push(MaskedExport {
                                    key: exp.key,
                                    mask: new,
                                });
                            }
                        }
                        stats.states_expanded += out.states_expanded as usize;
                    }
                })();
                self.end_eval(eval, &begun);
                result?;
            }
        }
        for audience in &mut audiences {
            audience.sort_unstable();
            audience.dedup();
        }
        Ok((audiences, stats))
    }

    /// The shared-prefix bundle fixpoint over the wire: the router
    /// compiles the bundle into one [`crate::query::BundlePlan`] trie
    /// and ships it to every shard as a [`Request::BeginEvalPlan`]
    /// (plan nodes travel as canonical one-step path text plus the
    /// chunk's ε-fork/accept masks), so each shared prefix is entered
    /// once per shard and condition masks fork where paths diverge.
    /// Round exchanges, new-bit forwarding, and shard-order merging are
    /// identical to the grouped path — only the per-group traversals
    /// collapse into one per 64-condition chunk.
    fn evaluate_conditions_planned(
        &self,
        conds: &[(NodeId, &PathExpr)],
        plan: &crate::query::BundlePlan,
    ) -> Result<(Vec<Vec<NodeId>>, NetStats), RemoteError> {
        let n = self.lanes.len();
        let mut stats = NetStats {
            plan_states: plan.plan_states(),
            expr_states: plan.expr_states(),
            ..NetStats::default()
        };
        let mut audiences: Vec<Vec<NodeId>> = vec![Vec::new(); conds.len()];
        let mut traversable: Vec<usize> = Vec::new();
        for (i, &(owner, _)) in conds.iter().enumerate() {
            match plan.root_of(i) {
                Some(_) => traversable.push(i),
                None => audiences[i].push(owner), // empty path: owner only
            }
        }
        if traversable.is_empty() {
            return Ok((audiences, stats));
        }
        // Bits already forwarded, shared across the chunks (the word
        // index keys them apart).
        let mut imported = MaskedExportSet::new();
        for (word, chunk) in traversable.chunks(64).enumerate() {
            let word = word as u32;
            stats.fixpoints += 1;
            let masks = plan.chunk_masks(chunk);
            let eval = self.eval_counter.fetch_add(1, Ordering::Relaxed);
            let nodes: Vec<proto::WirePlanNode> = plan
                .nodes
                .iter()
                .enumerate()
                .map(|(i, node)| proto::WirePlanNode {
                    step: PathExpr::new(vec![node.step.clone()]).to_text(&self.vocab),
                    children: node.children.clone(),
                    mask: masks.node_mask[i],
                    accept: masks.accept_mask[i],
                })
                .collect();
            let begin = Request::BeginEvalPlan {
                eval,
                epoch: self.epoch,
                nodes,
                word,
            };
            let mut begun = vec![false; n];
            let mut pending: Vec<Vec<MaskedExport>> = vec![Vec::new(); n];
            for (bit, &ci) in chunk.iter().enumerate() {
                let owner = conds[ci].0;
                let root = plan.root_of(ci).expect("traversable condition");
                let key = MaskedStateKey {
                    member: owner.0,
                    step: root,
                    depth: 0,
                    word,
                };
                imported.insert(key, 1 << bit);
                pending[self.members[owner.index()].home as usize].push(MaskedExport {
                    key,
                    mask: 1 << bit,
                });
            }
            let result = (|| loop {
                let round: Vec<(usize, Vec<MaskedExport>)> = pending
                    .iter_mut()
                    .enumerate()
                    .filter(|(_, seeds)| !seeds.is_empty())
                    .map(|(i, seeds)| (i, std::mem::take(seeds)))
                    .collect();
                if round.is_empty() {
                    return Ok(());
                }
                stats.rounds += 1;
                let outs = self.run_remote_round(&round, &mut begun, eval, &begin, None)?;
                for ((_, _), out) in round.iter().zip(outs) {
                    for m in &out.matched {
                        let mut b = m.mask;
                        while b != 0 {
                            let bit = b.trailing_zeros() as usize;
                            b &= b - 1;
                            audiences[chunk[bit]].push(NodeId(m.member));
                        }
                    }
                    for exp in &out.exports {
                        let new = imported.insert(exp.key, exp.mask);
                        if new != 0 {
                            stats.exported_states += 1;
                            let home = self.members[exp.key.member as usize].home as usize;
                            pending[home].push(MaskedExport {
                                key: exp.key,
                                mask: new,
                            });
                        }
                    }
                    stats.states_expanded += out.states_expanded as usize;
                }
            })();
            self.end_eval(eval, &begun);
            result?;
        }
        for audience in &mut audiences {
            audience.sort_unstable();
            audience.dedup();
        }
        Ok((audiences, stats))
    }

    /// The targeted single-condition fixpoint over the wire (the
    /// `check`/`explain` path): a 1-bit bundle with first-arrival
    /// parent tracking on every shard engine, early exit on the
    /// requester's home shard, and the witness stitched from remote
    /// `Trace` segments. Mirrors
    /// [`crate::sharded::ShardedSystem::evaluate_condition_targeted_with_stats`].
    fn evaluate_condition_targeted(
        &self,
        owner: NodeId,
        path: &PathExpr,
        requester: NodeId,
        want_witness: bool,
    ) -> Result<(Option<Vec<WalkHop>>, NetStats), RemoteError> {
        let _ = want_witness; // the stitch is cheap; always produced on a hit
        let mut stats = NetStats {
            fixpoints: 1,
            ..NetStats::default()
        };
        if path.is_empty() {
            return Ok(((requester == owner).then(Vec::new), stats));
        }
        let n = self.lanes.len();
        let path_text = path.to_text(&self.vocab);
        let eval = self.eval_counter.fetch_add(1, Ordering::Relaxed);
        let begin = Request::BeginEval {
            eval,
            epoch: self.epoch,
            path: path_text.clone(),
            word: 0,
            parents: true,
        };
        let mut begun = vec![false; n];
        let stop = (self.members[requester.index()].home as usize, requester.0);
        let mut imported = MaskedExportSet::new();
        let mut origin: HashMap<StateKey, usize> = HashMap::new();
        let mut pending: Vec<Vec<MaskedExport>> = vec![Vec::new(); n];
        let owner_key = MaskedStateKey {
            member: owner.0,
            step: 0,
            depth: 0,
            word: 0,
        };
        imported.insert(owner_key, 1);
        pending[self.members[owner.index()].home as usize].push(MaskedExport {
            key: owner_key,
            mask: 1,
        });
        let result = (|| {
            let mut hit: Option<(usize, u16, u32)> = None;
            'fixpoint: loop {
                let round: Vec<(usize, Vec<MaskedExport>)> = pending
                    .iter_mut()
                    .enumerate()
                    .filter(|(_, seeds)| !seeds.is_empty())
                    .map(|(i, seeds)| (i, std::mem::take(seeds)))
                    .collect();
                if round.is_empty() {
                    break;
                }
                stats.rounds += 1;
                let outs = self.run_remote_round(&round, &mut begun, eval, &begin, Some(stop))?;
                for ((shard_ix, _), out) in round.iter().zip(outs) {
                    stats.states_expanded += out.states_expanded as usize;
                    if let Some((step, depth)) = out.hit {
                        // The granting chain consists of states seeded
                        // in earlier rounds, so `origin` already covers
                        // every hand-off the trace follows.
                        hit = Some((*shard_ix, step, depth));
                        break 'fixpoint;
                    }
                    for exp in &out.exports {
                        let new = imported.insert(exp.key, exp.mask);
                        if new != 0 {
                            stats.exported_states += 1;
                            origin.insert((exp.key.member, exp.key.step, exp.key.depth), *shard_ix);
                            let home = self.members[exp.key.member as usize].home as usize;
                            pending[home].push(MaskedExport {
                                key: exp.key,
                                mask: new,
                            });
                        }
                    }
                }
            }
            match hit {
                None => Ok(None),
                Some((shard_ix, step, depth)) => self
                    .stitch_remote(eval, &origin, owner, shard_ix, requester.0, step, depth)
                    .map(Some),
            }
        })();
        self.end_eval(eval, &begun);
        result.map(|witness| (witness, stats))
    }

    /// Stitches a targeted grant's witness from remote `Trace`
    /// segments: the hit shard's parent chain ends at a seed the
    /// router forwarded; `origin` names the exporting shard, where the
    /// chain continues (the member's copy there is its ghost replica)
    /// — until the owner seed terminates the walk.
    #[allow(clippy::too_many_arguments)]
    fn stitch_remote(
        &self,
        eval: u64,
        origin: &HashMap<StateKey, usize>,
        owner: NodeId,
        mut shard_ix: usize,
        mut member: u32,
        mut step: u16,
        mut depth: u32,
    ) -> Result<Vec<WalkHop>, RemoteError> {
        let mut segments: Vec<Vec<WalkHop>> = Vec::new();
        loop {
            let req = Request::Trace {
                eval,
                member,
                step,
                depth,
            };
            let (hops, seed_member, seed_step, seed_depth) =
                match self.call_shard(shard_ix, &req)? {
                    Response::Traced {
                        hops,
                        seed_member,
                        seed_step,
                        seed_depth,
                    } => (hops, seed_member, seed_step, seed_depth),
                    other => return Err(self.unexpected(shard_ix, "Traced", &other)),
                };
            segments.push(
                hops.iter()
                    .map(|h| WalkHop {
                        src: NodeId(h.src),
                        dst: NodeId(h.dst),
                        label: LabelId(h.label),
                        forward: h.forward,
                    })
                    .collect(),
            );
            if seed_member == owner.0 && seed_step == 0 && seed_depth == 0 {
                break;
            }
            shard_ix = *origin
                .get(&(seed_member, seed_step, seed_depth))
                .ok_or_else(|| RemoteError::Protocol {
                    addr: self.addrs[shard_ix].lock().to_string(),
                    detail: format!(
                        "trace reached seed (member {seed_member}, step {seed_step}, depth \
                         {seed_depth}) the router never forwarded"
                    ),
                })?;
            member = seed_member;
            step = seed_step;
            depth = seed_depth;
        }
        segments.reverse();
        Ok(segments.concat())
    }

    /// The per-condition bundle strategy: each deduped condition runs
    /// its own 1-bit batched fixpoint (fresh eval, fresh engines) —
    /// the planner's [`BundleStrategy::PerCondition`] arm.
    fn audience_per_condition(
        &self,
        conds: &[(NodeId, &PathExpr)],
    ) -> Result<(Vec<Vec<NodeId>>, NetStats), RemoteError> {
        let mut total = NetStats::default();
        let mut audiences = Vec::with_capacity(conds.len());
        for &cond in conds {
            let (mut auds, s) = self.evaluate_conditions_batched(&[cond])?;
            total.fixpoints += s.fixpoints;
            total.rounds += s.rounds;
            total.states_expanded += s.states_expanded;
            total.exported_states += s.exported_states;
            audiences.push(auds.pop().expect("one audience per condition"));
        }
        Ok((audiences, total))
    }

    /// Decides a batch by audience membership (the audience-plan arm
    /// shared with the in-process backends).
    fn check_batch_via_audiences(
        &self,
        requests: &[(ResourceId, NodeId)],
        strategy: BundleStrategy,
    ) -> Result<(Vec<Decision>, ReadStats), EvalError> {
        let mut stats = ReadStats::default();
        let mut decisions: Vec<Option<Decision>> = vec![None; requests.len()];
        let mut need: Vec<ResourceId> = Vec::new();
        let mut needed: HashSet<ResourceId> = HashSet::new();
        {
            let cache = self.cache.read();
            for (i, &(rid, req)) in requests.iter().enumerate() {
                let owner = self.store.owner_of(rid)?;
                if req == owner {
                    decisions[i] = Some(Decision::Grant);
                } else if let Some(&d) = cache.get(&(rid, req)) {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    decisions[i] = Some(d);
                } else {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    if needed.insert(rid) {
                        need.push(rid);
                    }
                }
            }
        }
        if !need.is_empty() {
            let (audiences, s) = AccessService::audience_batch_forced(self, &need, strategy)?;
            stats.absorb(&s);
            let by_rid: HashMap<ResourceId, &Vec<NodeId>> =
                need.iter().copied().zip(audiences.iter()).collect();
            let mut cache = self.cache.write();
            for (i, &(rid, req)) in requests.iter().enumerate() {
                if decisions[i].is_some() {
                    continue;
                }
                let d = if by_rid[&rid].binary_search(&req).is_ok() {
                    Decision::Grant
                } else {
                    Decision::Deny
                };
                cache.insert((rid, req), d);
                decisions[i] = Some(d);
            }
        }
        Ok((
            decisions
                .into_iter()
                .map(|d| d.expect("every request decided"))
                .collect(),
            stats,
        ))
    }
}

impl NetStats {
    fn into_read_stats(self, conditions: usize) -> ReadStats {
        ReadStats {
            conditions,
            traversals: self.fixpoints,
            rounds: self.rounds,
            states_expanded: self.states_expanded,
            exported_states: self.exported_states,
            plan_states: self.plan_states,
            expr_states: self.expr_states,
        }
    }
}

impl AccessService for NetworkedSystem {
    fn describe(&self) -> String {
        format!("networked(n={})", self.lanes.len())
    }

    fn num_members(&self) -> usize {
        self.members.len()
    }

    fn num_relationships(&self) -> usize {
        self.edges.len()
    }

    fn resolve_user(&self, name: &str) -> Result<NodeId, EvalError> {
        self.user(name)
    }

    fn member_name(&self, member: NodeId) -> &str {
        NetworkedSystem::member_name(self, member)
    }

    fn label_name(&self, label: LabelId) -> &str {
        self.vocab.label_name(label)
    }

    fn check(&self, rid: ResourceId, requester: NodeId) -> Result<Decision, EvalError> {
        Ok(self.check_with_stats(rid, requester)?.0)
    }

    fn check_batch(
        &self,
        requests: &[(ResourceId, NodeId)],
        threads: usize,
    ) -> Result<Vec<Decision>, EvalError> {
        Ok(self.check_batch_with_stats(requests, threads)?.0)
    }

    fn audience_batch_with_stats(
        &self,
        rids: &[ResourceId],
    ) -> Result<(Vec<Vec<NodeId>>, ReadStats), EvalError> {
        let mut stats = ReadStats::default();
        let audiences = crate::engine::merge_bundle_audiences(&self.store, rids, |uniq| {
            let (audiences, s) = self.with_read_retry(|| self.evaluate_conditions_batched(uniq))?;
            stats = s.into_read_stats(uniq.len());
            Ok(audiences)
        })?;
        Ok((audiences, stats))
    }

    fn query_audience_bundle(
        &self,
        queries: &[(NodeId, &str)],
    ) -> Result<Vec<Vec<NodeId>>, EvalError> {
        let texts: Vec<&str> = queries.iter().map(|&(_, t)| t).collect();
        let parsed = crate::query::parse_queries_readonly(&texts, &self.vocab)?;
        let mut out: Vec<Vec<NodeId>> = vec![Vec::new(); queries.len()];
        let mut conds: Vec<(NodeId, &PathExpr)> = Vec::new();
        let mut slots: Vec<usize> = Vec::new();
        for (i, path) in parsed.iter().enumerate() {
            if let Some(path) = path {
                conds.push((queries[i].0, path));
                slots.push(i);
            }
        }
        if conds.is_empty() {
            return Ok(out);
        }
        let (audiences, _) = self.with_read_retry(|| self.evaluate_conditions_batched(&conds))?;
        for (slot, audience) in slots.into_iter().zip(audiences) {
            out[slot] = audience;
        }
        Ok(out)
    }

    fn explain(
        &self,
        rid: ResourceId,
        requester: NodeId,
    ) -> Result<Option<Explanation>, EvalError> {
        Ok(self.explain_with_stats(rid, requester)?.0)
    }

    fn cache_stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    fn check_with_stats(
        &self,
        rid: ResourceId,
        requester: NodeId,
    ) -> Result<(Decision, ReadStats), EvalError> {
        let mut stats = ReadStats::default();
        let owner = self.store.owner_of(rid)?;
        if requester == owner {
            return Ok((Decision::Grant, stats));
        }
        if let Some(&d) = self.cache.read().get(&(rid, requester)) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((d, stats));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut decision = Decision::Deny;
        'rules: for rule in self.store.rules_for(rid) {
            if rule.conditions.is_empty() {
                continue;
            }
            for cond in &rule.conditions {
                let (witness, s) = self.with_read_retry(|| {
                    self.evaluate_condition_targeted(cond.owner, &cond.path, requester, false)
                })?;
                stats.absorb(&s.into_read_stats(1));
                if witness.is_none() {
                    continue 'rules;
                }
            }
            decision = Decision::Grant;
            break;
        }
        self.cache.write().insert((rid, requester), decision);
        Ok((decision, stats))
    }

    fn check_batch_with_stats(
        &self,
        requests: &[(ResourceId, NodeId)],
        threads: usize,
    ) -> Result<(Vec<Decision>, ReadStats), EvalError> {
        let _ = threads;
        if requests.len() == 1 {
            let (rid, req) = requests[0];
            let (d, s) = self.check_with_stats(rid, req)?;
            return Ok((vec![d], s));
        }
        self.check_batch_via_audiences(requests, BundleStrategy::Batched)
    }

    fn explain_with_stats(
        &self,
        rid: ResourceId,
        requester: NodeId,
    ) -> Result<(Option<Explanation>, ReadStats), EvalError> {
        let mut stats = ReadStats::default();
        let owner = self.store.owner_of(rid)?;
        if requester == owner {
            return Ok((Some(Explanation::Ownership { owner }), stats));
        }
        'rules: for rule in self.store.rules_for(rid) {
            if rule.conditions.is_empty() {
                continue;
            }
            let mut walks = Vec::new();
            for cond in &rule.conditions {
                let (witness, s) = self.with_read_retry(|| {
                    self.evaluate_condition_targeted(cond.owner, &cond.path, requester, true)
                })?;
                stats.absorb(&s.into_read_stats(1));
                let Some(witness) = witness else {
                    continue 'rules;
                };
                walks.push(WitnessWalk {
                    start: cond.owner,
                    hops: witness,
                });
            }
            return Ok((Some(Explanation::Rule { walks }), stats));
        }
        Ok((None, stats))
    }

    fn stats_supported(&self) -> bool {
        true
    }

    fn audience_batch_forced(
        &self,
        rids: &[ResourceId],
        strategy: BundleStrategy,
    ) -> Result<(Vec<Vec<NodeId>>, ReadStats), EvalError> {
        match strategy {
            BundleStrategy::Batched => AccessService::audience_batch_with_stats(self, rids),
            BundleStrategy::PerCondition => {
                let mut stats = ReadStats::default();
                let audiences = crate::engine::merge_bundle_audiences(&self.store, rids, |uniq| {
                    let (audiences, s) =
                        self.with_read_retry(|| self.audience_per_condition(uniq))?;
                    stats = s.into_read_stats(uniq.len());
                    Ok(audiences)
                })?;
                Ok((audiences, stats))
            }
        }
    }

    fn check_batch_forced(
        &self,
        requests: &[(ResourceId, NodeId)],
        threads: usize,
        plan: CheckPlan,
    ) -> Result<(Vec<Decision>, ReadStats), EvalError> {
        let _ = threads;
        match plan {
            CheckPlan::Targeted => {
                let mut stats = ReadStats::default();
                let mut decisions = Vec::with_capacity(requests.len());
                for &(rid, req) in requests {
                    let (d, s) = self.check_with_stats(rid, req)?;
                    stats.absorb(&s);
                    decisions.push(d);
                }
                Ok((decisions, stats))
            }
            CheckPlan::Audience(strategy) => self.check_batch_via_audiences(requests, strategy),
        }
    }
}

impl MutateService for NetworkedSystem {
    /// The trait's infallible write surface is **fail-stop** over the
    /// wire: a mutation the fleet cannot atomically commit panics
    /// (after rolling the epoch back everywhere reachable). Callers
    /// that want typed transport errors use the `try_*` inherent
    /// methods directly.
    fn add_user(&mut self, name: &str) -> NodeId {
        self.try_add_user(name)
            .expect("networked add_user failed (use try_add_user for typed errors)")
    }

    fn set_user_attr(&mut self, user: NodeId, key: &str, value: AttrValue) {
        self.try_set_user_attr(user, key, value)
            .expect("networked set_user_attr failed (use try_set_user_attr for typed errors)")
    }

    fn add_relationship(&mut self, src: NodeId, label: &str, dst: NodeId) {
        self.try_connect(src, label, dst)
            .expect("networked add_relationship failed (use try_connect for typed errors)")
    }

    fn add_resource(&mut self, owner: NodeId) -> ResourceId {
        self.share(owner)
    }

    fn add_rule(&mut self, rid: ResourceId, path_text: &str) -> Result<(), EvalError> {
        self.allow(rid, path_text)
    }
}
