//! The request/response vocabulary between a router and its shard
//! servers.
//!
//! Messages are serde-encoded (JSON through the vendored shim — the
//! same encoding the WAL uses, deterministic and self-describing) and
//! travel inside the CRC frames of [`super::frame`]. The traversal
//! vocabulary is **not** new: boundary exports ride the exact
//! [`MaskedExport`]/[`MaskedStateKey`] types the in-process sharded
//! router moves between shards, with `key.member` in deployment-global
//! member ids (each server translates to its local node space at the
//! edge).
//!
//! Two invariants every handler relies on:
//!
//! * **Member coordinates on the wire are global.** Servers keep a
//!   `global → local` map and never leak local ids.
//! * **Epochs fence every state-changing exchange.** Mutations travel
//!   as a two-phase `Prepare`/`Commit` (or `Abort`) carrying the new
//!   epoch; evaluations open with the epoch the router believes is
//!   current and are refused on mismatch, so a half-committed fleet
//!   can never serve a mixed-epoch read.

use serde::{Deserialize, Serialize};
use socialreach_graph::shard::MaskedExport;
use socialreach_graph::AttrValue;

/// Wire-protocol version, checked in the `Hello` handshake. Bump on
/// any incompatible message change (the golden-bytes pins in the
/// round-trip suite catch accidental ones).
pub const PROTOCOL_VERSION: u32 = 1;

/// One shard-local mutation, shipped inside a `Prepare` batch. All
/// member ids are global; names ride along because each shard interns
/// labels/attrs by name in router-synchronized order.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ShardOp {
    /// Materialize a member (home copy or ghost replica) on the shard.
    AddNode {
        /// Global member id.
        global: u32,
        /// Display name.
        name: String,
        /// Whether this copy is a ghost replica (never reported as an
        /// audience member; the seeded BFS's export watch set).
        ghost: bool,
    },
    /// Set an attribute on the shard's copy of a member.
    SetAttr {
        /// Global member id.
        global: u32,
        /// Attribute key name.
        key: String,
        /// The value.
        value: AttrValue,
    },
    /// Add a directed edge between two copies the shard holds.
    AddEdge {
        /// Global id of the source member.
        src: u32,
        /// Relationship label name.
        label: String,
        /// Global id of the target member.
        dst: u32,
    },
}

/// A router → shard request.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Request {
    /// Handshake: the first message on every connection.
    Hello {
        /// The client's [`PROTOCOL_VERSION`].
        version: u32,
    },
    /// Intern label/attr names in router order, so interned ids agree
    /// between the router and every shard (witness hops carry label
    /// ids). Idempotent: names already interned keep their ids.
    Intern {
        /// Label names to intern, in master-vocabulary order.
        labels: Vec<String>,
        /// Attribute key names to intern, in master-vocabulary order.
        attrs: Vec<String>,
    },
    /// Phase one of the epoch fence: stage `ops` for `epoch` without
    /// applying them. `epoch` must exceed the shard's current epoch
    /// (a restarted shard catches up through one jumped prepare).
    Prepare {
        /// The epoch the ops will publish as.
        epoch: u64,
        /// The staged mutations, applied atomically at commit.
        ops: Vec<ShardOp>,
    },
    /// Phase two: apply the staged ops and publish `epoch`.
    /// Idempotent when the shard is already at `epoch`.
    Commit {
        /// The epoch being committed.
        epoch: u64,
    },
    /// Roll back a staged prepare.
    Abort {
        /// The epoch being abandoned.
        epoch: u64,
    },
    /// Open a masked-fixpoint evaluation session. Refused unless
    /// `epoch` matches the shard's published epoch (the read half of
    /// the fence).
    BeginEval {
        /// Router-unique evaluation id (shared by every shard of one
        /// evaluation).
        eval: u64,
        /// The epoch the router expects the shard to serve.
        epoch: u64,
        /// The path expression, in canonical text
        /// ([`crate::path::PathExpr::to_text`]); the shard re-parses
        /// it against its synchronized vocabulary.
        path: String,
        /// Mask word this evaluation's bits live in.
        word: u32,
        /// Build the engine with first-arrival parent tracking (the
        /// targeted check/explain path; enables `Trace`).
        parents: bool,
    },
    /// Open a masked-fixpoint evaluation session over a **shared-prefix
    /// trie plan** ([`crate::query::BundlePlan`]) instead of a single
    /// linear path: `nodes` ships the plan's trie with each node's step
    /// in canonical text and its per-chunk condition masks baked in,
    /// and subsequent `Round` seeds carry *plan node ids* in the `step`
    /// slot of their masked keys. Plan sessions serve batched audience
    /// fixpoints only — they refuse `Round.stop` and `Trace` (targeted
    /// check/explain stays on `BeginEval`'s linear engine). Refused
    /// unless `epoch` matches, exactly like `BeginEval`. Appended in
    /// protocol version 1: the variant is new but no existing message
    /// changed shape.
    BeginEvalPlan {
        /// Router-unique evaluation id (shared by every shard of one
        /// evaluation).
        eval: u64,
        /// The epoch the router expects the shard to serve.
        epoch: u64,
        /// The trie nodes; vector index is the plan node id.
        nodes: Vec<WirePlanNode>,
        /// Mask word this evaluation's bits live in.
        word: u32,
    },
    /// Deliver one batch of masked seeds to an open evaluation and run
    /// the shard's slice of the fixpoint round. Seeds are
    /// [`MaskedExport`]s in global coordinates; the engine's visited
    /// state persists across rounds, so re-delivered bits are
    /// harmlessly absorbed (duplicate batches can never double-report).
    Round {
        /// The evaluation id.
        eval: u64,
        /// The seeds (global member coordinates + condition bits).
        seeds: Vec<MaskedExport>,
        /// Early-exit target: global member id whose final-step
        /// completion stops the run (set only on the member's home
        /// shard).
        stop: Option<u32>,
    },
    /// Walk an evaluation's parent chain back from a product state to
    /// the seed that started its local segment (witness stitching).
    Trace {
        /// The evaluation id.
        eval: u64,
        /// Global member id of the traced state.
        member: u32,
        /// Path step index of the traced state.
        step: u16,
        /// Saturated depth of the traced state.
        depth: u32,
    },
    /// Close an evaluation session and free its engine.
    EndEval {
        /// The evaluation id.
        eval: u64,
    },
    /// Size census of the shard.
    Census,
    /// Ask the server process to shut down.
    Shutdown,
}

/// One trie node of a shipped bundle plan (`BeginEvalPlan`): a
/// single-step path expression in canonical text plus the trie edges
/// and this chunk's condition masks. The wire plan is chunk-specific —
/// one evaluation session serves one 64-condition mask word, so the
/// masks ride with the nodes instead of a separate message.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WirePlanNode {
    /// The node's step as a one-step path expression in canonical text
    /// ([`crate::path::PathExpr::to_text`]); the shard re-parses it
    /// against its synchronized vocabulary.
    pub step: String,
    /// Plan node ids of the trie children (divergence points fork the
    /// condition masks).
    pub children: Vec<u16>,
    /// Condition bits whose chains pass through this node (the ε-fork
    /// filter).
    pub mask: u64,
    /// Condition bits that accept upon completing this node.
    pub accept: u64,
}

/// One member that completed the final path step, with the condition
/// bits that newly matched them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireMatch {
    /// Global member id.
    pub member: u32,
    /// Newly matched condition bits (within the evaluation's word).
    pub mask: u64,
}

/// One hop of a witness walk segment, in global member ids.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct WireHop {
    /// Global id of the edge's source member.
    pub src: u32,
    /// Global id of the edge's target member.
    pub dst: u32,
    /// Interned relationship label (router-synchronized id space).
    pub label: u16,
    /// Whether the hop follows the edge's orientation.
    pub forward: bool,
}

/// A typed shard-side refusal. Distinct from transport failures: the
/// connection stays healthy, the request was simply not servable.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum WireRefusal {
    /// Protocol versions disagree.
    Version {
        /// The shard's [`PROTOCOL_VERSION`].
        shard: u32,
        /// The version the client announced.
        requested: u32,
    },
    /// The epoch fence refused the request.
    EpochMismatch {
        /// The shard's published epoch.
        shard_epoch: u64,
        /// The epoch the request carried.
        requested: u64,
    },
    /// The evaluation id is not open (e.g. the shard restarted or a
    /// commit invalidated in-flight sessions).
    UnknownEval {
        /// The offending evaluation id.
        eval: u64,
    },
    /// A global member id the shard holds no copy of.
    UnknownMember {
        /// The offending global member id.
        member: u32,
    },
    /// The request was malformed or violated a protocol invariant.
    BadRequest {
        /// Human-readable diagnosis.
        detail: String,
    },
}

impl std::fmt::Display for WireRefusal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireRefusal::Version { shard, requested } => {
                write!(
                    f,
                    "protocol version mismatch (shard {shard}, client {requested})"
                )
            }
            WireRefusal::EpochMismatch {
                shard_epoch,
                requested,
            } => write!(
                f,
                "epoch fence refused (shard at {shard_epoch}, request for {requested})"
            ),
            WireRefusal::UnknownEval { eval } => write!(f, "unknown evaluation id {eval}"),
            WireRefusal::UnknownMember { member } => {
                write!(f, "shard holds no copy of member {member}")
            }
            WireRefusal::BadRequest { detail } => write!(f, "bad request: {detail}"),
        }
    }
}

/// A shard → router response.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum Response {
    /// Handshake accepted.
    Hello {
        /// The shard's [`PROTOCOL_VERSION`].
        version: u32,
        /// The shard's published epoch (0 on a fresh process — the
        /// router reads this to decide whether to replay its op log).
        epoch: u64,
        /// Member copies the shard holds (home + ghosts).
        nodes: u64,
    },
    /// Generic acknowledgement (`Intern`, `EndEval`, `Shutdown`).
    Ok,
    /// `Prepare` staged.
    Prepared {
        /// The staged epoch.
        epoch: u64,
    },
    /// `Commit` applied (or was already applied).
    Committed {
        /// The published epoch.
        epoch: u64,
    },
    /// `Abort` dropped the staged ops (or there was nothing staged).
    Aborted {
        /// The abandoned epoch.
        epoch: u64,
    },
    /// `BeginEval` opened the session.
    EvalOpen {
        /// The evaluation id.
        eval: u64,
    },
    /// One shard round of the masked fixpoint.
    Round {
        /// Members newly completing the final step (ghost copies
        /// already filtered — only home members are reported).
        matched: Vec<WireMatch>,
        /// Newly exported boundary states, in global coordinates.
        exports: Vec<MaskedExport>,
        /// Early-exit coordinate when the `stop` member completed the
        /// final step during this run.
        hit: Option<(u16, u32)>,
        /// Product states expanded by this run.
        states_expanded: u64,
    },
    /// One traced witness segment.
    Traced {
        /// The hops from the segment's seed to the traced state, in
        /// walk order.
        hops: Vec<WireHop>,
        /// Global member id of the seed the segment started from.
        seed_member: u32,
        /// Step index of that seed.
        seed_step: u16,
        /// Saturated depth of that seed.
        seed_depth: u32,
    },
    /// The shard's size census.
    Census {
        /// Members homed on the shard.
        members: u64,
        /// Ghost replicas held.
        ghosts: u64,
        /// Edges in the shard graph.
        edges: u64,
        /// Published epoch.
        epoch: u64,
    },
    /// A typed refusal.
    Refused(WireRefusal),
}

/// Encodes a request for framing.
pub fn encode_request(req: &Request) -> Vec<u8> {
    serde_json::to_string(req)
        .expect("requests serialize (no non-finite floats)")
        .into_bytes()
}

/// Decodes a request payload.
pub fn decode_request(bytes: &[u8]) -> Result<Request, String> {
    let text = std::str::from_utf8(bytes).map_err(|e| e.to_string())?;
    serde_json::from_str(text).map_err(|e| format!("{e:?}"))
}

/// Encodes a response for framing.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    serde_json::to_string(resp)
        .expect("responses serialize (no non-finite floats)")
        .into_bytes()
}

/// Decodes a response payload.
pub fn decode_response(bytes: &[u8]) -> Result<Response, String> {
    let text = std::str::from_utf8(bytes).map_err(|e| e.to_string())?;
    serde_json::from_str(text).map_err(|e| format!("{e:?}"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use socialreach_graph::shard::MaskedStateKey;

    #[test]
    fn requests_round_trip() {
        let reqs = [
            Request::Hello {
                version: PROTOCOL_VERSION,
            },
            Request::Intern {
                labels: vec!["friend".into()],
                attrs: vec!["age".into()],
            },
            Request::Prepare {
                epoch: 3,
                ops: vec![
                    ShardOp::AddNode {
                        global: 7,
                        name: "Grace".into(),
                        ghost: true,
                    },
                    ShardOp::SetAttr {
                        global: 7,
                        key: "age".into(),
                        value: AttrValue::Int(44),
                    },
                    ShardOp::AddEdge {
                        src: 7,
                        label: "friend".into(),
                        dst: 9,
                    },
                ],
            },
            Request::BeginEvalPlan {
                eval: 11,
                epoch: 3,
                nodes: vec![
                    WirePlanNode {
                        step: "friend+[1..2]".into(),
                        children: vec![1],
                        mask: 0b11,
                        accept: 0b01,
                    },
                    WirePlanNode {
                        step: "colleague+[1]".into(),
                        children: vec![],
                        mask: 0b10,
                        accept: 0b10,
                    },
                ],
                word: 0,
            },
            Request::Round {
                eval: 12,
                seeds: vec![MaskedExport {
                    key: MaskedStateKey {
                        member: 7,
                        step: 2,
                        depth: 9,
                        word: 1,
                    },
                    mask: 0b1011,
                }],
                stop: Some(9),
            },
        ];
        for req in reqs {
            let enc = encode_request(&req);
            assert_eq!(decode_request(&enc).unwrap(), req);
        }
    }

    #[test]
    fn responses_round_trip() {
        let resps = [
            Response::Hello {
                version: PROTOCOL_VERSION,
                epoch: 0,
                nodes: 0,
            },
            Response::Round {
                matched: vec![WireMatch { member: 4, mask: 1 }],
                exports: vec![],
                hit: Some((2, 3)),
                states_expanded: 17,
            },
            Response::Traced {
                hops: vec![WireHop {
                    src: 1,
                    dst: 2,
                    label: 0,
                    forward: false,
                }],
                seed_member: 1,
                seed_step: 0,
                seed_depth: 0,
            },
            Response::Refused(WireRefusal::EpochMismatch {
                shard_epoch: 4,
                requested: 5,
            }),
        ];
        for resp in resps {
            let enc = encode_response(&resp);
            assert_eq!(decode_response(&enc).unwrap(), resp);
        }
    }
}
