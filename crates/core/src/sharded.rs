//! `ShardedSystem` — horizontal partitioning of the serving layer.
//!
//! The epoch-publication pipeline ([`crate::engine::Enforcer`] +
//! `Arc<CsrSnapshot>`) serves one graph per enforcer. This module
//! scales the read path out: members are **hash-partitioned** across N
//! independent shards ([`ShardAssignment`], deterministic and
//! seedable), each shard owning a [`SocialGraph`] + enforcer of its
//! own, with its own epoch-published snapshot and its own incremental
//! append patching.
//!
//! # Data placement
//!
//! * A member lives on exactly one **home shard** (by stable hash of
//!   their name). Intra-shard relationships are ordinary edges of the
//!   home shard's graph.
//! * A relationship whose endpoints live on different shards is a
//!   **boundary edge**: it is recorded in the global [`BoundaryTable`]
//!   and **replicated into both endpoint shards**, attached to a
//!   *ghost* copy of the remote endpoint. Ghosts carry a synchronized
//!   copy of the member's attribute tuple (path predicates evaluate at
//!   either replica) but are never reported as audience members — only
//!   a member's home shard speaks for them.
//!
//! # Cross-shard reads
//!
//! Every read fans out over the shards through the existing `&self`
//! epoch read path. A path-expression evaluation runs a **round-based
//! fixpoint** of per-shard seeded product BFS
//! ([`online::evaluate_seeded`]):
//!
//! 1. Round 0 seeds the owner's home shard at product state
//!    `(owner, step 0, depth 0)`.
//! 2. Each active shard traverses its local CSR snapshot. Whenever the
//!    walk visits a state at a ghost, that `(member, step, depth)`
//!    coordinate is exported.
//! 3. The router forwards every newly seen export to the member's home
//!    shard — the one place that has the member's full adjacency — and
//!    the next round begins. States are deduplicated globally, so the
//!    fixpoint terminates after at most |V| · |layers| imports.
//!
//! Rounds with several active shards evaluate them on **parallel
//! scoped threads**; decisions, audiences and witnesses are
//! deterministic regardless of the interleaving because exports are
//! merged in shard order. Witnesses stitch per-shard walk segments:
//! the granting shard returns the segment from its seed to the
//! requester, and the router replays exporting runs backwards
//! ([`online::SeededTarget::State`]) until it reaches the owner seed.
//!
//! # Batched reads (one fixpoint per bundle)
//!
//! The per-condition fixpoint above is the targeted-check/witness
//! primitive. Bundle reads — [`ShardedSystem::audience_batch`] and
//! [`ShardedSystem::check_batch`] — run the **masked** variant
//! instead: the bundle's distinct conditions are grouped by path
//! expression and each group's owners traverse together through one
//! round-based fixpoint of per-shard seeded mask BFS
//! ([`online::evaluate_audience_batch_seeded`]), every product state
//! carrying a bitmask of the conditions that reached it. Boundary
//! exports carry those masks ([`MaskedStateKey`]; groups wider than 64
//! conditions chunk into further mask words), and the router forwards
//! only bits it has not forwarded before. Each shard's visited/mask
//! state **persists across rounds** of the evaluation
//! ([`online::SeededBatchState`]), so a walk that ping-pongs through
//! one shard k times expands each product state at most once per
//! arriving bit — total work is linear in the explored region, where
//! re-seeding fresh visited sets each round (what the per-condition
//! fixpoint does) is quadratic on such paths. Decisions for
//! `check_batch` fall out of the materialized audiences (a requester
//! is granted exactly when a rule's every condition-audience contains
//! them), and grants needing a human-readable walk (`explain`) replay
//! the targeted per-condition fixpoint, which reconstructs stitched
//! witnesses.
//!
//! # Mutations
//!
//! Mutations (`&mut self`) route to the owning shard(s): an edge
//! append touches one shard (intra) or two (boundary), a ghost
//! materialization appends a node — all **append-only**, so every
//! shard's next publication goes through
//! `CsrSnapshot::apply_edge_appends` instead of a rebuild. The
//! top-level decision cache drops on any mutation; published shard
//! snapshots are retained as patch bases.

use crate::engine::{Enforcer, OnlineEngine};
use crate::error::EvalError;
use crate::online::{
    self, MaskedSeedState, SeedState, SeededBatchOutcome, SeededBatchState, SeededOutcome,
    SeededTarget, WitnessHop,
};
use crate::path::PathExpr;
use crate::policy::{Decision, PolicyStore, ResourceId};
use crate::service::{
    AccessService, BundleStrategy, CheckPlan, Explanation, MutateService, ReadStats, WalkHop,
    WitnessWalk,
};
use parking_lot::RwLock;
use socialreach_graph::csr::CsrSnapshot;
use socialreach_graph::shard::{
    BoundaryEdge, BoundaryTable, MaskedExportSet, MaskedStateKey, ShardAssignment,
};
use socialreach_graph::{AttrValue, LabelId, NodeId, SocialGraph, Vocabulary};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A cross-shard product-state coordinate: global member, step index,
/// saturated depth.
type StateKey = (u32, u16, u32);

/// One hop of a stitched cross-shard witness walk, in **global** ids —
/// the shared [`WalkHop`] of the service vocabulary (the name is kept
/// as an alias for downstream code).
pub type ShardedHop = WalkHop;

/// Result of one cross-shard access-condition evaluation.
#[derive(Clone, Debug)]
pub struct ShardedEval {
    /// Every member matching the condition (global ids, sorted).
    /// Populated only for audience evaluations (`target == None`).
    pub matched: Vec<NodeId>,
    /// Whether the target requester matched.
    pub granted: bool,
    /// A stitched walk from the owner to the requester when granted.
    pub witness: Option<Vec<ShardedHop>>,
}

/// Work census of one batched bundle evaluation (the masked
/// cross-shard fixpoint), for benchmarks and the round-linearity
/// regression tests.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BundleFixpointStats {
    /// Masked fixpoints run: one per 64-condition chunk of the shared
    /// trie plan (the default), or one per (path group, 64-condition
    /// chunk) under `SOCIALREACH_BUNDLE_PLAN=grouped` — *not* one per
    /// condition either way.
    pub fixpoints: usize,
    /// Fixpoint rounds across all of them.
    pub rounds: usize,
    /// Product states expanded per shard, cumulative across the whole
    /// bundle. Persistence of per-shard mask state across rounds keeps
    /// this linear in the explored region per condition bit.
    pub states_expanded: Vec<usize>,
    /// Masked boundary exports the router forwarded (new bits only).
    pub exported_states: usize,
    /// Automaton states the shared trie plan occupies (zero in grouped
    /// mode) — see [`crate::query::BundlePlan::plan_states`].
    pub plan_states: usize,
    /// Automaton states one-chain-per-condition evaluation would
    /// occupy (zero in grouped mode).
    pub expr_states: usize,
}

impl BundleFixpointStats {
    fn new(shards: usize) -> Self {
        BundleFixpointStats {
            states_expanded: vec![0; shards],
            ..BundleFixpointStats::default()
        }
    }
}

/// Size census of one shard.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ShardStats {
    /// Members homed on the shard.
    pub members: usize,
    /// Ghost replicas of remote members.
    pub ghosts: usize,
    /// Edges in the shard's graph (intra + replicated boundary).
    pub edges: usize,
}

/// One partition: a graph of home members + ghost replicas, and the
/// enforcer publishing its epoch snapshots.
struct Shard {
    graph: SocialGraph,
    enforcer: Enforcer<OnlineEngine>,
    /// Local node index → global member id.
    globals: Vec<NodeId>,
    /// Local node index → is a ghost replica (the seeded BFS's watch
    /// set: states visited here are exported to the home shard).
    ghost: Vec<bool>,
}

impl Shard {
    fn new() -> Self {
        Shard {
            graph: SocialGraph::new(),
            // Every mutation this module performs on a shard graph is
            // an append, so incremental publication is safe.
            enforcer: Enforcer::new(OnlineEngine).with_append_publication(),
            globals: Vec::new(),
            ghost: Vec::new(),
        }
    }

    fn stats(&self) -> ShardStats {
        let ghosts = self.ghost.iter().filter(|&&g| g).count();
        ShardStats {
            members: self.graph.num_nodes() - ghosts,
            ghosts,
            edges: self.graph.num_edges(),
        }
    }
}

/// Where a member lives, plus every ghost replica of them.
struct MemberEntry {
    home: u32,
    local: NodeId,
    /// `(shard, local id)` of each ghost replica.
    ghosts: Vec<(u32, NodeId)>,
}

/// A seeded run of one shard, recorded so witness reconstruction can
/// replay it.
struct RunRecord {
    shard: usize,
    seeds: Vec<SeedState>,
    /// `keys[i]` is the global coordinate of `seeds[i]`.
    keys: Vec<StateKey>,
}

/// The sharded serving façade: the [`crate::AccessControlSystem`] API
/// over N hash-partitioned epoch-published shards (see the module docs
/// for placement and the cross-shard read algorithm).
pub struct ShardedSystem {
    assignment: ShardAssignment,
    /// Master vocabulary; every shard's vocabulary is a prefix-aligned
    /// copy (same names interned in the same order), so `LabelId` /
    /// `AttrKey` values are valid on every shard.
    vocab: Vocabulary,
    shards: Vec<Shard>,
    members: Vec<MemberEntry>,
    names: Vec<String>,
    /// First-registration-wins name lookup (mirrors
    /// [`SocialGraph::node_by_name`]).
    name_lookup: HashMap<String, NodeId>,
    store: PolicyStore,
    boundary: BoundaryTable,
    /// Global edge log `(src, label, dst)` in insertion order —
    /// introspection, audits, witness validation.
    edges: Vec<(NodeId, LabelId, NodeId)>,
    cache: RwLock<HashMap<(ResourceId, NodeId), Decision>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl ShardedSystem {
    /// A system of `shards` hash-partitioned shards (placement seeded
    /// by `seed`; see [`ShardAssignment::hashed`]).
    pub fn new(shards: u32, seed: u64) -> Self {
        Self::with_assignment(ShardAssignment::hashed(shards, seed))
    }

    /// A system with an explicit placement function.
    pub fn with_assignment(assignment: ShardAssignment) -> Self {
        let n = assignment.shards();
        ShardedSystem {
            assignment,
            vocab: Vocabulary::new(),
            shards: (0..n).map(|_| Shard::new()).collect(),
            members: Vec::new(),
            names: Vec::new(),
            name_lookup: HashMap::new(),
            store: PolicyStore::new(),
            boundary: BoundaryTable::new(n),
            edges: Vec::new(),
            cache: RwLock::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        }
    }

    /// Ingests an existing graph: same member ids (insertion order),
    /// same label/attr-key ids (the master vocabulary interns the
    /// source vocabulary in order), same edge order. A policy store
    /// built against `g` can then be adopted verbatim with
    /// [`ShardedSystem::adopt_store`].
    pub fn from_graph(g: &SocialGraph, assignment: ShardAssignment) -> Self {
        let mut sys = Self::with_assignment(assignment);
        for (_, name) in g.vocab().labels() {
            sys.vocab.intern_label(name);
        }
        for i in 0..g.vocab().num_attrs() {
            sys.vocab.intern_attr(
                g.vocab()
                    .attr_name(socialreach_graph::AttrKey::from_index(i)),
            );
        }
        sys.sync_vocab();
        for v in g.nodes() {
            let global = sys.add_user(g.node_name(v));
            debug_assert_eq!(global, v, "ingestion preserves member ids");
            for (k, val) in g.node_attrs(v).iter() {
                sys.set_user_attr(global, g.vocab().attr_name(k), val.clone());
            }
        }
        for (_, rec) in g.edges() {
            sys.connect(rec.src, g.vocab().label_name(rec.label), rec.dst);
        }
        sys
    }

    /// Adopts a policy store built against the graph this system was
    /// ingested from ([`ShardedSystem::from_graph`] — ids align by
    /// construction).
    pub fn adopt_store(&mut self, store: PolicyStore) {
        self.dirty();
        self.store = store;
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// The placement function.
    pub fn assignment(&self) -> &ShardAssignment {
        &self.assignment
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of registered members (across all shards, ghosts not
    /// counted).
    pub fn num_members(&self) -> usize {
        self.members.len()
    }

    /// Number of relationships (each boundary edge counted once).
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The home shard of a member.
    pub fn member_shard(&self, member: NodeId) -> u32 {
        self.members[member.index()].home
    }

    /// Display name of a member.
    pub fn member_name(&self, member: NodeId) -> &str {
        &self.names[member.index()]
    }

    /// The cross-shard boundary table.
    pub fn boundary(&self) -> &BoundaryTable {
        &self.boundary
    }

    /// Per-shard size census.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards.iter().map(Shard::stats).collect()
    }

    /// Per-shard snapshot publication epochs (mirrors
    /// [`crate::AccessControlSystem::snapshot_epoch`] per shard).
    pub fn snapshot_epochs(&self) -> Vec<u64> {
        self.shards
            .iter()
            .map(|s| s.enforcer.snapshot_epoch())
            .collect()
    }

    /// The global edge log `(src, label, dst)` in insertion order.
    pub fn edge_log(&self) -> &[(NodeId, LabelId, NodeId)] {
        &self.edges
    }

    /// Read-only view of the policy store.
    pub fn store(&self) -> &PolicyStore {
        &self.store
    }

    /// Master vocabulary (labels + attribute keys).
    pub fn vocab(&self) -> &Vocabulary {
        &self.vocab
    }

    /// Looks a member up by name (first registered wins, as in
    /// [`SocialGraph::node_by_name`]).
    pub fn user(&self, name: &str) -> Result<NodeId, EvalError> {
        self.name_lookup
            .get(name)
            .copied()
            .ok_or_else(|| socialreach_graph::GraphError::UnknownName(name.to_owned()).into())
    }

    /// Decision-cache statistics `(hits, misses)`.
    pub fn cache_stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }

    // ------------------------------------------------------------------
    // Mutations (route to the owning shard(s))
    // ------------------------------------------------------------------

    /// Registers a member on their hash-assigned home shard.
    pub fn add_user(&mut self, name: &str) -> NodeId {
        self.dirty();
        let global = NodeId::from_index(self.members.len());
        let home = self.assignment.shard_of(name);
        let shard = &mut self.shards[home as usize];
        let local = shard.graph.add_node(name);
        shard.globals.push(global);
        shard.ghost.push(false);
        debug_assert_eq!(shard.globals.len(), shard.graph.num_nodes());
        self.members.push(MemberEntry {
            home,
            local,
            ghosts: Vec::new(),
        });
        self.names.push(name.to_owned());
        self.name_lookup.entry(name.to_owned()).or_insert(global);
        global
    }

    /// Sets a member attribute on the home replica **and every ghost
    /// replica**, so path predicates evaluate identically on any shard
    /// the member appears on.
    pub fn set_user_attr(&mut self, member: NodeId, key: &str, value: impl Into<AttrValue>) {
        self.dirty();
        self.vocab.intern_attr(key);
        self.sync_vocab();
        let value: AttrValue = value.into();
        let entry = &self.members[member.index()];
        let (home, local) = (entry.home, entry.local);
        let copies: Vec<(u32, NodeId)> = entry.ghosts.clone();
        self.shards[home as usize]
            .graph
            .set_node_attr(local, key, value.clone());
        for (shard, ghost_local) in copies {
            self.shards[shard as usize]
                .graph
                .set_node_attr(ghost_local, key, value.clone());
        }
    }

    /// Adds a directed relationship. Intra-shard edges land on the home
    /// shard; cross-shard edges are recorded in the boundary table and
    /// replicated into both endpoint shards against ghost replicas.
    pub fn connect(&mut self, src: NodeId, label: &str, dst: NodeId) {
        self.dirty();
        let l = self.vocab.intern_label(label);
        self.sync_vocab();
        self.edges.push((src, l, dst));
        let s_home = self.members[src.index()].home;
        let d_home = self.members[dst.index()].home;
        if s_home == d_home {
            let shard = &mut self.shards[s_home as usize];
            let (ls, ld) = (
                self.members[src.index()].local,
                self.members[dst.index()].local,
            );
            shard.graph.add_edge(ls, ld, l);
        } else {
            let ghost_dst = self.ensure_ghost(dst, s_home);
            let ghost_src = self.ensure_ghost(src, d_home);
            let ls = self.members[src.index()].local;
            let ld = self.members[dst.index()].local;
            self.shards[s_home as usize]
                .graph
                .add_edge(ls, ghost_dst, l);
            self.shards[d_home as usize]
                .graph
                .add_edge(ghost_src, ld, l);
            self.boundary.record(BoundaryEdge {
                src: src.0,
                dst: dst.0,
                label: l,
                src_shard: s_home,
                dst_shard: d_home,
            });
        }
    }

    /// Adds a mutual relationship (both directions).
    pub fn connect_mutual(&mut self, a: NodeId, label: &str, b: NodeId) {
        self.connect(a, label, b);
        self.connect(b, label, a);
    }

    /// Registers a resource owned by `owner` (private until a rule is
    /// attached).
    pub fn share(&mut self, owner: NodeId) -> ResourceId {
        self.dirty();
        self.store.register_resource(owner)
    }

    /// Attaches a single-condition rule parsed from `path_text` — in
    /// either syntax, classic path notation or the openCypher-flavored
    /// `MATCH` grammar (same surface as
    /// [`crate::AccessControlSystem::allow`]).
    pub fn allow(&mut self, rid: ResourceId, path_text: &str) -> Result<(), EvalError> {
        self.dirty();
        let owner = self.store.owner_of(rid)?;
        let path = crate::query::parse_policy(path_text, &mut self.vocab)?;
        self.sync_vocab();
        self.store.add_rule(crate::policy::AccessRule {
            resource: rid,
            conditions: vec![crate::policy::AccessCondition { owner, path }],
        })
    }

    /// Parses a policy in either syntax against the master vocabulary.
    pub fn parse(&mut self, text: &str) -> Result<PathExpr, EvalError> {
        let path = crate::query::parse_policy(text, &mut self.vocab)?;
        self.sync_vocab();
        Ok(path)
    }

    /// Materializes (or finds) the ghost replica of `member` on
    /// `shard`, copying the member's current attribute tuple.
    fn ensure_ghost(&mut self, member: NodeId, shard: u32) -> NodeId {
        if let Some(&(_, local)) = self.members[member.index()]
            .ghosts
            .iter()
            .find(|&&(s, _)| s == shard)
        {
            return local;
        }
        let entry = &self.members[member.index()];
        let (home, home_local) = (entry.home, entry.local);
        debug_assert_ne!(home, shard, "a member is never its own ghost");
        let attrs: Vec<(String, AttrValue)> = self.shards[home as usize]
            .graph
            .node_attrs(home_local)
            .iter()
            .map(|(k, v)| (self.vocab.attr_name(k).to_owned(), v.clone()))
            .collect();
        let target = &mut self.shards[shard as usize];
        let local = target.graph.add_node(&self.names[member.index()]);
        target.globals.push(member);
        target.ghost.push(true);
        for (key, value) in attrs {
            target.graph.set_node_attr(local, &key, value);
        }
        self.members[member.index()].ghosts.push((shard, local));
        local
    }

    /// Interns any master-vocabulary labels/keys the shards have not
    /// seen yet, in master order, so interned ids agree everywhere.
    /// (Interning never advances a graph's generation, so published
    /// snapshots stay valid.)
    fn sync_vocab(&mut self) {
        for shard in &mut self.shards {
            for i in shard.graph.vocab().num_labels()..self.vocab.num_labels() {
                let name = self.vocab.label_name(LabelId::from_index(i)).to_owned();
                let id = shard.graph.intern_label(&name);
                debug_assert_eq!(id.index(), i);
            }
            for i in shard.graph.vocab().num_attrs()..self.vocab.num_attrs() {
                let name = self
                    .vocab
                    .attr_name(socialreach_graph::AttrKey::from_index(i))
                    .to_owned();
                let id = shard.graph.intern_attr(&name);
                debug_assert_eq!(id.index(), i);
            }
        }
    }

    /// Any mutation stales every cached decision. Published shard
    /// snapshots are retained as incremental patch bases.
    fn dirty(&mut self) {
        self.cache.get_mut().clear();
    }

    // ------------------------------------------------------------------
    // Reads (the `&self` fan-out path)
    // ------------------------------------------------------------------

    /// This backend as a deployment-agnostic read service (the
    /// [`AccessService`] all read callers should migrate to).
    pub fn service(&self) -> &dyn AccessService {
        self
    }

    /// Decides whether `requester` may access `rid` (same semantics as
    /// the single-graph enforcer: owner always granted, rules disjoin,
    /// conditions within a rule conjoin, no rules ⇒ private).
    #[deprecated(since = "0.2.0", note = "read through the `AccessService` trait")]
    pub fn check(&self, rid: ResourceId, requester: NodeId) -> Result<Decision, EvalError> {
        AccessService::check(self, rid, requester)
    }

    /// Decides a batch of requests through **one** masked cross-shard
    /// fixpoint per bundle ([`AccessService::check_batch`] on this
    /// backend).
    #[deprecated(since = "0.2.0", note = "read through the `AccessService` trait")]
    pub fn check_batch(
        &self,
        requests: &[(ResourceId, NodeId)],
        threads: usize,
    ) -> Result<Vec<Decision>, EvalError> {
        AccessService::check_batch(self, requests, threads)
    }

    /// The full audience of a resource (global member ids, sorted).
    #[deprecated(since = "0.2.0", note = "read through the `AccessService` trait")]
    pub fn audience(&self, rid: ResourceId) -> Result<Vec<NodeId>, EvalError> {
        AccessService::audience(self, rid)
    }

    /// Audiences of a whole bundle of resources, in `rids` order.
    #[deprecated(since = "0.2.0", note = "read through the `AccessService` trait")]
    pub fn audience_batch(&self, rids: &[ResourceId]) -> Result<Vec<Vec<NodeId>>, EvalError> {
        AccessService::audience_batch(self, rids)
    }

    /// [`ShardedSystem`]'s bundle audiences plus the uniform work
    /// census.
    #[deprecated(since = "0.2.0", note = "read through the `AccessService` trait")]
    pub fn audience_batch_with_stats(
        &self,
        rids: &[ResourceId],
    ) -> Result<(Vec<Vec<NodeId>>, ReadStats), EvalError> {
        AccessService::audience_batch_with_stats(self, rids)
    }

    /// The pre-amortization bundle path, retained as the comparison
    /// baseline (bench P12) and differential-test oracle: every
    /// distinct condition runs its **own** per-condition cross-shard
    /// fixpoint, with fresh per-round visited state. Semantics are
    /// identical to [`ShardedSystem::audience_batch`]; the batched
    /// engine exists because this shape pays `O(conditions × rounds)`
    /// shard passes and re-traverses explored regions on paths that
    /// ping-pong across a boundary.
    pub fn audience_batch_per_condition(
        &self,
        rids: &[ResourceId],
    ) -> Result<Vec<Vec<NodeId>>, EvalError> {
        Ok(self.audience_batch_per_condition_with_stats(rids)?.0)
    }

    /// [`ShardedSystem::audience_batch_per_condition`] plus the
    /// bundle's cumulative work census — the
    /// [`crate::BundleStrategy::PerCondition`] entry point the planner
    /// dispatches to. Each deduped condition's fixpoint reports one
    /// condition / one traversal; absorbing them yields the uniform
    /// bundle census.
    pub fn audience_batch_per_condition_with_stats(
        &self,
        rids: &[ResourceId],
    ) -> Result<(Vec<Vec<NodeId>>, ReadStats), EvalError> {
        let mut stats = ReadStats::default();
        let audiences = crate::engine::merge_bundle_audiences(&self.store, rids, |uniq| {
            Ok(uniq
                .iter()
                .map(|&(owner, path)| {
                    let (eval, s) = self.evaluate_condition_with_stats(owner, path, None);
                    stats.absorb(&s);
                    eval.matched
                })
                .collect())
        })?;
        Ok((audiences, stats))
    }

    /// Decides a batch by **audience membership**: the uncached
    /// resources' condition audiences are materialized together (with
    /// the forced bundle strategy) and each request decided by binary
    /// search — equivalent to targeted checks because a rule grants
    /// exactly the intersection of its condition audiences. Decisions
    /// come back in request order and populate the decision cache.
    fn check_batch_via_audiences(
        &self,
        requests: &[(ResourceId, NodeId)],
        strategy: BundleStrategy,
    ) -> Result<(Vec<Decision>, ReadStats), EvalError> {
        let mut stats = ReadStats::default();
        let mut decisions: Vec<Option<Decision>> = vec![None; requests.len()];
        // Insertion-ordered dedup of the resources needing evaluation.
        let mut need: Vec<ResourceId> = Vec::new();
        let mut needed: HashSet<ResourceId> = HashSet::new();
        {
            let cache = self.cache.read();
            for (i, &(rid, req)) in requests.iter().enumerate() {
                let owner = self.store.owner_of(rid)?;
                if req == owner {
                    decisions[i] = Some(Decision::Grant);
                } else if let Some(&d) = cache.get(&(rid, req)) {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    decisions[i] = Some(d);
                } else {
                    self.misses.fetch_add(1, Ordering::Relaxed);
                    if needed.insert(rid) {
                        need.push(rid);
                    }
                }
            }
        }
        if !need.is_empty() {
            let (audiences, s) = AccessService::audience_batch_forced(self, &need, strategy)?;
            stats.absorb(&s);
            let by_rid: HashMap<ResourceId, &Vec<NodeId>> =
                need.iter().copied().zip(audiences.iter()).collect();
            let mut cache = self.cache.write();
            for (i, &(rid, req)) in requests.iter().enumerate() {
                if decisions[i].is_some() {
                    continue;
                }
                let audience = by_rid[&rid];
                let d = if audience.binary_search(&req).is_ok() {
                    Decision::Grant
                } else {
                    Decision::Deny
                };
                cache.insert((rid, req), d);
                decisions[i] = Some(d);
            }
        }
        Ok((
            decisions
                .into_iter()
                .map(|d| d.expect("every request decided"))
                .collect(),
            stats,
        ))
    }

    /// Explains a grant as human-readable walk lines, stitched across
    /// shard boundaries, or `None` when access is denied.
    #[deprecated(since = "0.2.0", note = "read through the `AccessService` trait")]
    pub fn explain(
        &self,
        rid: ResourceId,
        requester: NodeId,
    ) -> Result<Option<Vec<String>>, EvalError> {
        AccessService::explain_lines(self, rid, requester)
    }

    /// Publishes every shard's snapshot for its current topology and
    /// returns them (index-aligned with the shards).
    fn publish_all(&self) -> Vec<Arc<CsrSnapshot>> {
        self.shards
            .iter()
            .map(|s| {
                s.enforcer
                    .publish_snapshot(&s.graph)
                    .expect("online engine publishes snapshots")
            })
            .collect()
    }

    /// Evaluates one access condition `(owner, path)` across the
    /// shards: the round-based seeded-BFS fixpoint of the module docs.
    /// With `target = Some(v)` the evaluation short-circuits on grant
    /// and reconstructs a stitched witness; with `None` it materializes
    /// the full (global) audience.
    pub fn evaluate_condition(
        &self,
        owner: NodeId,
        path: &PathExpr,
        target: Option<NodeId>,
    ) -> ShardedEval {
        self.evaluate_condition_with_stats(owner, path, target).0
    }

    /// [`ShardedSystem::evaluate_condition`] plus the fixpoint's
    /// uniform work census: one condition and one traversal (this
    /// fixpoint), `rounds` cross-shard round-trips, the product states
    /// the per-shard seeded evaluations expanded, and the boundary
    /// states exported between shards.
    pub fn evaluate_condition_with_stats(
        &self,
        owner: NodeId,
        path: &PathExpr,
        target: Option<NodeId>,
    ) -> (ShardedEval, ReadStats) {
        let mut stats = ReadStats {
            conditions: 1,
            traversals: 1,
            ..ReadStats::default()
        };
        if path.is_empty() {
            let granted = target == Some(owner);
            return (
                ShardedEval {
                    matched: if target.is_none() {
                        vec![owner]
                    } else {
                        vec![]
                    },
                    granted,
                    witness: granted.then(Vec::new),
                },
                stats,
            );
        }
        let snaps = self.publish_all();

        let owner_entry = &self.members[owner.index()];
        let mut imported: HashSet<StateKey> = HashSet::new();
        let mut queues: Vec<(Vec<SeedState>, Vec<StateKey>)> =
            (0..self.shards.len()).map(|_| Default::default()).collect();
        let owner_key: StateKey = (owner.0, 0, 0);
        imported.insert(owner_key);
        queues[owner_entry.home as usize]
            .0
            .push((owner_entry.local, 0, 0));
        queues[owner_entry.home as usize].1.push(owner_key);

        let mut matched: Vec<NodeId> = Vec::new();
        let mut runs: Vec<RunRecord> = Vec::new();
        let mut origin: HashMap<StateKey, usize> = HashMap::new();
        let mut grant: Option<(usize, Vec<WitnessHop>, usize)> = None;

        while grant.is_none() {
            let round: Vec<(usize, Vec<SeedState>, Vec<StateKey>)> = queues
                .iter_mut()
                .enumerate()
                .filter(|(_, q)| !q.0.is_empty())
                .map(|(i, q)| {
                    let (seeds, keys) = std::mem::take(q);
                    (i, seeds, keys)
                })
                .collect();
            if round.is_empty() {
                break;
            }
            stats.rounds += 1;
            let outs = self.run_round(&round, &snaps, path, target);

            // Merge in shard order: deterministic regardless of the
            // fan-out interleaving.
            for ((shard_ix, seeds, keys), out) in round.into_iter().zip(outs) {
                let run_ix = runs.len();
                stats.states_expanded += out.stats.states_visited;
                runs.push(RunRecord {
                    shard: shard_ix,
                    seeds,
                    keys,
                });
                let shard = &self.shards[shard_ix];
                for m in &out.matched {
                    if !shard.ghost[m.index()] {
                        matched.push(shard.globals[m.index()]);
                    }
                }
                if out.hit {
                    let (hops, seed_ix) = out.witness.expect("hit carries a witness");
                    grant = Some((run_ix, hops, seed_ix));
                    break;
                }
                for &(node, step, depth) in &out.reached {
                    let global = shard.globals[node.index()];
                    let key: StateKey = (global.0, step, depth);
                    if imported.insert(key) {
                        stats.exported_states += 1;
                        origin.insert(key, run_ix);
                        let entry = &self.members[global.index()];
                        let q = &mut queues[entry.home as usize];
                        q.0.push((entry.local, step, depth));
                        q.1.push(key);
                    }
                }
            }
        }

        let witness = grant.map(|(run_ix, hops, seed_ix)| {
            self.stitch_witness(
                &runs, &snaps, path, owner_key, run_ix, hops, seed_ix, &origin,
            )
        });
        matched.sort_unstable();
        matched.dedup();
        (
            ShardedEval {
                matched,
                granted: witness.is_some(),
                witness,
            },
            stats,
        )
    }

    /// Runs one fixpoint round: each active shard evaluates its seeds
    /// over its published snapshot — on parallel scoped threads when
    /// several shards are active, inline when one is.
    fn run_round(
        &self,
        round: &[(usize, Vec<SeedState>, Vec<StateKey>)],
        snaps: &[Arc<CsrSnapshot>],
        path: &PathExpr,
        target: Option<NodeId>,
    ) -> Vec<SeededOutcome> {
        let eval = |shard_ix: usize, seeds: &[SeedState]| {
            let shard = &self.shards[shard_ix];
            let shard_target = match target {
                Some(t) if self.members[t.index()].home as usize == shard_ix => {
                    SeededTarget::Member(self.members[t.index()].local)
                }
                _ => SeededTarget::Audience,
            };
            online::evaluate_seeded(
                &shard.graph,
                &snaps[shard_ix],
                path,
                seeds,
                &shard.ghost,
                shard_target,
            )
        };
        // Fan out only when it can pay: several active shards *and*
        // actual hardware parallelism (a scoped spawn per shard per
        // round is pure overhead on one core).
        static CORES: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
        let cores = *CORES.get_or_init(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
        if round.len() == 1 || cores == 1 {
            return round
                .iter()
                .map(|(shard_ix, seeds, _)| eval(*shard_ix, seeds))
                .collect();
        }
        std::thread::scope(|scope| {
            let eval = &eval;
            let handles: Vec<_> = round
                .iter()
                .map(|(shard_ix, seeds, _)| scope.spawn(move || eval(*shard_ix, seeds)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard evaluation panicked"))
                .collect()
        })
    }

    /// Evaluates a bundle's distinct access conditions through the
    /// masked batch fixpoint. By default the whole bundle compiles into
    /// one shared-prefix trie and runs through
    /// [`ShardedSystem::evaluate_conditions_planned`]: shared prefixes
    /// traverse once per 64-condition chunk, masks fork at divergence
    /// points. Under `SOCIALREACH_BUNDLE_PLAN=grouped` (or on `u16`
    /// plan-node overflow) conditions instead group by identical path
    /// expression; each group's owners become condition bits of a
    /// seeded mask BFS (64 per mask word — wider groups chunk into
    /// further words with no cross-talk), and **one** round-based
    /// fixpoint per chunk serves every condition in it. Per-shard
    /// visited/mask state persists across the rounds of a chunk
    /// ([`online::SeededBatchState`]), so total work is linear in the
    /// explored region per condition bit. Returns each condition's
    /// audience (global ids, sorted) in `conds` order, plus the work
    /// census.
    pub fn evaluate_conditions_batched(
        &self,
        conds: &[(NodeId, &PathExpr)],
    ) -> (Vec<Vec<NodeId>>, BundleFixpointStats) {
        let mut stats = BundleFixpointStats::new(self.shards.len());
        let mut audiences: Vec<Vec<NodeId>> = vec![Vec::new(); conds.len()];
        if conds.is_empty() {
            return (audiences, stats);
        }
        if !crate::query::grouped_plan_forced() {
            let paths: Vec<&PathExpr> = conds.iter().map(|&(_, p)| p).collect();
            if let Some(plan) = crate::query::BundlePlan::compile(&paths) {
                return self.evaluate_conditions_planned(conds, &plan);
            }
        }
        let snaps = self.publish_all();

        // Group condition indices by equal path (bundles reuse a small
        // set of templates, so the quadratic probe stays tiny).
        let mut groups: Vec<(usize, Vec<usize>)> = Vec::new();
        for (i, &(_, path)) in conds.iter().enumerate() {
            match groups.iter_mut().find(|(rep, _)| conds[*rep].1 == path) {
                Some((_, members)) => members.push(i),
                None => groups.push((i, vec![i])),
            }
        }

        for (rep, members) in groups {
            let path = conds[rep].1;
            if path.is_empty() {
                for &ci in &members {
                    audiences[ci] = vec![conds[ci].0];
                }
                continue;
            }
            // The router-side record of bits already forwarded, shared
            // across the group's chunks (the word index keys them
            // apart).
            let mut imported = MaskedExportSet::new();
            for (word, chunk) in members.chunks(64).enumerate() {
                let word = word as u32;
                stats.fixpoints += 1;
                // Engines materialize lazily, on a shard's first seed
                // delivery: shards the chunk's traversal never touches
                // never allocate mask arrays.
                let mut engines: Vec<Option<SeededBatchState>> =
                    (0..self.shards.len()).map(|_| None).collect();
                let mut pending: Vec<Vec<MaskedSeedState>> = vec![Vec::new(); self.shards.len()];
                for (bit, &ci) in chunk.iter().enumerate() {
                    let owner = conds[ci].0;
                    let entry = &self.members[owner.index()];
                    imported.insert(
                        MaskedStateKey {
                            member: owner.0,
                            step: 0,
                            depth: 0,
                            word,
                        },
                        1 << bit,
                    );
                    pending[entry.home as usize].push((entry.local, 0, 0, 1 << bit));
                }

                loop {
                    let round: Vec<(usize, Vec<MaskedSeedState>)> = pending
                        .iter_mut()
                        .enumerate()
                        .filter(|(_, seeds)| !seeds.is_empty())
                        .map(|(i, seeds)| (i, std::mem::take(seeds)))
                        .collect();
                    if round.is_empty() {
                        break;
                    }
                    stats.rounds += 1;
                    let outs =
                        self.run_masked_round(&round, &mut engines, &snaps, path, None, false);

                    // Merge in shard order: deterministic regardless
                    // of the fan-out interleaving.
                    for ((shard_ix, _), out) in round.iter().zip(outs) {
                        let shard = &self.shards[*shard_ix];
                        for &(m, bits) in &out.matched {
                            if shard.ghost[m.index()] {
                                continue; // only the home shard speaks
                            }
                            let global = shard.globals[m.index()];
                            let mut b = bits;
                            while b != 0 {
                                let bit = b.trailing_zeros() as usize;
                                b &= b - 1;
                                audiences[chunk[bit]].push(global);
                            }
                        }
                        for &(m, step, depth, bits) in &out.exports {
                            let global = shard.globals[m.index()];
                            let key = MaskedStateKey {
                                member: global.0,
                                step,
                                depth,
                                word,
                            };
                            let new = imported.insert(key, bits);
                            if new != 0 {
                                stats.exported_states += 1;
                                let entry = &self.members[global.index()];
                                pending[entry.home as usize].push((entry.local, step, depth, new));
                            }
                        }
                    }
                }

                for (i, engine) in engines.iter().enumerate() {
                    if let Some(engine) = engine {
                        stats.states_expanded[i] += engine.states_expanded();
                    }
                }
            }
        }

        for audience in &mut audiences {
            audience.sort_unstable();
            // Each (member, bit) pair is reported at most once (the
            // engine's matched masks persist), so this is a no-op kept
            // as a guard.
            audience.dedup();
        }
        (audiences, stats)
    }

    /// The trie half of [`ShardedSystem::evaluate_conditions_batched`]:
    /// runs the whole bundle's compiled shared-prefix plan as **one**
    /// cross-shard fixpoint per 64-condition chunk. Seeds carry the
    /// condition's *root plan node* in the `step` slot of the masked
    /// state key, so exports, imports and re-seeds flow through the
    /// identical round machinery as the grouped path — the plan node id
    /// plays the role the linear automaton's step index plays there,
    /// and per-bit reachability is step-for-step the linear automaton
    /// of that bit's own chain (see [`crate::query::plan`]).
    fn evaluate_conditions_planned(
        &self,
        conds: &[(NodeId, &PathExpr)],
        plan: &crate::query::BundlePlan,
    ) -> (Vec<Vec<NodeId>>, BundleFixpointStats) {
        let mut stats = BundleFixpointStats::new(self.shards.len());
        stats.plan_states = plan.plan_states();
        stats.expr_states = plan.expr_states();
        let mut audiences: Vec<Vec<NodeId>> = vec![Vec::new(); conds.len()];
        let mut traversable: Vec<usize> = Vec::new();
        for (i, &(owner, _)) in conds.iter().enumerate() {
            match plan.root_of(i) {
                Some(_) => traversable.push(i),
                None => audiences[i].push(owner), // empty path: owner only
            }
        }
        if traversable.is_empty() {
            return (audiences, stats);
        }
        let snaps = self.publish_all();
        // The router-side record of bits already forwarded, shared
        // across the chunks (the word index keys them apart).
        let mut imported = MaskedExportSet::new();
        for (word, chunk) in traversable.chunks(64).enumerate() {
            let word = word as u32;
            stats.fixpoints += 1;
            let masks = plan.chunk_masks(chunk);
            // Engines materialize lazily, on a shard's first seed
            // delivery, exactly as in the grouped path.
            let mut engines: Vec<Option<crate::query::PlanBatchState>> =
                (0..self.shards.len()).map(|_| None).collect();
            let mut pending: Vec<Vec<MaskedSeedState>> = vec![Vec::new(); self.shards.len()];
            for (bit, &ci) in chunk.iter().enumerate() {
                let owner = conds[ci].0;
                let root = plan.root_of(ci).expect("traversable condition");
                let entry = &self.members[owner.index()];
                imported.insert(
                    MaskedStateKey {
                        member: owner.0,
                        step: root,
                        depth: 0,
                        word,
                    },
                    1 << bit,
                );
                pending[entry.home as usize].push((entry.local, root, 0, 1 << bit));
            }

            loop {
                let round: Vec<(usize, Vec<MaskedSeedState>)> = pending
                    .iter_mut()
                    .enumerate()
                    .filter(|(_, seeds)| !seeds.is_empty())
                    .map(|(i, seeds)| (i, std::mem::take(seeds)))
                    .collect();
                if round.is_empty() {
                    break;
                }
                stats.rounds += 1;
                let outs = self.run_masked_plan_round(&round, &mut engines, &snaps, plan, &masks);

                // Merge in shard order: deterministic regardless of the
                // fan-out interleaving.
                for ((shard_ix, _), out) in round.iter().zip(outs) {
                    let shard = &self.shards[*shard_ix];
                    for &(m, bits) in &out.matched {
                        if shard.ghost[m.index()] {
                            continue; // only the home shard speaks
                        }
                        let global = shard.globals[m.index()];
                        let mut b = bits;
                        while b != 0 {
                            let bit = b.trailing_zeros() as usize;
                            b &= b - 1;
                            audiences[chunk[bit]].push(global);
                        }
                    }
                    for &(m, node, depth, bits) in &out.exports {
                        let global = shard.globals[m.index()];
                        let key = MaskedStateKey {
                            member: global.0,
                            step: node,
                            depth,
                            word,
                        };
                        let new = imported.insert(key, bits);
                        if new != 0 {
                            stats.exported_states += 1;
                            let entry = &self.members[global.index()];
                            pending[entry.home as usize].push((entry.local, node, depth, new));
                        }
                    }
                }
            }

            for (i, engine) in engines.iter().enumerate() {
                if let Some(engine) = engine {
                    stats.states_expanded[i] += engine.states_expanded();
                }
            }
        }

        for audience in &mut audiences {
            audience.sort_unstable();
            audience.dedup();
        }
        (audiences, stats)
    }

    /// [`ShardedSystem::run_masked_round`] for the trie plan: each
    /// active shard drains its seeded frontier through the plan engine
    /// ([`crate::query::evaluate_plan_batch_seeded`]) over its pinned
    /// snapshot and round-persistent per-node mask state — on parallel
    /// scoped threads when several shards are active. The plan path has
    /// no targeted early-exit and no parent tracking; `check`/`explain`
    /// stay on the linear engine.
    fn run_masked_plan_round(
        &self,
        round: &[(usize, Vec<MaskedSeedState>)],
        engines: &mut [Option<crate::query::PlanBatchState>],
        snaps: &[Arc<CsrSnapshot>],
        plan: &crate::query::BundlePlan,
        masks: &crate::query::ChunkMasks,
    ) -> Vec<SeededBatchOutcome> {
        // Pair each active shard with the mutable borrow of its engine
        // (materialized on first activation); `round` is in ascending
        // shard order, so one pass over `iter_mut` yields the disjoint
        // borrows.
        let mut tasks: Vec<(
            usize,
            &Vec<MaskedSeedState>,
            &mut crate::query::PlanBatchState,
        )> = Vec::with_capacity(round.len());
        let mut it = engines.iter_mut().enumerate();
        for (shard_ix, seeds) in round {
            let slot = loop {
                let (i, e) = it.next().expect("every active shard has an engine slot");
                if i == *shard_ix {
                    break e;
                }
            };
            let engine = slot.get_or_insert_with(|| {
                let shard = &self.shards[*shard_ix];
                crate::query::PlanBatchState::new(&shard.graph, &snaps[*shard_ix], &plan.nodes)
            });
            tasks.push((*shard_ix, seeds, engine));
        }
        let eval = |shard_ix: usize,
                    seeds: &[MaskedSeedState],
                    engine: &mut crate::query::PlanBatchState| {
            let shard = &self.shards[shard_ix];
            crate::query::evaluate_plan_batch_seeded(
                &shard.graph,
                &snaps[shard_ix],
                &plan.nodes,
                masks,
                engine,
                seeds,
                &shard.ghost,
            )
        };
        static CORES: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
        let cores = *CORES.get_or_init(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
        if tasks.len() == 1 || cores == 1 {
            return tasks
                .into_iter()
                .map(|(shard_ix, seeds, engine)| eval(shard_ix, seeds, engine))
                .collect();
        }
        std::thread::scope(|scope| {
            let eval = &eval;
            let handles: Vec<_> = tasks
                .into_iter()
                .map(|(shard_ix, seeds, engine)| scope.spawn(move || eval(shard_ix, seeds, engine)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard evaluation panicked"))
                .collect()
        })
    }

    /// Targeted single-condition evaluation through the **masked
    /// seeded engine**: does `requester` satisfy `(owner, path)`? The
    /// condition runs as a 1-bit bundle (bit 0, word 0) of the same
    /// cross-shard fixpoint that serves batched audiences —
    /// round-persistent per-shard mask state keeps the work linear in
    /// the explored region even when a walk ping-pongs across a
    /// boundary — with two targeted extras: the requester's home shard
    /// **early-exits** the moment the requester completes the final
    /// step, and every engine tracks first-arrival parent pointers so
    /// the stitched witness is read off the persistent chains
    /// ([`ShardedSystem::stitch_traced`]) instead of replaying runs.
    ///
    /// This replaces the legacy per-condition fixpoint (fresh
    /// per-round visited state) for single `check`/`explain`;
    /// `matched` is always empty — audiences go through
    /// [`ShardedSystem::evaluate_conditions_batched`].
    pub fn evaluate_condition_targeted_with_stats(
        &self,
        owner: NodeId,
        path: &PathExpr,
        requester: NodeId,
    ) -> (ShardedEval, ReadStats) {
        let mut stats = ReadStats {
            conditions: 1,
            traversals: 1,
            ..ReadStats::default()
        };
        if path.is_empty() {
            let granted = requester == owner;
            return (
                ShardedEval {
                    matched: Vec::new(),
                    granted,
                    witness: granted.then(Vec::new),
                },
                stats,
            );
        }
        let snaps = self.publish_all();
        let req_entry = &self.members[requester.index()];
        let stop = (req_entry.home as usize, req_entry.local);

        let owner_entry = &self.members[owner.index()];
        let mut imported = MaskedExportSet::new();
        let mut origin: HashMap<StateKey, usize> = HashMap::new();
        let mut engines: Vec<Option<SeededBatchState>> =
            (0..self.shards.len()).map(|_| None).collect();
        let mut pending: Vec<Vec<MaskedSeedState>> = vec![Vec::new(); self.shards.len()];
        imported.insert(
            MaskedStateKey {
                member: owner.0,
                step: 0,
                depth: 0,
                word: 0,
            },
            1,
        );
        pending[owner_entry.home as usize].push((owner_entry.local, 0, 0, 1));

        let mut hit: Option<(usize, u16, u32)> = None;
        'fixpoint: loop {
            let round: Vec<(usize, Vec<MaskedSeedState>)> = pending
                .iter_mut()
                .enumerate()
                .filter(|(_, seeds)| !seeds.is_empty())
                .map(|(i, seeds)| (i, std::mem::take(seeds)))
                .collect();
            if round.is_empty() {
                break;
            }
            stats.rounds += 1;
            let outs = self.run_masked_round(&round, &mut engines, &snaps, path, Some(stop), true);
            for ((shard_ix, _), out) in round.iter().zip(outs) {
                if let Some((step, depth)) = out.hit {
                    // The chain to the hit consists of states seeded in
                    // earlier rounds, so `origin` already covers every
                    // cross-shard hand-off the trace will follow —
                    // breaking without processing further exports is
                    // safe (and the point of the early exit).
                    hit = Some((*shard_ix, step, depth));
                    break 'fixpoint;
                }
                let shard = &self.shards[*shard_ix];
                for &(m, step, depth, bits) in &out.exports {
                    let global = shard.globals[m.index()];
                    let key = MaskedStateKey {
                        member: global.0,
                        step,
                        depth,
                        word: 0,
                    };
                    let new = imported.insert(key, bits);
                    if new != 0 {
                        stats.exported_states += 1;
                        origin.insert((global.0, step, depth), *shard_ix);
                        let entry = &self.members[global.index()];
                        pending[entry.home as usize].push((entry.local, step, depth, new));
                    }
                }
            }
        }
        for engine in engines.iter().flatten() {
            stats.states_expanded += engine.states_expanded();
        }

        let witness = hit.map(|(shard_ix, step, depth)| {
            self.stitch_traced(&engines, &origin, owner, shard_ix, stop.1, step, depth)
        });
        (
            ShardedEval {
                matched: Vec::new(),
                granted: witness.is_some(),
                witness,
            },
            stats,
        )
    }

    /// Stitches a targeted grant's witness by walking the per-shard
    /// **persistent parent chains** (no replay): the hit shard's
    /// segment ends at a seed the router forwarded; `origin` names the
    /// shard that exported it, where the chain continues from the
    /// member's ghost replica — until the owner seed terminates the
    /// walk.
    #[allow(clippy::too_many_arguments)]
    fn stitch_traced(
        &self,
        engines: &[Option<SeededBatchState>],
        origin: &HashMap<StateKey, usize>,
        owner: NodeId,
        mut shard_ix: usize,
        mut local: NodeId,
        mut step: u16,
        mut depth: u32,
    ) -> Vec<ShardedHop> {
        let mut segments: Vec<Vec<ShardedHop>> = Vec::new();
        loop {
            let engine = engines[shard_ix]
                .as_ref()
                .expect("traced shard ran a fixpoint");
            let (hops, (seed_local, seed_step, seed_depth)) = engine
                .trace(local, step, depth)
                .expect("granting chain is parent-tracked");
            segments.push(self.translate_hops(shard_ix, &hops));
            let global = self.shards[shard_ix].globals[seed_local.index()];
            if global == owner && seed_step == 0 && seed_depth == 0 {
                break;
            }
            let src = *origin
                .get(&(global.0, seed_step, seed_depth))
                .expect("every imported seed has an exporting shard");
            let ghost_local = self.members[global.index()]
                .ghosts
                .iter()
                .find(|&&(s, _)| s as usize == src)
                .map(|&(_, l)| l)
                .expect("exported states live at ghost replicas");
            shard_ix = src;
            local = ghost_local;
            step = seed_step;
            depth = seed_depth;
        }
        segments.reverse();
        segments.concat()
    }

    /// Runs one masked fixpoint round: each active shard drains its
    /// seeded frontier over its pinned snapshot and round-persistent
    /// mask state — on parallel scoped threads when several shards are
    /// active and the host has real cores, inline otherwise. With
    /// `stop = Some((shard, local))` that shard's run early-exits when
    /// the member completes the final step; `parents` builds the
    /// engines with first-arrival parent tracking (the targeted path).
    fn run_masked_round(
        &self,
        round: &[(usize, Vec<MaskedSeedState>)],
        engines: &mut [Option<SeededBatchState>],
        snaps: &[Arc<CsrSnapshot>],
        path: &PathExpr,
        stop: Option<(usize, NodeId)>,
        parents: bool,
    ) -> Vec<SeededBatchOutcome> {
        // Pair each active shard with the mutable borrow of its
        // engine (materialized on first activation); `round` is in
        // ascending shard order, so one pass over `iter_mut` yields
        // the disjoint borrows.
        let mut tasks: Vec<(usize, &Vec<MaskedSeedState>, &mut SeededBatchState)> =
            Vec::with_capacity(round.len());
        let mut it = engines.iter_mut().enumerate();
        for (shard_ix, seeds) in round {
            let slot = loop {
                let (i, e) = it.next().expect("every active shard has an engine slot");
                if i == *shard_ix {
                    break e;
                }
            };
            let engine = slot.get_or_insert_with(|| {
                let shard = &self.shards[*shard_ix];
                if parents {
                    SeededBatchState::with_parents(&shard.graph, &snaps[*shard_ix], path)
                } else {
                    SeededBatchState::new(&shard.graph, &snaps[*shard_ix], path)
                }
            });
            tasks.push((*shard_ix, seeds, engine));
        }
        let eval = |shard_ix: usize, seeds: &[MaskedSeedState], engine: &mut SeededBatchState| {
            let shard = &self.shards[shard_ix];
            online::evaluate_audience_batch_seeded_stop(
                &shard.graph,
                &snaps[shard_ix],
                path,
                engine,
                seeds,
                &shard.ghost,
                stop.filter(|&(s, _)| s == shard_ix).map(|(_, l)| l),
            )
        };
        static CORES: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
        let cores = *CORES.get_or_init(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
        if tasks.len() == 1 || cores == 1 {
            return tasks
                .into_iter()
                .map(|(shard_ix, seeds, engine)| eval(shard_ix, seeds, engine))
                .collect();
        }
        std::thread::scope(|scope| {
            let eval = &eval;
            let handles: Vec<_> = tasks
                .into_iter()
                .map(|(shard_ix, seeds, engine)| scope.spawn(move || eval(shard_ix, seeds, engine)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard evaluation panicked"))
                .collect()
        })
    }

    /// Stitches the granting run's local segment with replays of the
    /// exporting runs, back to the owner seed.
    #[allow(clippy::too_many_arguments)]
    fn stitch_witness(
        &self,
        runs: &[RunRecord],
        snaps: &[Arc<CsrSnapshot>],
        path: &PathExpr,
        owner_key: StateKey,
        run_ix: usize,
        hops: Vec<WitnessHop>,
        seed_ix: usize,
        origin: &HashMap<StateKey, usize>,
    ) -> Vec<ShardedHop> {
        let mut segments: Vec<Vec<ShardedHop>> =
            vec![self.translate_hops(runs[run_ix].shard, &hops)];
        let mut key = runs[run_ix].keys[seed_ix];
        while key != owner_key {
            let prev_ix = *origin
                .get(&key)
                .expect("every imported state has an exporting run");
            let rr = &runs[prev_ix];
            let shard = &self.shards[rr.shard];
            // The exported state lived at the member's ghost replica on
            // the exporting shard.
            let ghost_local = self.members[key.0 as usize]
                .ghosts
                .iter()
                .find(|&&(s, _)| s as usize == rr.shard)
                .map(|&(_, l)| l)
                .expect("exported states live at ghost replicas");
            let out = online::evaluate_seeded(
                &shard.graph,
                &snaps[rr.shard],
                path,
                &rr.seeds,
                &shard.ghost,
                SeededTarget::State(ghost_local, key.1, key.2),
            );
            let (hops, seed_ix) = out
                .witness
                .expect("replaying an exporting run reaches its export");
            segments.push(self.translate_hops(rr.shard, &hops));
            key = rr.keys[seed_ix];
        }
        segments.reverse();
        segments.concat()
    }

    /// Translates shard-local witness hops into global
    /// [`ShardedHop`]s.
    fn translate_hops(&self, shard_ix: usize, hops: &[WitnessHop]) -> Vec<ShardedHop> {
        let shard = &self.shards[shard_ix];
        hops.iter()
            .map(|&(eid, forward)| {
                let rec = shard.graph.edge(eid);
                ShardedHop {
                    src: shard.globals[rec.src.index()],
                    dst: shard.globals[rec.dst.index()],
                    label: rec.label,
                    forward,
                }
            })
            .collect()
    }
}

/// The deployment-agnostic read surface: this impl block is the **one
/// place** the sharded backend's reads live (the deprecated inherent
/// methods forward here).
impl AccessService for ShardedSystem {
    fn describe(&self) -> String {
        format!("sharded(n={})", self.shards.len())
    }

    fn num_members(&self) -> usize {
        ShardedSystem::num_members(self)
    }

    fn num_relationships(&self) -> usize {
        self.num_edges()
    }

    fn resolve_user(&self, name: &str) -> Result<NodeId, EvalError> {
        self.user(name)
    }

    fn member_name(&self, member: NodeId) -> &str {
        ShardedSystem::member_name(self, member)
    }

    fn label_name(&self, label: LabelId) -> &str {
        self.vocab.label_name(label)
    }

    /// A single targeted check runs the early-exiting per-condition
    /// cross-shard fixpoint (same semantics as the single-graph
    /// enforcer: owner always granted, rules disjoin, conditions
    /// within a rule conjoin, no rules ⇒ private).
    fn check(&self, rid: ResourceId, requester: NodeId) -> Result<Decision, EvalError> {
        Ok(self.check_with_stats(rid, requester)?.0)
    }

    /// Decides a batch of requests through **one** masked cross-shard
    /// fixpoint per bundle (per distinct path among the touched
    /// resources' conditions), rather than one per request or per
    /// condition: the uncached resources' condition audiences are
    /// materialized together and each request is decided by audience
    /// membership — the two are equivalent because a rule grants
    /// exactly the members in the intersection of its condition
    /// audiences. Decisions come back in request order and populate
    /// the decision cache. `threads` is accepted for API stability;
    /// the fixpoint already fans out across shards on parallel scoped
    /// threads.
    fn check_batch(
        &self,
        requests: &[(ResourceId, NodeId)],
        threads: usize,
    ) -> Result<Vec<Decision>, EvalError> {
        Ok(self.check_batch_with_stats(requests, threads)?.0)
    }

    /// Audiences of a whole bundle of resources, in `rids` order,
    /// through **one** masked cross-shard fixpoint per bundle: the
    /// distinct `(owner, path)` conditions are grouped by path and
    /// each group's owners traverse together as condition bits of a
    /// seeded mask BFS ([`ShardedSystem::evaluate_conditions_batched`]).
    /// The per-resource merge semantics are the single-graph system's,
    /// literally ([`crate::engine::merge_bundle_audiences`]); the
    /// fixpoint census comes back as the uniform [`ReadStats`].
    fn audience_batch_with_stats(
        &self,
        rids: &[ResourceId],
    ) -> Result<(Vec<Vec<NodeId>>, ReadStats), EvalError> {
        let mut stats = ReadStats::default();
        let audiences = crate::engine::merge_bundle_audiences(&self.store, rids, |uniq| {
            let (audiences, s) = self.evaluate_conditions_batched(uniq);
            stats = ReadStats {
                conditions: uniq.len(),
                traversals: s.fixpoints,
                rounds: s.rounds,
                states_expanded: s.states_expanded.iter().sum(),
                exported_states: s.exported_states,
                plan_states: s.plan_states,
                expr_states: s.expr_states,
            };
            Ok(audiences)
        })?;
        Ok((audiences, stats))
    }

    /// Ad-hoc query bundles run the same masked cross-shard fixpoint
    /// as registered-rule bundles
    /// ([`ShardedSystem::evaluate_conditions_batched`]). Parsing is
    /// read-only against the master vocabulary — a query mentioning a
    /// never-seen relationship type or attribute is unsatisfiable and
    /// reports an empty audience without touching any shard.
    fn query_audience_bundle(
        &self,
        queries: &[(NodeId, &str)],
    ) -> Result<Vec<Vec<NodeId>>, EvalError> {
        let texts: Vec<&str> = queries.iter().map(|&(_, t)| t).collect();
        let parsed = crate::query::parse_queries_readonly(&texts, &self.vocab)?;
        let mut out: Vec<Vec<NodeId>> = vec![Vec::new(); queries.len()];
        let mut conds: Vec<(NodeId, &PathExpr)> = Vec::new();
        let mut slots: Vec<usize> = Vec::new();
        for (i, path) in parsed.iter().enumerate() {
            if let Some(path) = path {
                conds.push((queries[i].0, path));
                slots.push(i);
            }
        }
        if !conds.is_empty() {
            let (audiences, _) = self.evaluate_conditions_batched(&conds);
            for (slot, audience) in slots.into_iter().zip(audiences) {
                out[slot] = audience;
            }
        }
        Ok(out)
    }

    /// Explains a grant with one stitched cross-shard walk per
    /// satisfied condition of the first granting rule.
    fn explain(
        &self,
        rid: ResourceId,
        requester: NodeId,
    ) -> Result<Option<Explanation>, EvalError> {
        Ok(self.explain_with_stats(rid, requester)?.0)
    }

    fn cache_stats(&self) -> (u64, u64) {
        ShardedSystem::cache_stats(self)
    }

    fn check_with_stats(
        &self,
        rid: ResourceId,
        requester: NodeId,
    ) -> Result<(Decision, ReadStats), EvalError> {
        let mut stats = ReadStats::default();
        let owner = self.store.owner_of(rid)?;
        if requester == owner {
            return Ok((Decision::Grant, stats));
        }
        if let Some(&d) = self.cache.read().get(&(rid, requester)) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok((d, stats));
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        let mut decision = Decision::Deny;
        'rules: for rule in self.store.rules_for(rid) {
            if rule.conditions.is_empty() {
                continue;
            }
            for cond in &rule.conditions {
                let (out, s) =
                    self.evaluate_condition_targeted_with_stats(cond.owner, &cond.path, requester);
                stats.absorb(&s);
                if !out.granted {
                    continue 'rules;
                }
            }
            decision = Decision::Grant;
            break;
        }
        self.cache.write().insert((rid, requester), decision);
        Ok((decision, stats))
    }

    fn check_batch_with_stats(
        &self,
        requests: &[(ResourceId, NodeId)],
        threads: usize,
    ) -> Result<(Vec<Decision>, ReadStats), EvalError> {
        let _ = threads;
        if requests.len() == 1 {
            // A single targeted check is cheaper through the
            // early-exiting masked fixpoint.
            let (rid, req) = requests[0];
            let (d, s) = self.check_with_stats(rid, req)?;
            return Ok((vec![d], s));
        }
        self.check_batch_via_audiences(requests, BundleStrategy::Batched)
    }

    fn explain_with_stats(
        &self,
        rid: ResourceId,
        requester: NodeId,
    ) -> Result<(Option<Explanation>, ReadStats), EvalError> {
        let mut stats = ReadStats::default();
        let owner = self.store.owner_of(rid)?;
        if requester == owner {
            return Ok((Some(Explanation::Ownership { owner }), stats));
        }
        'rules: for rule in self.store.rules_for(rid) {
            if rule.conditions.is_empty() {
                continue;
            }
            let mut walks = Vec::new();
            for cond in &rule.conditions {
                let (out, s) =
                    self.evaluate_condition_targeted_with_stats(cond.owner, &cond.path, requester);
                stats.absorb(&s);
                let Some(witness) = out.witness else {
                    continue 'rules;
                };
                walks.push(WitnessWalk {
                    start: cond.owner,
                    hops: witness,
                });
            }
            return Ok((Some(Explanation::Rule { walks }), stats));
        }
        Ok((None, stats))
    }

    fn stats_supported(&self) -> bool {
        true
    }

    fn audience_batch_forced(
        &self,
        rids: &[ResourceId],
        strategy: BundleStrategy,
    ) -> Result<(Vec<Vec<NodeId>>, ReadStats), EvalError> {
        match strategy {
            BundleStrategy::Batched => AccessService::audience_batch_with_stats(self, rids),
            BundleStrategy::PerCondition => self.audience_batch_per_condition_with_stats(rids),
        }
    }

    fn check_batch_forced(
        &self,
        requests: &[(ResourceId, NodeId)],
        threads: usize,
        plan: CheckPlan,
    ) -> Result<(Vec<Decision>, ReadStats), EvalError> {
        let _ = threads;
        match plan {
            CheckPlan::Targeted => {
                // One early-exiting masked fixpoint per request;
                // duplicates are served by the decision cache.
                let mut stats = ReadStats::default();
                let mut decisions = Vec::with_capacity(requests.len());
                for &(rid, req) in requests {
                    let (d, s) = self.check_with_stats(rid, req)?;
                    stats.absorb(&s);
                    decisions.push(d);
                }
                Ok((decisions, stats))
            }
            CheckPlan::Audience(strategy) => self.check_batch_via_audiences(requests, strategy),
        }
    }
}

/// The deployment-agnostic write surface (thin forwards onto the
/// inherent mutators, which stay for richer ergonomics).
impl MutateService for ShardedSystem {
    fn add_user(&mut self, name: &str) -> NodeId {
        ShardedSystem::add_user(self, name)
    }

    fn set_user_attr(&mut self, user: NodeId, key: &str, value: AttrValue) {
        ShardedSystem::set_user_attr(self, user, key, value);
    }

    fn add_relationship(&mut self, src: NodeId, label: &str, dst: NodeId) {
        self.connect(src, label, dst);
    }

    fn add_mutual_relationship(&mut self, a: NodeId, label: &str, b: NodeId) {
        self.connect_mutual(a, label, b);
    }

    fn add_resource(&mut self, owner: NodeId) -> ResourceId {
        self.share(owner)
    }

    fn add_rule(&mut self, rid: ResourceId, path_text: &str) -> Result<(), EvalError> {
        self.allow(rid, path_text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The system.rs fixture, sharded: Alice→Bob→Carol chained friends,
    /// Carol→Dave colleague, a resource of Alice's with `friend+[1,2]`.
    fn populated(shards: u32) -> (ShardedSystem, ResourceId) {
        let mut sys = ShardedSystem::new(shards, 7);
        let alice = sys.add_user("Alice");
        let bob = sys.add_user("Bob");
        let carol = sys.add_user("Carol");
        let dave = sys.add_user("Dave");
        sys.connect(alice, "friend", bob);
        sys.connect(bob, "friend", carol);
        sys.connect(carol, "colleague", dave);
        let rid = sys.share(alice);
        sys.allow(rid, "friend+[1,2]").unwrap();
        (sys, rid)
    }

    #[test]
    fn decisions_match_the_unsharded_semantics_across_shard_counts() {
        for shards in [1, 2, 3, 5] {
            let (sys, rid) = populated(shards);
            let bob = sys.user("Bob").unwrap();
            let carol = sys.user("Carol").unwrap();
            let dave = sys.user("Dave").unwrap();
            assert_eq!(
                sys.service().check(rid, bob).unwrap(),
                Decision::Grant,
                "{shards}"
            );
            assert_eq!(
                sys.service().check(rid, carol).unwrap(),
                Decision::Grant,
                "{shards}"
            );
            assert_eq!(
                sys.service().check(rid, dave).unwrap(),
                Decision::Deny,
                "{shards}"
            );
        }
    }

    #[test]
    fn audience_matches_across_shard_counts() {
        for shards in [1, 2, 3, 5] {
            let (sys, rid) = populated(shards);
            let names: Vec<&str> = sys
                .service()
                .audience(rid)
                .unwrap()
                .iter()
                .map(|&n| sys.member_name(n))
                .collect();
            assert_eq!(names, vec!["Alice", "Bob", "Carol"], "shards {shards}");
        }
    }

    #[test]
    fn members_land_on_their_assigned_shards() {
        let (sys, _) = populated(4);
        for name in ["Alice", "Bob", "Carol", "Dave"] {
            let m = sys.user(name).unwrap();
            assert_eq!(sys.member_shard(m), sys.assignment().shard_of(name));
        }
        let census: usize = sys.shard_stats().iter().map(|s| s.members).sum();
        assert_eq!(census, 4);
    }

    #[test]
    fn boundary_table_records_cross_shard_edges() {
        // Pin everyone to alternating shards so every edge crosses.
        let a = ShardAssignment::explicit(
            2,
            0,
            vec![
                ("Alice".into(), 0),
                ("Bob".into(), 1),
                ("Carol".into(), 0),
                ("Dave".into(), 1),
            ],
        );
        let mut sys = ShardedSystem::with_assignment(a);
        let alice = sys.add_user("Alice");
        let bob = sys.add_user("Bob");
        let carol = sys.add_user("Carol");
        let dave = sys.add_user("Dave");
        sys.connect(alice, "friend", bob);
        sys.connect(bob, "friend", carol);
        sys.connect(carol, "colleague", dave);
        assert_eq!(sys.boundary().len(), 3, "every edge crosses");
        let stats = sys.shard_stats();
        assert_eq!(stats[0].members, 2);
        assert_eq!(stats[1].members, 2);
        assert!(stats[0].ghosts > 0 && stats[1].ghosts > 0);
        let rid = sys.share(alice);
        sys.allow(rid, "friend+[1,2]").unwrap();
        assert_eq!(sys.service().check(rid, carol).unwrap(), Decision::Grant);
        assert_eq!(sys.service().check(rid, dave).unwrap(), Decision::Deny);
        let audience: Vec<&str> = sys
            .service()
            .audience(rid)
            .unwrap()
            .iter()
            .map(|&n| sys.member_name(n))
            .collect();
        assert_eq!(audience, vec!["Alice", "Bob", "Carol"]);
    }

    #[test]
    fn explain_stitches_a_walk_across_shards() {
        let a = ShardAssignment::explicit(2, 0, vec![("Alice".into(), 0), ("Carol".into(), 1)]);
        let mut sys = ShardedSystem::with_assignment(a);
        let alice = sys.add_user("Alice");
        let bob = sys.add_user("Bob");
        let carol = sys.add_user("Carol");
        sys.connect(alice, "friend", bob);
        sys.connect(bob, "friend", carol);
        let rid = sys.share(alice);
        sys.allow(rid, "friend+[1,2]").unwrap();
        let lines = sys
            .service()
            .explain_lines(rid, carol)
            .unwrap()
            .expect("granted");
        assert_eq!(lines.len(), 1);
        assert!(lines[0].starts_with("Alice"));
        assert!(lines[0].contains("-friend->"));
        assert!(lines[0].ends_with("Carol"), "{}", lines[0]);
        assert!(sys.service().explain_lines(rid, bob).unwrap().is_some());
        assert_eq!(
            sys.service().explain_lines(rid, alice).unwrap().unwrap()[0],
            "Alice owns the resource"
        );
    }

    #[test]
    fn appends_republish_shards_incrementally() {
        let (mut sys, rid) = populated(2);
        let dave = sys.user("Dave").unwrap();
        assert_eq!(sys.service().check(rid, dave).unwrap(), Decision::Deny);
        let epochs_before = sys.snapshot_epochs();
        assert!(epochs_before.iter().all(|&e| e >= 1), "reads published");
        let alice = sys.user("Alice").unwrap();
        sys.connect(alice, "friend", dave);
        assert_eq!(
            sys.service().check(rid, dave).unwrap(),
            Decision::Grant,
            "post-append reads see the new edge"
        );
        let epochs_after = sys.snapshot_epochs();
        assert!(
            epochs_after.iter().zip(&epochs_before).any(|(a, b)| a > b),
            "the touched shard republished"
        );
    }

    #[test]
    fn cache_and_batch_mirror_the_facade() {
        let (sys, rid) = populated(3);
        let bob = sys.user("Bob").unwrap();
        let dave = sys.user("Dave").unwrap();
        sys.service().check(rid, bob).unwrap();
        sys.service().check(rid, bob).unwrap();
        let (hits, misses) = sys.cache_stats();
        assert_eq!((hits, misses), (1, 1));
        let requests: Vec<_> = (0..30)
            .map(|i| (rid, if i % 2 == 0 { bob } else { dave }))
            .collect();
        let sequential: Vec<Decision> = requests
            .iter()
            .map(|&(r, u)| sys.service().check(r, u).unwrap())
            .collect();
        for threads in [1, 2, 4] {
            assert_eq!(
                sys.service().check_batch(&requests, threads).unwrap(),
                sequential
            );
        }
        assert!(matches!(
            sys.service().check(ResourceId(99), bob),
            Err(EvalError::UnknownResource(99))
        ));
    }

    #[test]
    fn from_graph_preserves_ids_and_decisions() {
        let mut g = SocialGraph::new();
        let a = g.add_node("Alice");
        let b = g.add_node("Bob");
        let c = g.add_node("Carol");
        g.connect(a, "friend", b);
        g.connect(b, "colleague", c);
        g.set_node_attr(c, "age", 44i64);
        let mut store = PolicyStore::new();
        let rid = store.register_resource(a);
        store
            .allow(rid, "friend+[1]/colleague+[1]{age>=40}", &mut g)
            .unwrap();

        let mut sys = ShardedSystem::from_graph(&g, ShardAssignment::hashed(3, 1));
        sys.adopt_store(store.clone());
        assert_eq!(sys.num_members(), 3);
        assert_eq!(sys.num_edges(), 2);
        assert_eq!(sys.user("Carol").unwrap(), c);
        assert_eq!(sys.service().check(rid, c).unwrap(), Decision::Grant);
        assert_eq!(sys.service().check(rid, b).unwrap(), Decision::Deny);
        let audience = sys.service().audience(rid).unwrap();
        assert_eq!(audience, vec![a, c]);
    }

    #[test]
    fn ghost_attributes_stay_synchronized() {
        // Predicate at a boundary member: the ghost replica must see
        // attribute updates made after the ghost materialized.
        let a = ShardAssignment::explicit(2, 0, vec![("A".into(), 0), ("B".into(), 1)]);
        let mut sys = ShardedSystem::with_assignment(a);
        let x = sys.add_user("A");
        let y = sys.add_user("B");
        sys.connect(x, "friend", y); // materializes ghosts
        sys.set_user_attr(y, "age", 20i64); // after ghost creation
        let rid = sys.share(x);
        sys.allow(rid, "friend+[1]{age>=30}").unwrap();
        assert_eq!(sys.service().check(rid, y).unwrap(), Decision::Deny);
        sys.set_user_attr(y, "age", 35i64);
        assert_eq!(sys.service().check(rid, y).unwrap(), Decision::Grant);
        let lines = sys
            .service()
            .explain_lines(rid, y)
            .unwrap()
            .expect("granted");
        assert_eq!(lines[0], "A -friend-> B");
    }
}
