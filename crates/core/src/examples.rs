//! The paper's running example: the Figure 1 social subgraph, the
//! Figure 2 query Q1, and the §3.3–3.4 worked queries.
//!
//! These constructors are shared by the unit tests, the integration
//! tests and the `paper-artifacts` binary so every figure is regenerated
//! from one source of truth.

use crate::path::{parse_path, PathExpr};
use socialreach_graph::{NodeId, SocialGraph};

/// The seven members of Figure 1, in the order the paper abbreviates
/// them (A, B, C, D, E, F, G).
pub const MEMBERS: [&str; 7] = ["Alice", "Bill", "Colin", "David", "Elena", "Fred", "George"];

/// Builds the Figure 1 subgraph: 7 members, 12 labeled edges over
/// `{Friend, Colleague, Parent}`, Alice's attribute tuple from §2
/// (`gender = female, age = 24`), and the edge annotations shown in the
/// figure (`Friend Babysitting;0.8` on Alice→Colin, `Colleague
/// biology;0.6` on Alice→David).
///
/// Edge list (reconstructed from the Figure 5 reachability table, which
/// enumerates every edge of the example):
///
/// ```text
/// Friend    Alice  -> Colin      Friend    Bill   -> Elena
/// Colleague Alice  -> David      Parent    Colin  -> Fred
/// Friend    Alice  -> Bill       Colleague David  -> Fred
/// Friend    Colin  -> David      Parent    David  -> George
/// Friend    Elena  -> Bill       Friend    Elena  -> David
/// Friend    Elena  -> George     Friend    Fred   -> George
/// ```
pub fn paper_graph() -> SocialGraph {
    let mut g = SocialGraph::new();
    let ids: Vec<NodeId> = MEMBERS.iter().map(|n| g.add_node(n)).collect();
    let [alice, bill, colin, david, elena, fred, george] = ids[..] else {
        unreachable!("exactly seven members");
    };

    let friend = g.intern_label("friend");
    let colleague = g.intern_label("colleague");
    let parent = g.intern_label("parent");

    // The order matches the Figure 5 node numbering (1..=12 after the
    // virtual Null→Alice node 0).
    let e_ac = g.add_edge(alice, colin, friend); // 1: Friend A-C
    let e_ad = g.add_edge(alice, david, colleague); // 2: Colleague A-D
    g.add_edge(alice, bill, friend); // 3: Friend A-B
    g.add_edge(colin, david, friend); // 4: Friend C-D
    g.add_edge(elena, bill, friend); // 5: Friend E-B
    g.add_edge(bill, elena, friend); // 6: Friend B-E
    g.add_edge(colin, fred, parent); // 7: Parent C-F
    g.add_edge(david, fred, colleague); // 8: Colleague D-F
    g.add_edge(david, george, parent); // 9: Parent D-G
    g.add_edge(elena, david, friend); // 10: Friend E-D
    g.add_edge(elena, george, friend); // 11: Friend E-G
    g.add_edge(fred, george, friend); // 12: Friend F-G

    // §2: δ(Alice) = (gender = female, age = 24). The remaining
    // attribute tuples are illustrative (the paper shows only Alice's).
    g.set_node_attr(alice, "gender", "female");
    g.set_node_attr(alice, "age", 24i64);
    g.set_node_attr(bill, "age", 31i64);
    g.set_node_attr(colin, "age", 28i64);
    g.set_node_attr(david, "age", 45i64);
    g.set_node_attr(elena, "age", 27i64);
    g.set_node_attr(fred, "age", 16i64);
    g.set_node_attr(george, "age", 52i64);

    // Figure 1 edge annotations (topic; trust).
    g.set_edge_attr(e_ac, "topic", "Babysitting");
    g.set_edge_attr(e_ac, "trust", 0.8f64);
    g.set_edge_attr(e_ad, "topic", "biology");
    g.set_edge_attr(e_ad, "trust", 0.6f64);

    g
}

/// The Figure 2 reachability query Q1:
/// `Alice / friend+[1,2] / colleague+[1]` — *"the colleagues of Alice's
/// friends or those of the friends of her friends"*.
pub fn q1(g: &mut SocialGraph) -> (NodeId, PathExpr) {
    let alice = g.node_by_name("Alice").expect("paper graph has Alice");
    let path =
        parse_path("friend+[1,2]/colleague+[1]", g.vocab_mut()).expect("Q1 is syntactically valid");
    (alice, path)
}

/// The §3.3–3.4 worked query `/friend/parent/friend` from Alice —
/// *"the friends of her friends's parents"* — whose single matching walk
/// is Alice → Colin → Fred → George.
pub fn worked_query(g: &mut SocialGraph) -> (NodeId, PathExpr) {
    let alice = g.node_by_name("Alice").expect("paper graph has Alice");
    let path = parse_path("friend+[1]/parent+[1]/friend+[1]", g.vocab_mut()).expect("valid path");
    (alice, path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::online;

    #[test]
    fn figure_1_shape() {
        let g = paper_graph();
        assert_eq!(g.num_nodes(), 7);
        assert_eq!(g.num_edges(), 12);
        assert_eq!(g.vocab().num_labels(), 3);
        // Label census: 9 friend, 2 colleague... no: friend edges are
        // A-C, A-B, C-D, E-B, B-E, E-D, E-G, F-G = 8; colleague A-D,
        // D-F = 2; parent C-F, D-G = 2.
        let friend = g.vocab().label("friend").unwrap();
        let colleague = g.vocab().label("colleague").unwrap();
        let parent = g.vocab().label("parent").unwrap();
        let census = |l| g.edges().filter(|(_, r)| r.label == l).count();
        assert_eq!(census(friend), 8);
        assert_eq!(census(colleague), 2);
        assert_eq!(census(parent), 2);
    }

    #[test]
    fn alice_attributes_match_section_2() {
        let g = paper_graph();
        let alice = g.node_by_name("Alice").unwrap();
        assert_eq!(g.node_attr_by_name(alice, "gender"), Some(&"female".into()));
        assert_eq!(g.node_attr_by_name(alice, "age"), Some(&24i64.into()));
    }

    #[test]
    fn friend_path_alice_to_george_has_length_3() {
        // §2: "from Alice to George, there is a friend-typed path
        // (Alice-Bill-Elena-George) of length 3".
        let mut g = paper_graph();
        let alice = g.node_by_name("Alice").unwrap();
        let george = g.node_by_name("George").unwrap();
        let p = parse_path("friend+[3]", g.vocab_mut()).unwrap();
        let out = online::evaluate(&g, alice, &p, Some(george));
        assert!(out.granted);
        let witness = out.witness.unwrap();
        assert_eq!(witness.len(), 3);
    }

    #[test]
    fn q1_grants_exactly_fred() {
        // Friends of Alice within 2 hops: {Colin, Bill} ∪ {David, Elena};
        // their direct colleagues: David → Fred only.
        let mut g = paper_graph();
        let (alice, path) = q1(&mut g);
        let out = online::evaluate(&g, alice, &path, None);
        let names: Vec<&str> = out.matched.iter().map(|&n| g.node_name(n)).collect();
        assert_eq!(names, vec!["Fred"]);
    }

    #[test]
    fn worked_query_grants_george_via_colin_and_fred() {
        let mut g = paper_graph();
        let (alice, path) = worked_query(&mut g);
        let out = online::evaluate(&g, alice, &path, None);
        let names: Vec<&str> = out.matched.iter().map(|&n| g.node_name(n)).collect();
        assert_eq!(names, vec!["George"]);
        // And the witness is the §3.4 walk Alice→Colin→Fred→George.
        let george = g.node_by_name("George").unwrap();
        let out = online::evaluate(&g, alice, &path, Some(george));
        let walk: Vec<&str> = out
            .witness
            .unwrap()
            .iter()
            .map(|&(e, _)| g.node_name(g.edge(e).dst))
            .collect();
        assert_eq!(walk, vec!["Colin", "Fred", "George"]);
    }
}
