//! Line-query planning — the §3.1 query transformation (Figure 4).
//!
//! An ordered label-constraint reachability query is rewritten into one
//! or more **line queries** before hitting the join index. Every line
//! query fixes, for each single hop of the walk, the relationship label
//! and the traversal orientation, so that matching tuples are sequences
//! of line-graph vertices:
//!
//! * a depth set expands combinatorially: `friend+[1,2]/colleague+[1]`
//!   becomes the two line queries of Figure 4 —
//!   `friend/colleague` and `friend/friend/colleague`;
//! * a `∗`-direction step expands into both orientations per hop;
//! * an unbounded depth set (`[2..]`) is cut at
//!   [`PlanConfig::max_depth`] and the plan is flagged
//!   [`LinePlan::truncated`] (the online engine stays exact; the
//!   truncation trade-off is measured in experiment P3).
//!
//! The expansion is exponential in the worst case, so
//! [`PlanConfig::max_line_queries`] bounds it; exceeding the bound is an
//! [`EvalError::PlanOverflow`].

use crate::error::EvalError;
use crate::path::PathExpr;
use socialreach_graph::Direction;
use socialreach_reach::LabelKey;

/// Planner limits.
#[derive(Clone, Copy, Debug)]
pub struct PlanConfig {
    /// Depth cap for unbounded depth sets.
    pub max_depth: u32,
    /// Upper bound on the number of generated line queries.
    pub max_line_queries: usize,
}

impl Default for PlanConfig {
    fn default() -> Self {
        PlanConfig {
            max_depth: 8,
            max_line_queries: 4096,
        }
    }
}

/// One fully expanded line query: a fixed-length sequence of
/// `(label, orientation)` hops, with each hop remembering which path
/// step it came from (attribute conditions apply at the last hop of each
/// step's run).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LineQuery {
    /// `(label, forward)` per hop.
    pub hops: Vec<LabelKey>,
    /// Originating step index per hop.
    pub step_of: Vec<u16>,
}

impl LineQuery {
    /// Number of hops (edges of the walk).
    pub fn len(&self) -> usize {
        self.hops.len()
    }

    /// True for the degenerate zero-hop query.
    pub fn is_empty(&self) -> bool {
        self.hops.is_empty()
    }

    /// Hop positions that end a step (where that step's conditions are
    /// checked): the last hop of every step's run.
    pub fn step_end_positions(&self) -> Vec<(usize, u16)> {
        let mut out = Vec::new();
        for (i, &s) in self.step_of.iter().enumerate() {
            let is_end = self.step_of.get(i + 1).is_none_or(|&n| n != s);
            if is_end {
                out.push((i, s));
            }
        }
        out
    }
}

/// The set of line queries a path expands into.
#[derive(Clone, Debug)]
pub struct LinePlan {
    /// The expanded queries (deduplicated).
    pub queries: Vec<LineQuery>,
    /// True when an unbounded depth set was cut at the configured cap.
    pub truncated: bool,
}

/// Expands `path` into line queries (Figure 4).
pub fn plan(path: &PathExpr, cfg: &PlanConfig) -> Result<LinePlan, EvalError> {
    let mut queries: Vec<LineQuery> = vec![LineQuery {
        hops: Vec::new(),
        step_of: Vec::new(),
    }];
    let mut truncated = false;

    for (step_idx, step) in path.steps.iter().enumerate() {
        if step.depths.is_unbounded() {
            truncated = true;
        }
        let depths = step.depths.depths_up_to(cfg.max_depth);
        if depths.is_empty() {
            // The whole depth set lies beyond the cap: nothing the index
            // can match (the plan is empty and truncated).
            return Ok(LinePlan {
                queries: Vec::new(),
                truncated: true,
            });
        }
        let orientations: &[bool] = match step.dir {
            Direction::Out => &[true],
            Direction::In => &[false],
            Direction::Both => &[true, false],
        };

        let mut next: Vec<LineQuery> = Vec::new();
        for q in &queries {
            for &k in &depths {
                // All orientation vectors of length k over `orientations`.
                let mut stack: Vec<Vec<bool>> = vec![Vec::new()];
                for _ in 0..k {
                    let mut grown = Vec::with_capacity(stack.len() * orientations.len());
                    for prefix in &stack {
                        for &o in orientations {
                            let mut p = prefix.clone();
                            p.push(o);
                            grown.push(p);
                        }
                    }
                    stack = grown;
                    if queries.len() * stack.len() > cfg.max_line_queries {
                        return Err(EvalError::PlanOverflow {
                            needed: queries.len() * stack.len(),
                            limit: cfg.max_line_queries,
                        });
                    }
                }
                for vector in stack {
                    let mut nq = q.clone();
                    for o in vector {
                        nq.hops.push((step.label, o));
                        nq.step_of.push(step_idx as u16);
                    }
                    next.push(nq);
                    if next.len() > cfg.max_line_queries {
                        return Err(EvalError::PlanOverflow {
                            needed: next.len(),
                            limit: cfg.max_line_queries,
                        });
                    }
                }
            }
        }
        queries = next;
    }

    queries.sort_by(|a, b| (a.hops.len(), &a.hops).cmp(&(b.hops.len(), &b.hops)));
    queries.dedup();
    Ok(LinePlan { queries, truncated })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::parse_path;
    use socialreach_graph::Vocabulary;

    fn expand(text: &str, cfg: &PlanConfig) -> (LinePlan, Vocabulary) {
        let mut vocab = Vocabulary::new();
        let p = parse_path(text, &mut vocab).unwrap();
        (plan(&p, cfg).unwrap(), vocab)
    }

    #[test]
    fn figure_4_expansion_yields_two_line_queries() {
        // Q1 = friend+[1,2]/colleague+[1] -> friend/colleague and
        // friend/friend/colleague.
        let (plan, vocab) = expand("friend+[1,2]/colleague+[1]", &PlanConfig::default());
        assert!(!plan.truncated);
        assert_eq!(plan.queries.len(), 2);
        let friend = vocab.label("friend").unwrap();
        let colleague = vocab.label("colleague").unwrap();
        assert_eq!(
            plan.queries[0].hops,
            vec![(friend, true), (colleague, true)]
        );
        assert_eq!(
            plan.queries[1].hops,
            vec![(friend, true), (friend, true), (colleague, true)]
        );
        assert_eq!(plan.queries[1].step_of, vec![0, 0, 1]);
    }

    #[test]
    fn step_end_positions_mark_condition_sites() {
        let (plan, _) = expand("friend+[2]/colleague+[1]", &PlanConfig::default());
        let q = &plan.queries[0];
        assert_eq!(q.step_end_positions(), vec![(1, 0), (2, 1)]);
    }

    #[test]
    fn both_direction_expands_orientations() {
        let (plan, _) = expand("friend*[1]", &PlanConfig::default());
        assert_eq!(plan.queries.len(), 2);
        let orientations: Vec<bool> = plan.queries.iter().map(|q| q.hops[0].1).collect();
        assert!(orientations.contains(&true) && orientations.contains(&false));
    }

    #[test]
    fn both_direction_depth_two_expands_four_vectors() {
        let (plan, _) = expand("friend*[2]", &PlanConfig::default());
        assert_eq!(plan.queries.len(), 4);
    }

    #[test]
    fn unbounded_depth_truncates_at_cap() {
        let cfg = PlanConfig {
            max_depth: 3,
            max_line_queries: 4096,
        };
        let (plan, _) = expand("friend+[1..]", &cfg);
        assert!(plan.truncated);
        assert_eq!(plan.queries.len(), 3); // depths 1, 2, 3
        assert_eq!(plan.queries[2].hops.len(), 3);
    }

    #[test]
    fn depth_set_entirely_beyond_cap_yields_empty_plan() {
        let cfg = PlanConfig {
            max_depth: 2,
            max_line_queries: 4096,
        };
        let (plan, _) = expand("friend+[5..]", &cfg);
        assert!(plan.truncated);
        assert!(plan.queries.is_empty());
    }

    #[test]
    fn overflow_is_reported() {
        let cfg = PlanConfig {
            max_depth: 8,
            max_line_queries: 8,
        };
        let mut vocab = Vocabulary::new();
        let p = parse_path("friend*[4]/friend*[4]", &mut vocab).unwrap();
        match plan(&p, &cfg) {
            Err(EvalError::PlanOverflow { needed, limit }) => {
                assert!(needed > limit);
            }
            other => panic!("expected overflow, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_queries_are_removed() {
        // [1,1] normalizes in DepthSet, but [1..2] ∪ [2] style overlaps
        // can produce equal expansions; dedup keeps the plan minimal.
        let (plan, _) = expand("friend+[1..2,2]", &PlanConfig::default());
        assert_eq!(plan.queries.len(), 2);
    }

    #[test]
    fn multi_interval_depths_expand_each_level() {
        let (plan, _) = expand("friend+[1,3]", &PlanConfig::default());
        let lens: Vec<usize> = plan.queries.iter().map(LineQuery::len).collect();
        assert_eq!(lens, vec![1, 3]);
    }
}
