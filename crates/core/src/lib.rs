#![warn(missing_docs)]
//! # socialreach-core
//!
//! Reachability-based access control for social networks — a
//! production-quality implementation of Ben Dhia's EDBT 2012 model.
//!
//! Resources are shared under **access rules** whose audiences are
//! **path expressions** over the social graph: *"only the children of my
//! friends' friends can read my notes"* becomes
//! `friend+[1,2]/children+[1]`. Enforcement reduces each access request
//! to an ordered label-constraint reachability query, answered either
//! by a constrained product BFS ([`engine::OnlineEngine`]) or through
//! the precomputed line-graph cluster join index of §3
//! ([`joinengine::JoinIndexEngine`]).
//!
//! ## Quick start
//!
//! ```
//! use socialreach_core::{AccessControlSystem, Decision};
//!
//! let mut sys = AccessControlSystem::new_online();
//! let alice = sys.add_user("Alice");
//! let bob = sys.add_user("Bob");
//! let carol = sys.add_user("Carol");
//! sys.connect(alice, "friend", bob);
//! sys.connect(bob, "friend", carol);
//!
//! let photos = sys.share(alice);
//! sys.allow(photos, "friend+[1,2]").unwrap(); // friends ≤ 2 hops away
//!
//! assert_eq!(sys.check(photos, carol).unwrap(), Decision::Grant);
//! ```
//!
//! ## Module map
//!
//! | module | paper section | contents |
//! |--------|---------------|----------|
//! | [`path`] | §2 Def. 3 | path-expression AST, parser, printer |
//! | [`policy`] | §2 Def. 2 | access rules, policy store, decisions |
//! | [`online`] | §1 | constrained product BFS over a label-partitioned CSR snapshot (flat-array engine + retained reference implementation) |
//! | [`lineplan`] | §3.1 | depth expansion into line queries (Fig. 4) |
//! | [`joinengine`] | §3.3–3.4 | join pipeline + post-processing |
//! | [`engine`] | — | engine trait, caching enforcer, per-generation snapshot cache |
//! | [`system`] | — | batteries-included façade |
//! | [`examples`] | §2–3 | the Figure 1 graph, Q1, worked queries |
//! | [`carminati`] | §4 | the Carminati et al. trust+radius baseline |
//!
//! ## Snapshot / invalidation model
//!
//! The online engine runs over an immutable
//! [`socialreach_graph::csr::CsrSnapshot`]: edges sorted by
//! `(node, label)` with per-(node, label) offset runs, so each step
//! expands exactly the matching `O(deg_label)` slice. Every
//! [`SocialGraph`](socialreach_graph::SocialGraph) mutation advances a
//! process-unique *generation* stamp; the enforcement layer
//! ([`Enforcer`], [`AccessControlSystem`]) caches one snapshot per
//! generation and rebuilds it lazily when the stamp moves, so evolving
//! graphs pay for re-indexing only after an actual mutation, and only
//! on their next access check.

pub mod carminati;
pub mod engine;
pub mod error;
pub mod examples;
pub mod joinengine;
pub mod lineplan;
pub mod online;
pub mod path;
pub mod policy;
pub mod system;

pub use carminati::{CarminatiOutcome, CarminatiRule, TrustAggregation};
pub use engine::{
    resource_audience, AccessEngine, AudienceOutcome, CheckOutcome, Enforcer, EvalStats,
    OnlineEngine,
};
pub use error::{EvalError, ParseError};
pub use joinengine::{JoinEngineConfig, JoinIndexEngine, JoinStrategy};
pub use lineplan::{plan, LinePlan, LineQuery, PlanConfig};
pub use path::{parse_path, AttrPredicate, CmpOp, DepthSet, PathExpr, Step};
pub use policy::{AccessCondition, AccessRule, Decision, PolicyStore, ResourceId};
pub use system::{AccessControlSystem, EngineChoice};

// Re-exported so `JoinEngineConfig` can be configured without naming the
// reach crate directly.
pub use socialreach_reach::{JoinIndex, JoinIndexConfig};
