#![warn(missing_docs)]
//! # socialreach-core
//!
//! Reachability-based access control for social networks — a
//! production-quality implementation of Ben Dhia's EDBT 2012 model.
//!
//! Resources are shared under **access rules** whose audiences are
//! **path expressions** over the social graph: *"only the children of my
//! friends' friends can read my notes"* becomes
//! `friend+[1,2]/children+[1]`. Enforcement reduces each access request
//! to an ordered label-constraint reachability query, answered either
//! by a constrained product BFS ([`engine::OnlineEngine`]) or through
//! the precomputed line-graph cluster join index of §3
//! ([`joinengine::JoinIndexEngine`]).
//!
//! ## Quick start
//!
//! Serving goes through the deployment-agnostic [`service`] API: pick
//! a [`Deployment`] (one epoch-published graph, or N hash-partitioned
//! shards), mutate through [`MutateService`], read through
//! [`AccessService`] — nothing downstream of the config line knows
//! which backend answers.
//!
//! ```
//! use socialreach_core::{AccessService, Decision, Deployment, MutateService};
//!
//! let mut svc = Deployment::online().build();
//! // …or Deployment::sharded(4, 7).build(): nothing below changes.
//! let alice = svc.add_user("Alice");
//! let bob = svc.add_user("Bob");
//! let carol = svc.add_user("Carol");
//! svc.add_relationship(alice, "friend", bob);
//! svc.add_relationship(bob, "friend", carol);
//!
//! let photos = svc.add_resource(alice);
//! svc.add_rule(photos, "friend+[1,2]").unwrap(); // friends ≤ 2 hops away
//!
//! assert_eq!(svc.reads().check(photos, carol).unwrap(), Decision::Grant);
//! ```
//!
//! ## Module map
//!
//! | module | paper section | contents |
//! |--------|---------------|----------|
//! | [`path`] | §2 Def. 3 | path-expression AST, parser, printer |
//! | [`policy`] | §2 Def. 2 | access rules, policy store, decisions |
//! | [`online`] | §1 | constrained product BFS over a label-partitioned CSR snapshot (flat-array engine + retained reference implementation) |
//! | [`lineplan`] | §3.1 | depth expansion into line queries (Fig. 4) |
//! | [`joinengine`] | §3.3–3.4 | join pipeline + post-processing |
//! | [`engine`] | — | engine trait, caching enforcer, per-generation snapshot cache |
//! | [`service`] | — | the deployment-agnostic serving API: `AccessService` / `MutateService` traits, request/response vocabulary, `Deployment` builder |
//! | [`query`] | — | openCypher-flavored query front-end + shared-prefix bundle plan compiler and its masked trie engine |
//! | [`planner`] | — | telemetry-fed adaptive read planner: per-resource decaying profiles pick the winning engine per bundle |
//! | [`system`] | — | single-graph backend (`AccessControlSystem`) |
//! | [`sharded`] | — | hash-partitioned multi-shard backend with cross-shard stitching |
//! | [`remote`] | — | shards as **processes**: CRC-framed wire protocol over TCP/Unix sockets, shard servers, and the networked router |
//! | [`examples`] | §2–3 | the Figure 1 graph, Q1, worked queries |
//! | [`carminati`] | §4 | the Carminati et al. trust+radius baseline |
//!
//! ## Epoch-published snapshots
//!
//! The online engine runs over an immutable
//! [`socialreach_graph::csr::CsrSnapshot`]: edges sorted by
//! `(node, label)` with per-(node, label) offset runs, so each step
//! expands exactly the matching `O(deg_label)` slice. The enforcement
//! layer treats snapshots as **publications**: at any time one
//! `Arc<CsrSnapshot>` is the current *epoch*, and every reader —
//! `check`, `audience`, `check_batch`, `audience_batch`, all `&self` —
//! clones that `Arc` and traverses the immutable index concurrently.
//! Mutations (`&mut self` on [`AccessControlSystem`]) never touch the
//! published snapshot; they advance the graph's process-unique
//! *generation* stamp, which makes the epoch stale. The next reader
//! republishes under a write lock — **incrementally** when the owner
//! can vouch for append-only lineage
//! ([`CsrSnapshot::apply_edge_appends`](socialreach_graph::csr::CsrSnapshot::apply_edge_appends)
//! merges the appended edges into the per-(node, label) runs in
//! amortized `O(deg)`), and by a **parallel full build** otherwise
//! (scoped threads per direction index, per-node segment sorts fanned
//! across workers). In-flight readers keep their epoch's `Arc` alive
//! until they finish, so publication is wait-free for them.
//!
//! On top of the shared snapshot, `audience_batch` evaluates all the
//! owners/conditions of a policy bundle with a multi-source flat BFS
//! ([`online::evaluate_audience_batch`]): up to 64 owners traverse
//! together, one frontier pass per `(label, direction)` layer,
//! amortizing edge scans across the bundle.
//!
//! ## Sharded serving
//!
//! [`ShardedSystem`] scales the read path horizontally: members are
//! hash-partitioned across N independent shards (deterministic,
//! seedable placement — [`socialreach_graph::shard::ShardAssignment`]),
//! each shard an epoch-published graph of its own with the incremental
//! append-patching pipeline above. Cross-shard relationships are
//! recorded in a boundary table and replicated into both endpoint
//! shards against attribute-synchronized *ghost* replicas. Reads run a
//! round-based fixpoint of per-shard **seeded** product BFS
//! ([`online::evaluate_seeded`]): each shard traverses its local CSR
//! snapshot, exports every product state visited at a ghost, and the
//! router re-seeds those states at the member's home shard (parallel
//! scoped threads when several shards are active in a round) until no
//! new state appears. Witnesses stitch per-shard walk segments. A
//! differential proptest suite (`tests/shard_differential.rs`) pins the
//! sharded semantics to the single-graph system across shard counts.
//!
//! Bundle reads are **batch-amortized**: `ShardedSystem::audience_batch`
//! and `check_batch` run *one* masked fixpoint per bundle instead of
//! one per condition. The bundle's distinct conditions group by path
//! expression and traverse together as bits of a seeded multi-source
//! mask BFS ([`online::evaluate_audience_batch_seeded`]); boundary
//! exports carry those masks
//! ([`socialreach_graph::shard::MaskedStateKey`], chunked into further
//! 64-bit words for wider bundles), and each shard's visited/mask
//! state persists across the fixpoint's rounds
//! ([`online::SeededBatchState`]), keeping total work linear in the
//! explored region even when walks ping-pong across a boundary. The
//! batched path is pinned to the per-condition fixpoint, the
//! single-graph batch BFS and the reference engine by
//! `tests/shard_batch_differential.rs`.
//!
//! ## Networked serving: shards as processes
//!
//! The [`remote`] module lifts the sharded backend across process
//! boundaries. Each shard runs as a [`remote::ShardServer`] — a plain
//! `std::net` acceptor (TCP or Unix domain socket) with blocking
//! worker threads — speaking a hand-rolled length-prefixed, CRC-framed
//! request/response protocol ([`remote::frame`], [`remote::proto`]):
//! `[u32 len][u32 crc][payload]`, the checksum covering length bytes
//! and payload so a damaged header can never masquerade as a valid
//! frame. The [`remote::NetworkedSystem`] router implements
//! [`AccessService`]/[`MutateService`] by driving the *same*
//! round-based masked fixpoint as [`ShardedSystem`], exchanging
//! `MaskedExportSet` batches with remote shards (bounded per-round
//! sub-batches, at most one frame in flight per shard) and stitching
//! witnesses from remote `Trace` segments. Mutations publish through a
//! two-phase **epoch fence** — `Prepare` everywhere, then `Commit`
//! everywhere; any prepare failure aborts the epoch on every shard
//! that staged it — and reads carry the expected epoch in `BeginEval`,
//! so a lagging shard refuses the evaluation rather than serving a
//! torn epoch. Transport faults surface as typed
//! [`EvalError::Remote`] errors, never as a wrong decision; a
//! wire-level conformance and fault-injection tier
//! (`tests/wire_roundtrip.rs`, `tests/remote_faults.rs`,
//! `tests/remote_conformance.rs`) pins the networked deployment to its
//! in-process twins byte by byte and fault by fault.
//!
//! ## Query front-end and bundle-wide plan sharing
//!
//! The [`query`] module adds a second policy surface and a second
//! batch execution strategy. Its front-end parses an
//! openCypher-flavored query language —
//! `MATCH (owner)-[:friend*1..2]->(v {age >= 18})` — into the same
//! [`path::PathExpr`] AST as the classic syntax, with the same caret
//! errors; [`query::parse_policy`] accepts either grammar, so
//! `add_rule` and the CLI take both, and ad-hoc audience questions
//! enter through [`AccessService::query_audience`] without
//! registering a resource. Its back half replaces the batched read
//! paths' *identical-expression* grouping key with a **shared-prefix
//! trie** ([`query::BundlePlan`]): a bundle's distinct conditions
//! compile into one plan whose nodes are canonicalized steps, the
//! masked multi-source BFS ([`query::engine`]) walks each shared
//! prefix once per 64-condition chunk, and condition masks fork only
//! where paths diverge — on the single graph, inside the sharded
//! fixpoint, and across the wire (`BeginEvalPlan`). The compression
//! achieved is reported per read as
//! [`ReadStats::plan_states`]/[`ReadStats::expr_states`] and feeds the
//! adaptive planner's per-resource profiles. Setting
//! `SOCIALREACH_BUNDLE_PLAN=grouped` restores the old grouping key
//! (the benchmark baseline and differential oracle);
//! `tests/query_differential.rs` pins both strategies to
//! per-condition evaluation on all three deployments.

pub mod carminati;
pub mod durability;
pub mod engine;
pub mod error;
pub mod examples;
pub mod joinengine;
pub mod lineplan;
pub mod online;
pub mod path;
pub mod planner;
pub mod policy;
pub mod query;
pub mod remote;
pub mod service;
pub mod sharded;
pub mod system;

pub use carminati::{CarminatiOutcome, CarminatiRule, TrustAggregation};
pub use durability::{
    read_history, AudienceDiff, AuditError, CompactionReport, DurabilityError, DurableService,
    HistoryEntry, RecoveryReport, TornTail, WalRecord,
};
pub use engine::{
    resource_audience, resource_audience_batch, resource_audience_batch_per_condition_with_stats,
    resource_audience_batch_with_stats, AccessEngine, AudienceOutcome, CheckOutcome, Enforcer,
    EvalStats, OnlineEngine,
};
pub use error::{EvalError, ParseError};
pub use joinengine::{JoinEngineConfig, JoinIndexEngine, JoinStrategy};
pub use lineplan::{plan, LinePlan, LineQuery, PlanConfig};
pub use path::{parse_path, AttrPredicate, CmpOp, DepthSet, PathExpr, Step};
pub use planner::{
    CostEstimate, PlannedService, Planner, PlannerMode, PlannerTally, ResourceProfile,
};
pub use policy::{AccessCondition, AccessRule, Decision, PolicyStore, ResourceId};
pub use query::{parse_policy, parse_query, render_query, BundlePlan};
pub use remote::{NetworkedSystem, RemoteError, ShardAddr, ShardHandle, ShardServer};
pub use service::{
    AccessResponse, AccessService, BundleStrategy, CheckPlan, Deployment, Explanation,
    MutateService, NetworkedSpec, ReadBatch, ReadRequest, ReadStats, ServiceInstance, WalkHop,
    WitnessWalk,
};
pub use sharded::{BundleFixpointStats, ShardedEval, ShardedHop, ShardedSystem};
pub use system::{AccessControlSystem, EngineChoice};

// Re-exported so `JoinEngineConfig` can be configured without naming the
// reach crate directly.
pub use socialreach_reach::{JoinIndex, JoinIndexConfig};
