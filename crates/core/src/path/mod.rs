//! Path expressions: the AST of §2 Definition 3 and its textual syntax.

pub mod ast;
pub mod parse;

pub use ast::{AttrPredicate, CmpOp, DepthSet, PathExpr, Step};
pub use parse::parse_path;
