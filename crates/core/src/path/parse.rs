//! Recursive-descent parser for textual path expressions.
//!
//! Grammar (whitespace is permitted between tokens):
//!
//! ```text
//! path    := step ( ('/' | '=') step )*
//! step    := label dir? depths? conds?
//! label   := ident                       -- relationship type
//! dir     := '+' | '-' | '*'             -- default '*' (the model's default)
//! depths  := '[' item (',' item)* ']'    -- default [1]
//! item    := INT | INT '..' INT?         -- level, range, or open range
//! conds   := '{' cond (',' cond)* '}'
//! cond    := ident op value
//! op      := '=' | '==' | '!=' | '<' | '<=' | '>' | '>=' | '~'
//! value   := INT | FLOAT | 'true' | 'false' | '"…"' | ident
//! ident   := [A-Za-z_][A-Za-z0-9_-]*
//! ```
//!
//! Both separators of the paper are accepted: `friend=friend=children`
//! (§1) and `friend+[1,2]/colleague+[1]` (Figure 2). The canonical
//! printer ([`PathExpr::to_text`]) uses `/`.
//!
//! Labels and attribute keys are interned into the supplied
//! [`Vocabulary`] — a policy may mention a relationship type before any
//! edge of that type exists.

use crate::error::ParseError;
use crate::path::ast::{AttrPredicate, CmpOp, DepthSet, PathExpr, Step};
use socialreach_graph::{AttrValue, Direction, Vocabulary};

/// Parses a path expression, interning labels/keys into `vocab`.
pub fn parse_path(text: &str, vocab: &mut Vocabulary) -> Result<PathExpr, ParseError> {
    let mut p = Parser {
        src: text,
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    if p.at_end() {
        return Err(p.err("empty path expression"));
    }
    let mut steps = vec![p.step(vocab)?];
    loop {
        p.skip_ws();
        match p.peek() {
            Some(b'/') | Some(b'=') => {
                p.pos += 1;
                p.skip_ws();
                steps.push(p.step(vocab)?);
            }
            None => break,
            Some(_) => return Err(p.err("expected '/' or end of path")),
        }
    }
    Ok(PathExpr::new(steps))
}

struct Parser<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(self.pos, msg, self.src)
    }

    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(
            self.peek(),
            Some(b' ') | Some(b'\t') | Some(b'\n') | Some(b'\r')
        ) {
            self.pos += 1;
        }
    }

    fn ident(&mut self) -> Result<&'a str, ParseError> {
        let start = self.pos;
        match self.peek() {
            Some(c) if c.is_ascii_alphabetic() || c == b'_' => self.pos += 1,
            _ => return Err(self.err("expected an identifier")),
        }
        // `-` is NOT an identifier character: it would be ambiguous with
        // the incoming-direction marker (`boss-`). Use `_` in names.
        while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == b'_') {
            self.pos += 1;
        }
        Ok(&self.src[start..self.pos])
    }

    fn integer(&mut self) -> Result<u32, ParseError> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(self.err("expected a number"));
        }
        self.src[start..self.pos]
            .parse::<u32>()
            .map_err(|_| ParseError::new(start, "depth does not fit in u32", self.src))
    }

    fn expect(&mut self, c: u8) -> Result<(), ParseError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", c as char)))
        }
    }

    fn step(&mut self, vocab: &mut Vocabulary) -> Result<Step, ParseError> {
        let label_name = self.ident().map_err(|mut e| {
            e.message = "expected a relationship type".into();
            e
        })?;
        let label = vocab.intern_label(label_name);

        self.skip_ws();
        // The model's default direction is '*' (both), per §2 Def. 3.
        let dir = match self.peek() {
            Some(b'+') => {
                self.pos += 1;
                Direction::Out
            }
            Some(b'-') => {
                self.pos += 1;
                Direction::In
            }
            Some(b'*') => {
                self.pos += 1;
                Direction::Both
            }
            _ => Direction::Both,
        };

        self.skip_ws();
        let depths = if self.peek() == Some(b'[') {
            self.pos += 1;
            let mut items = Vec::new();
            loop {
                self.skip_ws();
                let lo = self.integer()?;
                if lo == 0 {
                    return Err(self.err("depth levels start at 1"));
                }
                self.skip_ws();
                let item = if self.peek() == Some(b'.') {
                    self.expect(b'.')?;
                    self.expect(b'.').map_err(|mut e| {
                        e.message = "expected '..' in a depth range".into();
                        e
                    })?;
                    self.skip_ws();
                    if matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                        let hi = self.integer()?;
                        if hi < lo {
                            return Err(self.err(format!("empty depth range [{lo}..{hi}]")));
                        }
                        (lo, Some(hi))
                    } else {
                        (lo, None)
                    }
                } else {
                    (lo, Some(lo))
                };
                items.push(item);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        break;
                    }
                    _ => return Err(self.err("expected ',' or ']' in depth set")),
                }
            }
            DepthSet::from_intervals(items)
        } else {
            DepthSet::default()
        };

        self.skip_ws();
        let mut conds = Vec::new();
        if self.peek() == Some(b'{') {
            self.pos += 1;
            loop {
                self.skip_ws();
                conds.push(self.cond(vocab)?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        break;
                    }
                    _ => return Err(self.err("expected ',' or '}' in condition list")),
                }
            }
        }

        Ok(Step {
            label,
            dir,
            depths,
            conds,
        })
    }

    fn cond(&mut self, vocab: &mut Vocabulary) -> Result<AttrPredicate, ParseError> {
        let key_name = self.ident().map_err(|mut e| {
            e.message = "expected an attribute name".into();
            e
        })?;
        let key = vocab.intern_attr(key_name);
        self.skip_ws();
        let op = match (self.peek(), self.bytes.get(self.pos + 1).copied()) {
            (Some(b'='), Some(b'=')) => {
                self.pos += 2;
                CmpOp::Eq
            }
            (Some(b'='), _) => {
                self.pos += 1;
                CmpOp::Eq
            }
            (Some(b'!'), Some(b'=')) => {
                self.pos += 2;
                CmpOp::Ne
            }
            (Some(b'<'), Some(b'=')) => {
                self.pos += 2;
                CmpOp::Le
            }
            (Some(b'<'), _) => {
                self.pos += 1;
                CmpOp::Lt
            }
            (Some(b'>'), Some(b'=')) => {
                self.pos += 2;
                CmpOp::Ge
            }
            (Some(b'>'), _) => {
                self.pos += 1;
                CmpOp::Gt
            }
            (Some(b'~'), _) => {
                self.pos += 1;
                CmpOp::Contains
            }
            _ => return Err(self.err("expected a comparison operator")),
        };
        self.skip_ws();
        let value = self.value()?;
        Ok(AttrPredicate { key, op, value })
    }

    fn value(&mut self) -> Result<AttrValue, ParseError> {
        match self.peek() {
            Some(b'"') => {
                self.pos += 1;
                let start = self.pos;
                while let Some(c) = self.peek() {
                    if c == b'"' {
                        let s = &self.src[start..self.pos];
                        self.pos += 1;
                        return Ok(AttrValue::Text(s.to_owned()));
                    }
                    self.pos += 1;
                }
                Err(self.err("unterminated string literal"))
            }
            Some(c) if c.is_ascii_digit() || c == b'-' => {
                let start = self.pos;
                if c == b'-' {
                    self.pos += 1;
                }
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.pos += 1;
                }
                let mut is_float = false;
                if self.peek() == Some(b'.')
                    && matches!(self.bytes.get(self.pos + 1), Some(c) if c.is_ascii_digit())
                {
                    is_float = true;
                    self.pos += 1;
                    while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                        self.pos += 1;
                    }
                }
                let text = &self.src[start..self.pos];
                if is_float {
                    text.parse::<f64>()
                        .map(AttrValue::Float)
                        .map_err(|_| ParseError::new(start, "invalid float literal", self.src))
                } else {
                    text.parse::<i64>()
                        .map(AttrValue::Int)
                        .map_err(|_| ParseError::new(start, "invalid integer literal", self.src))
                }
            }
            Some(c) if c.is_ascii_alphabetic() || c == b'_' => {
                let word = self.ident()?;
                Ok(match word {
                    "true" => AttrValue::Bool(true),
                    "false" => AttrValue::Bool(false),
                    other => AttrValue::Text(other.to_owned()),
                })
            }
            _ => Err(self.err("expected a literal value")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socialreach_graph::Direction;

    fn parse(text: &str) -> (PathExpr, Vocabulary) {
        let mut vocab = Vocabulary::new();
        let p = parse_path(text, &mut vocab).unwrap_or_else(|e| panic!("{e}"));
        (p, vocab)
    }

    #[test]
    fn parses_q1_from_figure_2() {
        let (p, vocab) = parse("friend+[1,2]/colleague+[1]");
        assert_eq!(p.len(), 2);
        assert_eq!(vocab.label_name(p.steps[0].label), "friend");
        assert_eq!(p.steps[0].dir, Direction::Out);
        assert!(p.steps[0].depths.contains(1) && p.steps[0].depths.contains(2));
        assert!(!p.steps[0].depths.contains(3));
        assert_eq!(p.steps[1].depths.max_depth(), Some(1));
    }

    #[test]
    fn parses_paper_equals_separator() {
        let (p, vocab) = parse("friend=friend=children");
        assert_eq!(p.len(), 3);
        assert_eq!(vocab.label_name(p.steps[2].label), "children");
        // Unannotated steps default to '*' direction and depth [1].
        assert_eq!(p.steps[0].dir, Direction::Both);
        assert_eq!(p.steps[0].depths, DepthSet::single(1));
    }

    #[test]
    fn parses_directions() {
        let (p, _) = parse("friend+/boss-/follows*");
        assert_eq!(p.steps[0].dir, Direction::Out);
        assert_eq!(p.steps[1].dir, Direction::In);
        assert_eq!(p.steps[2].dir, Direction::Both);
    }

    #[test]
    fn parses_depth_ranges_and_open_ranges() {
        let (p, _) = parse("friend+[1..3]/friend+[2..]/friend+[1,4..5]");
        assert_eq!(p.steps[0].depths, DepthSet::range(1, 3));
        assert_eq!(p.steps[1].depths, DepthSet::at_least(2));
        assert_eq!(
            p.steps[2].depths,
            DepthSet::from_intervals(vec![(1, Some(1)), (4, Some(5))])
        );
    }

    #[test]
    fn parses_conditions() {
        let (p, vocab) =
            parse(r#"friend+{age>=18, gender="female"}/colleague+{dept~eng, senior=true}"#);
        let c = &p.steps[0].conds;
        assert_eq!(c.len(), 2);
        assert_eq!(vocab.attr_name(c[0].key), "age");
        assert_eq!(c[0].op, CmpOp::Ge);
        assert_eq!(c[0].value, AttrValue::Int(18));
        assert_eq!(c[1].value, AttrValue::Text("female".into()));
        let c2 = &p.steps[1].conds;
        assert_eq!(c2[0].op, CmpOp::Contains);
        assert_eq!(c2[0].value, AttrValue::Text("eng".into()));
        assert_eq!(c2[1].value, AttrValue::Bool(true));
    }

    #[test]
    fn parses_numeric_literals() {
        let (p, _) = parse("friend+{trust>=0.8, karma>-5}");
        assert_eq!(p.steps[0].conds[0].value, AttrValue::Float(0.8));
        assert_eq!(p.steps[0].conds[1].value, AttrValue::Int(-5));
    }

    #[test]
    fn tolerates_whitespace() {
        let (p, _) = parse("  friend + [ 1 , 2 ] / colleague - [ 2 .. ] ");
        assert_eq!(p.len(), 2);
        assert_eq!(p.steps[1].dir, Direction::In);
        assert!(p.steps[1].depths.is_unbounded());
    }

    #[test]
    fn round_trips_canonical_text() {
        for text in [
            "friend+[1..2]/colleague+[1]",
            "friend*[1..]",
            "parent-[2]",
            "friend+[1]{age>=18}/colleague*[1,3..4]{dept=\"eng\"}",
            "works_with+[1]",
        ] {
            let mut vocab = Vocabulary::new();
            let p1 = parse_path(text, &mut vocab).expect(text);
            let rendered = p1.to_text(&vocab);
            let p2 = parse_path(&rendered, &mut vocab).expect(&rendered);
            assert_eq!(p1, p2, "round trip failed for {text} -> {rendered}");
        }
    }

    #[test]
    fn rejects_malformed_input() {
        let cases = [
            ("", "empty"),
            ("/friend", "expected a relationship type"),
            ("friend+[0]", "start at 1"),
            ("friend+[3..2]", "empty depth range"),
            ("friend+[1", "expected ',' or ']'"),
            ("friend{age}", "comparison operator"),
            ("friend{age>}", "literal value"),
            ("friend{age>\"x}", "unterminated"),
            ("friend+[]", "expected a number"),
            ("friend korea", "expected '/'"),
            ("friend//friend", "relationship type"),
        ];
        for (text, needle) in cases {
            let mut vocab = Vocabulary::new();
            let err = parse_path(text, &mut vocab).expect_err(text);
            assert!(
                err.to_string().contains(needle),
                "error for {text:?} should mention {needle:?}, got: {err}"
            );
        }
    }

    #[test]
    fn depth_one_point_five_is_not_a_range() {
        // `[1.5]` is not valid depth syntax.
        let mut vocab = Vocabulary::new();
        assert!(parse_path("friend+[1.5]", &mut vocab).is_err());
    }
}
