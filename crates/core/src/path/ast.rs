//! Path-expression AST — the access-condition paths of §2, Definition 3.
//!
//! A path `p = s1, s2, …, sn` is a sequence of ordered steps. Each step
//! `si = (r, dir, I, C)` constrains:
//!
//! * `r` — the relationship type of the edges traversed by the step;
//! * `dir` — the orientation (`+` outgoing, `−` incoming, `∗` either;
//!   the model's default is `∗`);
//! * `I` — the *set of authorized depth levels*: the step matches a run
//!   of `k` consecutive `r`-edges for any `k ∈ I`;
//! * `C` — attribute conditions on the member reached at the end of the
//!   step.
//!
//! A requester `v` satisfies the condition when some **walk** from the
//! owner to `v` decomposes into runs matching the steps in order (walk
//! semantics: members and relationships may repeat, as with the paper's
//! BFS baseline).

use serde::{Deserialize, Serialize};
use socialreach_graph::{AttrKey, AttrMap, AttrValue, Direction, LabelId, Vocabulary};
use std::cmp::Ordering;
use std::fmt::Write as _;

/// A set of authorized depth levels `I` — a normalized union of integer
/// intervals over `1..`, the last of which may be unbounded
/// (`[2..]` = "two or more hops").
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct DepthSet {
    /// Sorted, disjoint, non-adjacent `(lo, hi)` intervals; `hi = None`
    /// means unbounded and can only appear last.
    intervals: Vec<(u32, Option<u32>)>,
}

impl DepthSet {
    /// Exactly `d` hops. Panics if `d == 0` (a step traverses at least
    /// one edge).
    pub fn single(d: u32) -> Self {
        Self::from_intervals(vec![(d, Some(d))])
    }

    /// Any depth in `lo..=hi`.
    pub fn range(lo: u32, hi: u32) -> Self {
        Self::from_intervals(vec![(lo, Some(hi))])
    }

    /// Any depth `>= lo`.
    pub fn at_least(lo: u32) -> Self {
        Self::from_intervals(vec![(lo, None)])
    }

    /// Normalizes arbitrary intervals: sorts, merges overlap/adjacency,
    /// drops everything after an unbounded interval.
    ///
    /// # Panics
    /// Panics on an empty list, a zero bound, or `lo > hi`.
    pub fn from_intervals(mut intervals: Vec<(u32, Option<u32>)>) -> Self {
        assert!(!intervals.is_empty(), "DepthSet must be non-empty");
        for &(lo, hi) in &intervals {
            assert!(lo >= 1, "depth levels start at 1");
            if let Some(hi) = hi {
                assert!(lo <= hi, "empty depth interval [{lo},{hi}]");
            }
        }
        intervals.sort_by(|a, b| match a.0.cmp(&b.0) {
            Ordering::Equal => match (a.1, b.1) {
                (None, _) => Ordering::Greater,
                (_, None) => Ordering::Less,
                (Some(x), Some(y)) => x.cmp(&y),
            },
            o => o,
        });
        let mut out: Vec<(u32, Option<u32>)> = Vec::with_capacity(intervals.len());
        for (lo, hi) in intervals {
            match out.last_mut() {
                Some(last) => match last.1 {
                    None => break, // already unbounded; nothing to add
                    Some(last_hi) if lo <= last_hi.saturating_add(1) => {
                        last.1 = hi.map(|h| last_hi.max(h));
                    }
                    _ => out.push((lo, hi)),
                },
                None => out.push((lo, hi)),
            }
        }
        DepthSet { intervals: out }
    }

    /// Is `d` an authorized depth?
    pub fn contains(&self, d: u32) -> bool {
        self.intervals
            .iter()
            .any(|&(lo, hi)| d >= lo && hi.is_none_or(|h| d <= h))
    }

    /// Smallest authorized depth.
    pub fn min_depth(&self) -> u32 {
        self.intervals[0].0
    }

    /// Largest authorized depth, or `None` when unbounded.
    pub fn max_depth(&self) -> Option<u32> {
        self.intervals.last().and_then(|&(_, hi)| hi)
    }

    /// True when the set extends to infinity.
    pub fn is_unbounded(&self) -> bool {
        self.max_depth().is_none() && !self.intervals.is_empty()
    }

    /// The saturation point for product-automaton search: all depths
    /// `>= sat` behave identically (same membership, same continuation).
    pub(crate) fn saturation(&self) -> u32 {
        match self.intervals.last() {
            Some(&(lo, None)) => lo,
            Some(&(_, Some(hi))) => hi,
            None => unreachable!("DepthSet is never empty"),
        }
    }

    /// Enumerates authorized depths up to `cap` (inclusive). Unbounded
    /// tails are cut at `cap` — the join planner's truncation point.
    pub fn depths_up_to(&self, cap: u32) -> Vec<u32> {
        let mut out = Vec::new();
        for &(lo, hi) in &self.intervals {
            let hi = hi.unwrap_or(cap).min(cap);
            for d in lo..=hi.max(lo).min(cap) {
                if d >= lo && d <= hi {
                    out.push(d);
                }
            }
        }
        out
    }

    /// The normalized intervals.
    pub fn intervals(&self) -> &[(u32, Option<u32>)] {
        &self.intervals
    }
}

impl Default for DepthSet {
    /// The model's default: exactly one hop.
    fn default() -> Self {
        DepthSet::single(1)
    }
}

/// Comparison operator of an attribute condition.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum CmpOp {
    /// `=` — equal (numeric coercion between int and float).
    Eq,
    /// `!=` — not equal.
    Ne,
    /// `<` — strictly less.
    Lt,
    /// `<=` — at most.
    Le,
    /// `>` — strictly greater.
    Gt,
    /// `>=` — at least.
    Ge,
    /// `~` — text containment.
    Contains,
}

impl CmpOp {
    /// Textual rendering used by the parser and printer.
    pub fn symbol(self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::Ne => "!=",
            CmpOp::Lt => "<",
            CmpOp::Le => "<=",
            CmpOp::Gt => ">",
            CmpOp::Ge => ">=",
            CmpOp::Contains => "~",
        }
    }
}

/// One attribute condition `c ∈ C` of a step: a constraint on the
/// properties of the member reached at the end of the step.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AttrPredicate {
    /// Interned attribute key.
    pub key: AttrKey,
    /// Comparison operator.
    pub op: CmpOp,
    /// Literal to compare against.
    pub value: AttrValue,
}

impl AttrPredicate {
    /// Evaluates against a member's attribute tuple. A missing attribute
    /// or an incomparable type makes the predicate **false** (policies
    /// fail closed).
    pub fn eval(&self, attrs: &AttrMap) -> bool {
        let Some(actual) = attrs.get(self.key) else {
            return false;
        };
        match self.op {
            CmpOp::Eq => actual.eq_coerced(&self.value),
            CmpOp::Ne => match actual.partial_cmp_coerced(&self.value) {
                Some(o) => o != Ordering::Equal,
                None => false,
            },
            CmpOp::Lt => actual.partial_cmp_coerced(&self.value) == Some(Ordering::Less),
            CmpOp::Le => matches!(
                actual.partial_cmp_coerced(&self.value),
                Some(Ordering::Less | Ordering::Equal)
            ),
            CmpOp::Gt => actual.partial_cmp_coerced(&self.value) == Some(Ordering::Greater),
            CmpOp::Ge => matches!(
                actual.partial_cmp_coerced(&self.value),
                Some(Ordering::Greater | Ordering::Equal)
            ),
            CmpOp::Contains => actual.contains_text(&self.value),
        }
    }
}

/// One ordered step `(r, dir, I, C)` of an access-condition path.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Step {
    /// Relationship type `r`.
    pub label: LabelId,
    /// Orientation `dir` (the model defaults to [`Direction::Both`]).
    pub dir: Direction,
    /// Authorized depth levels `I`.
    pub depths: DepthSet,
    /// Conditions `C` on the member reached at the end of the step.
    pub conds: Vec<AttrPredicate>,
}

impl Step {
    /// A single-hop outgoing step with no conditions — the commonest
    /// shape (`friend+`).
    pub fn out(label: LabelId) -> Self {
        Step {
            label,
            dir: Direction::Out,
            depths: DepthSet::default(),
            conds: Vec::new(),
        }
    }

    /// Sets the depth set (builder style).
    pub fn with_depths(mut self, depths: DepthSet) -> Self {
        self.depths = depths;
        self
    }

    /// Sets the direction (builder style).
    pub fn with_dir(mut self, dir: Direction) -> Self {
        self.dir = dir;
        self
    }

    /// Adds an attribute condition (builder style).
    pub fn with_cond(mut self, pred: AttrPredicate) -> Self {
        self.conds.push(pred);
        self
    }
}

impl Step {
    /// Canonical form of the step: attribute predicates sorted by
    /// `(key, operator, rendered literal)` and exact duplicates
    /// dropped. Predicates conjoin, so reordering and deduplication
    /// preserve semantics exactly. Depth sets are already canonical by
    /// construction ([`DepthSet::from_intervals`] sorts, merges
    /// overlap/adjacency and drops everything after an unbounded
    /// interval), and labels/keys are interned ids, so two
    /// semantically identical steps — however they were written —
    /// compare equal after this.
    pub fn canonical(&self) -> Step {
        let mut conds = self.conds.clone();
        conds.sort_by(|a, b| {
            (a.key.0, a.op.symbol(), render_value(&a.value)).cmp(&(
                b.key.0,
                b.op.symbol(),
                render_value(&b.value),
            ))
        });
        conds.dedup();
        Step {
            label: self.label,
            dir: self.dir,
            depths: self.depths.clone(),
            conds,
        }
    }
}

/// A full access-condition path: the ordered sequence of steps.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PathExpr {
    /// The steps, applied in order from the resource owner.
    pub steps: Vec<Step>,
}

impl PathExpr {
    /// Builds a path from steps.
    pub fn new(steps: Vec<Step>) -> Self {
        PathExpr { steps }
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True for the empty path (matches only the owner).
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// True when any step traverses against edge orientation (`−`/`∗`),
    /// which requires an orientation-augmented line graph.
    pub fn needs_reverse(&self) -> bool {
        self.steps
            .iter()
            .any(|s| matches!(s.dir, Direction::In | Direction::Both))
    }

    /// True when any step has an unbounded depth set.
    pub fn has_unbounded_depth(&self) -> bool {
        self.steps.iter().any(|s| s.depths.is_unbounded())
    }

    /// Canonical form of the whole path: every step canonicalized via
    /// [`Step::canonical`]. Two `PathExpr`s that authorize exactly the
    /// same walks — regardless of predicate order, duplicate
    /// predicates, or how their depth intervals were originally spelled
    /// — compare equal (`==`) after canonicalization, which is what the
    /// bundle evaluators key traversal sharing on.
    pub fn canonical(&self) -> PathExpr {
        PathExpr {
            steps: self.steps.iter().map(Step::canonical).collect(),
        }
    }

    /// Canonical textual form, resolving interned ids through `vocab`
    /// ([`crate::path::parse_path`] round-trips it).
    pub fn to_text(&self, vocab: &Vocabulary) -> String {
        let mut out = String::new();
        for (i, s) in self.steps.iter().enumerate() {
            if i > 0 {
                out.push('/');
            }
            out.push_str(vocab.label_name(s.label));
            out.push(s.dir.symbol());
            out.push('[');
            for (j, &(lo, hi)) in s.depths.intervals().iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                match hi {
                    Some(h) if h == lo => {
                        let _ = write!(out, "{lo}");
                    }
                    Some(h) => {
                        let _ = write!(out, "{lo}..{h}");
                    }
                    None => {
                        let _ = write!(out, "{lo}..");
                    }
                }
            }
            out.push(']');
            if !s.conds.is_empty() {
                out.push('{');
                for (j, c) in s.conds.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    let _ = write!(
                        out,
                        "{}{}{}",
                        vocab.attr_name(c.key),
                        c.op.symbol(),
                        render_value(&c.value)
                    );
                }
                out.push('}');
            }
        }
        out
    }
}

pub(crate) fn render_value(v: &AttrValue) -> String {
    match v {
        AttrValue::Text(s) => format!("\"{s}\""),
        other => other.to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn depth_set_normalization() {
        let d = DepthSet::from_intervals(vec![(3, Some(4)), (1, Some(2))]);
        assert_eq!(d.intervals(), &[(1, Some(4))]); // adjacency merges
        let d = DepthSet::from_intervals(vec![(1, Some(1)), (3, Some(3))]);
        assert_eq!(d.intervals(), &[(1, Some(1)), (3, Some(3))]);
        let d = DepthSet::from_intervals(vec![(2, None), (5, Some(9))]);
        assert_eq!(d.intervals(), &[(2, None)]);
    }

    #[test]
    fn depth_set_membership_and_bounds() {
        let d = DepthSet::from_intervals(vec![(1, Some(2)), (4, None)]);
        assert!(d.contains(1) && d.contains(2) && d.contains(4) && d.contains(99));
        assert!(!d.contains(3));
        assert_eq!(d.min_depth(), 1);
        assert_eq!(d.max_depth(), None);
        assert!(d.is_unbounded());
        assert_eq!(d.saturation(), 4);
        let b = DepthSet::range(2, 5);
        assert_eq!(b.max_depth(), Some(5));
        assert_eq!(b.saturation(), 5);
        assert!(!b.is_unbounded());
    }

    #[test]
    fn depths_up_to_respects_cap_and_holes() {
        let d = DepthSet::from_intervals(vec![(1, Some(2)), (4, None)]);
        assert_eq!(d.depths_up_to(6), vec![1, 2, 4, 5, 6]);
        assert_eq!(d.depths_up_to(3), vec![1, 2]);
        assert_eq!(DepthSet::single(3).depths_up_to(10), vec![3]);
    }

    #[test]
    #[should_panic(expected = "depth levels start at 1")]
    fn zero_depth_rejected() {
        DepthSet::single(0);
    }

    #[test]
    #[should_panic(expected = "empty depth interval")]
    fn inverted_interval_rejected() {
        DepthSet::range(5, 2);
    }

    #[test]
    fn predicate_eval_fails_closed() {
        let mut attrs = AttrMap::new();
        attrs.set(AttrKey(0), AttrValue::Int(24));
        let ge = AttrPredicate {
            key: AttrKey(0),
            op: CmpOp::Ge,
            value: AttrValue::Int(18),
        };
        assert!(ge.eval(&attrs));
        let missing = AttrPredicate {
            key: AttrKey(9),
            op: CmpOp::Eq,
            value: AttrValue::Int(1),
        };
        assert!(!missing.eval(&attrs), "missing attribute denies");
        let mismatched = AttrPredicate {
            key: AttrKey(0),
            op: CmpOp::Ne,
            value: AttrValue::Text("x".into()),
        };
        assert!(!mismatched.eval(&attrs), "incomparable types deny");
    }

    #[test]
    fn predicate_operators() {
        let mut attrs = AttrMap::new();
        attrs.set(AttrKey(0), AttrValue::Float(2.5));
        attrs.set(AttrKey(1), AttrValue::Text("database systems".into()));
        let p = |op, value| AttrPredicate {
            key: AttrKey(0),
            op,
            value,
        };
        assert!(p(CmpOp::Lt, AttrValue::Int(3)).eval(&attrs));
        assert!(p(CmpOp::Le, AttrValue::Float(2.5)).eval(&attrs));
        assert!(p(CmpOp::Gt, AttrValue::Int(2)).eval(&attrs));
        assert!(p(CmpOp::Ge, AttrValue::Float(2.5)).eval(&attrs));
        assert!(p(CmpOp::Ne, AttrValue::Int(3)).eval(&attrs));
        assert!(!p(CmpOp::Eq, AttrValue::Int(3)).eval(&attrs));
        let contains = AttrPredicate {
            key: AttrKey(1),
            op: CmpOp::Contains,
            value: AttrValue::Text("base".into()),
        };
        assert!(contains.eval(&attrs));
    }

    #[test]
    fn to_text_renders_canonical_form() {
        let mut vocab = Vocabulary::new();
        let friend = vocab.intern_label("friend");
        let colleague = vocab.intern_label("colleague");
        let age = vocab.intern_attr("age");
        let path = PathExpr::new(vec![
            Step::out(friend).with_depths(DepthSet::range(1, 2)),
            Step::out(colleague).with_cond(AttrPredicate {
                key: age,
                op: CmpOp::Ge,
                value: AttrValue::Int(18),
            }),
        ]);
        assert_eq!(path.to_text(&vocab), "friend+[1..2]/colleague+[1]{age>=18}");
        assert!(!path.needs_reverse());
        assert!(!path.has_unbounded_depth());
    }

    #[test]
    fn needs_reverse_and_unbounded_flags() {
        let mut vocab = Vocabulary::new();
        let friend = vocab.intern_label("friend");
        let p = PathExpr::new(vec![Step::out(friend)
            .with_dir(Direction::Both)
            .with_depths(DepthSet::at_least(1))]);
        assert!(p.needs_reverse());
        assert!(p.has_unbounded_depth());
        assert_eq!(p.to_text(&vocab), "friend*[1..]");
    }

    #[test]
    fn canonical_sorts_and_dedups_predicates() {
        let age_ge = AttrPredicate {
            key: AttrKey(1),
            op: CmpOp::Ge,
            value: AttrValue::Int(18),
        };
        let city_eq = AttrPredicate {
            key: AttrKey(0),
            op: CmpOp::Eq,
            value: AttrValue::Text("lyon".into()),
        };
        let a = PathExpr::new(vec![Step::out(LabelId(0))
            .with_cond(age_ge.clone())
            .with_cond(city_eq.clone())]);
        let b = PathExpr::new(vec![Step::out(LabelId(0))
            .with_cond(city_eq.clone())
            .with_cond(age_ge.clone())
            .with_cond(age_ge.clone())]);
        assert_ne!(a, b, "textually different");
        assert_eq!(a.canonical(), b.canonical(), "semantically identical");
        assert_eq!(b.canonical().steps[0].conds.len(), 2, "duplicate dropped");
        // Depth notation is already canonical by construction: [1,2] == [1..2].
        let c = PathExpr::new(vec![Step::out(LabelId(0))
            .with_depths(DepthSet::from_intervals(vec![(1, Some(1)), (2, Some(2))]))]);
        let d = PathExpr::new(vec![
            Step::out(LabelId(0)).with_depths(DepthSet::range(1, 2))
        ]);
        assert_eq!(c, d);
    }

    #[test]
    fn empty_path_properties() {
        let p = PathExpr::new(vec![]);
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
        assert!(!p.needs_reverse());
    }
}
