//! `AccessControlSystem` — the single-graph serving backend: members,
//! relationships, shared resources, textual policies, and enforced
//! access checks with pluggable engines. Reads are served through the
//! deployment-agnostic [`AccessService`] trait (the inherent read
//! methods are deprecated one-line forwards onto it), writes through
//! [`MutateService`]; construct one via
//! [`crate::service::Deployment::single`] to stay backend-agnostic.
//!
//! # Read/write split and the publication lifecycle
//!
//! Every **read** — [`check`](AccessControlSystem::check),
//! [`check_batch`](AccessControlSystem::check_batch),
//! [`audience`](AccessControlSystem::audience),
//! [`audience_batch`](AccessControlSystem::audience_batch),
//! [`explain`](AccessControlSystem::explain) — takes `&self`, so any
//! number of requester threads can evaluate concurrently against one
//! system (e.g. through `std::thread::scope`). Reads share the
//! epoch-published [`CsrSnapshot`] held by the wrapped [`Enforcer`]:
//! each read clones the current epoch's `Arc` and traverses the
//! immutable index lock-free. Every **mutation** — adding members,
//! relationships, resources or rules — takes `&mut self`, guaranteeing
//! exclusivity, and only *stales* derived state: the decision caches
//! drop immediately, while the published snapshot is retained so the
//! next read can republish it **incrementally**
//! ([`CsrSnapshot::apply_edge_appends`] — the system owns its graph,
//! so the append-only lineage the patch requires holds by
//! construction). The lazily built join index is dropped and rebuilt
//! on the next indexed read, as in the paper's static-graph model.
//!
//! [`CsrSnapshot`]: socialreach_graph::csr::CsrSnapshot
//! [`CsrSnapshot::apply_edge_appends`]: socialreach_graph::csr::CsrSnapshot::apply_edge_appends

use crate::engine::{AccessEngine, Enforcer, OnlineEngine};
use crate::error::EvalError;
use crate::joinengine::{JoinEngineConfig, JoinIndexEngine};
use crate::online;
use crate::path::PathExpr;
use crate::policy::{Decision, PolicyStore, ResourceId};
use crate::query::{parse_policy, parse_queries_readonly};
use crate::service::{
    AccessService, BundleStrategy, CheckPlan, Explanation, MutateService, ReadStats, WalkHop,
    WitnessWalk,
};
use parking_lot::RwLock;
use socialreach_graph::{AttrValue, EdgeId, LabelId, NodeId, SocialGraph};
use std::sync::Arc;

/// Which engine evaluates access conditions.
#[derive(Clone, Copy, Debug)]
pub enum EngineChoice {
    /// Constrained product BFS per request (no precomputation).
    Online,
    /// The §3 line-graph cluster join index (built lazily, rebuilt after
    /// mutations).
    JoinIndex(JoinEngineConfig),
}

/// High-level access-control façade (see the module docs for the
/// `&self` read path / `&mut self` write path contract).
pub struct AccessControlSystem {
    graph: SocialGraph,
    store: PolicyStore,
    choice: EngineChoice,
    join: RwLock<Option<Arc<Enforcer<JoinIndexEngine>>>>,
    online: Enforcer<OnlineEngine>,
}

impl AccessControlSystem {
    /// A system evaluating requests online (good default for evolving
    /// graphs).
    pub fn new_online() -> Self {
        Self::new(EngineChoice::Online)
    }

    /// A system evaluating requests through the join index (good for
    /// read-mostly graphs).
    pub fn new_indexed() -> Self {
        Self::new(EngineChoice::JoinIndex(JoinEngineConfig::default()))
    }

    /// A system with an explicit engine choice.
    pub fn new(choice: EngineChoice) -> Self {
        AccessControlSystem {
            graph: SocialGraph::new(),
            store: PolicyStore::new(),
            choice,
            join: RwLock::new(None),
            // The system owns its graph and routes every mutation, so
            // the append-only lineage incremental publication needs is
            // guaranteed by construction.
            online: Enforcer::new(OnlineEngine).with_append_publication(),
        }
    }

    /// A system serving a copy of an existing graph: same member ids,
    /// same label/attr-key ids, same edge order. A policy store built
    /// against `g` can then be adopted verbatim with
    /// [`AccessControlSystem::adopt_store`] (the mirror of
    /// [`crate::ShardedSystem::from_graph`], so
    /// [`crate::service::Deployment::from_graph`] stands either backend
    /// up over one shared workload).
    pub fn from_graph(g: &SocialGraph, choice: EngineChoice) -> Self {
        let mut sys = Self::new(choice);
        sys.graph = g.clone();
        sys
    }

    /// Adopts a policy store built against the graph this system was
    /// ingested from ([`AccessControlSystem::from_graph`] — ids align
    /// by construction).
    pub fn adopt_store(&mut self, store: PolicyStore) {
        self.dirty();
        self.store = store;
    }

    /// This backend as a deployment-agnostic read service (the
    /// [`AccessService`] all read callers should migrate to).
    pub fn service(&self) -> &dyn AccessService {
        self
    }

    // ------------------------------------------------------------------
    // Graph management (mutations invalidate caches/indexes)
    // ------------------------------------------------------------------

    /// Registers a member.
    pub fn add_user(&mut self, name: &str) -> NodeId {
        self.dirty();
        self.graph.add_node(name)
    }

    /// Sets a member attribute.
    pub fn set_user_attr(&mut self, user: NodeId, key: &str, value: impl Into<AttrValue>) {
        self.dirty();
        self.graph.set_node_attr(user, key, value);
    }

    /// Adds a directed relationship.
    pub fn connect(&mut self, src: NodeId, label: &str, dst: NodeId) -> EdgeId {
        self.dirty();
        self.graph.connect(src, label, dst)
    }

    /// Adds a mutual relationship (both directions), as platforms model
    /// symmetric friendship.
    pub fn connect_mutual(&mut self, a: NodeId, label: &str, b: NodeId) -> (EdgeId, EdgeId) {
        self.dirty();
        let e1 = self.graph.connect(a, label, b);
        let e2 = self.graph.connect(b, label, a);
        (e1, e2)
    }

    /// Looks a member up by name.
    pub fn user(&self, name: &str) -> Result<NodeId, EvalError> {
        Ok(self.graph.require_node(name)?)
    }

    /// Read-only view of the social graph.
    pub fn graph(&self) -> &SocialGraph {
        &self.graph
    }

    /// Read-only view of the policy store.
    pub fn store(&self) -> &PolicyStore {
        &self.store
    }

    // ------------------------------------------------------------------
    // Resources and policies
    // ------------------------------------------------------------------

    /// Registers a resource owned by `owner`. New resources are private.
    pub fn share(&mut self, owner: NodeId) -> ResourceId {
        self.dirty();
        self.store.register_resource(owner)
    }

    /// Attaches a rule granting access along `path_text` (e.g.
    /// `"friend+[1,2]/colleague+[1]"`) to the resource's audience.
    pub fn allow(&mut self, rid: ResourceId, path_text: &str) -> Result<(), EvalError> {
        self.dirty();
        self.store.allow(rid, path_text, &mut self.graph)
    }

    // ------------------------------------------------------------------
    // Enforcement (the `&self` read path)
    // ------------------------------------------------------------------

    /// The lazily built join-index enforcer (double-checked so
    /// concurrent cold readers build it once).
    ///
    /// # Panics
    /// Panics when called under [`EngineChoice::Online`].
    fn join_enforcer(&self) -> Arc<Enforcer<JoinIndexEngine>> {
        let EngineChoice::JoinIndex(cfg) = self.choice else {
            unreachable!("join enforcer requested under the online choice")
        };
        if let Some(join) = self.join.read().as_ref() {
            return Arc::clone(join);
        }
        let mut slot = self.join.write();
        if let Some(join) = slot.as_ref() {
            return Arc::clone(join);
        }
        let fresh = Arc::new(Enforcer::new(JoinIndexEngine::build(&self.graph, cfg)));
        *slot = Some(Arc::clone(&fresh));
        fresh
    }

    /// Decides whether `requester` may access `rid`.
    #[deprecated(since = "0.2.0", note = "read through the `AccessService` trait")]
    pub fn check(&self, rid: ResourceId, requester: NodeId) -> Result<Decision, EvalError> {
        AccessService::check(self, rid, requester)
    }

    /// Decides a batch of requests on up to `threads` worker threads
    /// sharing the current snapshot epoch; decisions come back in
    /// request order ([`Enforcer::check_batch`]).
    #[deprecated(since = "0.2.0", note = "read through the `AccessService` trait")]
    pub fn check_batch(
        &self,
        requests: &[(ResourceId, NodeId)],
        threads: usize,
    ) -> Result<Vec<Decision>, EvalError> {
        AccessService::check_batch(self, requests, threads)
    }

    /// The full audience of a resource: the union over rules of the
    /// intersection over each rule's conditions (plus the owner).
    #[deprecated(since = "0.2.0", note = "read through the `AccessService` trait")]
    pub fn audience(&self, rid: ResourceId) -> Result<Vec<NodeId>, EvalError> {
        AccessService::audience(self, rid)
    }

    /// Audiences of a whole bundle of resources at once (a feed of
    /// posts, an album), in `rids` order.
    #[deprecated(since = "0.2.0", note = "read through the `AccessService` trait")]
    pub fn audience_batch(&self, rids: &[ResourceId]) -> Result<Vec<Vec<NodeId>>, EvalError> {
        AccessService::audience_batch(self, rids)
    }

    /// Number of snapshot publications the online enforcer has made
    /// (each rebuild or incremental patch is one epoch).
    pub fn snapshot_epoch(&self) -> u64 {
        self.online.snapshot_epoch()
    }

    /// Explains a grant as human-readable walk lines, or `None` when
    /// access is denied.
    #[deprecated(since = "0.2.0", note = "read through the `AccessService` trait")]
    pub fn explain(
        &self,
        rid: ResourceId,
        requester: NodeId,
    ) -> Result<Option<Vec<String>>, EvalError> {
        AccessService::explain_lines(self, rid, requester)
    }

    /// Parses a policy in either syntax — classic path notation or the
    /// openCypher-flavored `MATCH` grammar — against this system's
    /// vocabulary (exposed for examples and tests).
    pub fn parse(&mut self, text: &str) -> Result<crate::path::PathExpr, EvalError> {
        Ok(parse_policy(text, self.graph.vocab_mut())?)
    }

    /// Decision-cache statistics of the active engine `(hits, misses)`.
    pub fn cache_stats(&self) -> (u64, u64) {
        match self.choice {
            EngineChoice::Online => self.online.cache_stats(),
            EngineChoice::JoinIndex(_) => self
                .join
                .read()
                .as_ref()
                .map(|e| e.cache_stats())
                .unwrap_or((0, 0)),
        }
    }

    fn dirty(&mut self) {
        // Decisions are stale after any mutation, but the published CSR
        // snapshot is *kept* as the next epoch's base: the system's
        // mutations are all appends or attribute/policy writes, so the
        // next read either revalidates it (non-topology writes) or
        // patches it incrementally (appends). The join index has no
        // incremental path; drop it and rebuild lazily.
        self.online.invalidate_decisions();
        *self.join.get_mut() = None;
    }
}

/// The deployment-agnostic read surface: this impl block is the **one
/// place** the single-graph backend's reads live (the deprecated
/// inherent methods forward here).
impl AccessService for AccessControlSystem {
    fn describe(&self) -> String {
        match self.choice {
            EngineChoice::Online => "single(online-bfs)".to_owned(),
            EngineChoice::JoinIndex(_) => "single(join-index)".to_owned(),
        }
    }

    fn num_members(&self) -> usize {
        self.graph.num_nodes()
    }

    fn num_relationships(&self) -> usize {
        self.graph.num_edges()
    }

    fn resolve_user(&self, name: &str) -> Result<NodeId, EvalError> {
        self.user(name)
    }

    fn member_name(&self, member: NodeId) -> &str {
        self.graph.node_name(member)
    }

    fn label_name(&self, label: LabelId) -> &str {
        self.graph.vocab().label_name(label)
    }

    fn check(&self, rid: ResourceId, requester: NodeId) -> Result<Decision, EvalError> {
        match self.choice {
            EngineChoice::Online => {
                self.online
                    .check_access(&self.graph, &self.store, rid, requester)
            }
            EngineChoice::JoinIndex(_) => {
                self.join_enforcer()
                    .check_access(&self.graph, &self.store, rid, requester)
            }
        }
    }

    fn check_batch(
        &self,
        requests: &[(ResourceId, NodeId)],
        threads: usize,
    ) -> Result<Vec<Decision>, EvalError> {
        match self.choice {
            EngineChoice::Online => {
                self.online
                    .check_batch(&self.graph, &self.store, requests, threads)
            }
            EngineChoice::JoinIndex(_) => {
                self.join_enforcer()
                    .check_batch(&self.graph, &self.store, requests, threads)
            }
        }
    }

    /// Under the online engine the bundle's distinct conditions are
    /// deduped and every set of owners sharing a path template
    /// traverses the shared snapshot together in one multi-source pass
    /// — the batch-audience workload this system is built around.
    fn audience_batch_with_stats(
        &self,
        rids: &[ResourceId],
    ) -> Result<(Vec<Vec<NodeId>>, ReadStats), EvalError> {
        match self.choice {
            EngineChoice::Online => {
                self.online
                    .audience_batch_with_stats(&self.graph, &self.store, rids)
            }
            EngineChoice::JoinIndex(_) => {
                self.join_enforcer()
                    .audience_batch_with_stats(&self.graph, &self.store, rids)
            }
        }
    }

    /// Ad-hoc query bundles always run on the online engine over the
    /// published snapshot — they are one-shot reads, so the join
    /// index's precomputation has nothing to amortize. Parsing is
    /// read-only against the system's vocabulary: a query mentioning a
    /// never-seen relationship type or attribute is unsatisfiable and
    /// reports an empty audience without ever touching the graph.
    fn query_audience_bundle(
        &self,
        queries: &[(NodeId, &str)],
    ) -> Result<Vec<Vec<NodeId>>, EvalError> {
        let texts: Vec<&str> = queries.iter().map(|&(_, t)| t).collect();
        let parsed = parse_queries_readonly(&texts, self.graph.vocab())?;
        let mut out: Vec<Vec<NodeId>> = vec![Vec::new(); queries.len()];
        let mut conds: Vec<(NodeId, &PathExpr)> = Vec::new();
        let mut slots: Vec<usize> = Vec::new();
        for (i, path) in parsed.iter().enumerate() {
            if let Some(path) = path {
                conds.push((queries[i].0, path));
                slots.push(i);
            }
        }
        if conds.is_empty() {
            return Ok(out);
        }
        match self.online.publish_snapshot(&self.graph) {
            Some(snap) => {
                let outcomes =
                    OnlineEngine.audience_batch_with_snapshot(&self.graph, &snap, &conds)?;
                for (slot, o) in slots.into_iter().zip(outcomes) {
                    out[slot] = o.members;
                }
            }
            None => {
                // Edge-free graph: nothing to publish, nothing to walk.
                for (slot, &(owner, path)) in slots.into_iter().zip(&conds) {
                    if path.is_empty() {
                        out[slot] = vec![owner];
                    }
                }
            }
        }
        Ok(out)
    }

    /// Always uses the online engine (the join index does not keep
    /// witnesses).
    fn explain(
        &self,
        rid: ResourceId,
        requester: NodeId,
    ) -> Result<Option<Explanation>, EvalError> {
        Ok(self.explain_with_stats(rid, requester)?.0)
    }

    fn cache_stats(&self) -> (u64, u64) {
        AccessControlSystem::cache_stats(self)
    }

    fn check_with_stats(
        &self,
        rid: ResourceId,
        requester: NodeId,
    ) -> Result<(Decision, ReadStats), EvalError> {
        match self.choice {
            EngineChoice::Online => {
                self.online
                    .check_access_with_stats(&self.graph, &self.store, rid, requester)
            }
            EngineChoice::JoinIndex(_) => self.join_enforcer().check_access_with_stats(
                &self.graph,
                &self.store,
                rid,
                requester,
            ),
        }
    }

    fn check_batch_with_stats(
        &self,
        requests: &[(ResourceId, NodeId)],
        threads: usize,
    ) -> Result<(Vec<Decision>, ReadStats), EvalError> {
        match self.choice {
            EngineChoice::Online => {
                self.online
                    .check_batch_with_stats(&self.graph, &self.store, requests, threads)
            }
            EngineChoice::JoinIndex(_) => self.join_enforcer().check_batch_with_stats(
                &self.graph,
                &self.store,
                requests,
                threads,
            ),
        }
    }

    fn explain_with_stats(
        &self,
        rid: ResourceId,
        requester: NodeId,
    ) -> Result<(Option<Explanation>, ReadStats), EvalError> {
        let mut stats = ReadStats::default();
        let owner = self.store.owner_of(rid)?;
        if requester == owner {
            return Ok((Some(Explanation::Ownership { owner }), stats));
        }
        let rules = self.store.rules_for(rid).to_vec();
        'rules: for rule in &rules {
            if rule.conditions.is_empty() {
                continue;
            }
            let mut walks = Vec::new();
            for cond in &rule.conditions {
                let out = online::evaluate(&self.graph, cond.owner, &cond.path, Some(requester));
                stats.conditions += 1;
                stats.traversals += 1;
                stats.rounds += 1;
                stats.states_expanded += out.stats.states_visited;
                let Some(witness) = out.witness else {
                    continue 'rules;
                };
                let mut hops = Vec::with_capacity(witness.len());
                let mut at = cond.owner;
                for (eid, forward) in witness {
                    let rec = self.graph.edge(eid);
                    hops.push(WalkHop {
                        src: rec.src,
                        dst: rec.dst,
                        label: rec.label,
                        forward,
                    });
                    at = if forward { rec.dst } else { rec.src };
                }
                debug_assert_eq!(at, requester);
                walks.push(WitnessWalk {
                    start: cond.owner,
                    hops,
                });
            }
            return Ok((Some(Explanation::Rule { walks }), stats));
        }
        Ok((None, stats))
    }

    fn stats_supported(&self) -> bool {
        true
    }

    fn audience_batch_forced(
        &self,
        rids: &[ResourceId],
        strategy: BundleStrategy,
    ) -> Result<(Vec<Vec<NodeId>>, ReadStats), EvalError> {
        match self.choice {
            EngineChoice::Online => {
                self.online
                    .audience_batch_forced(&self.graph, &self.store, rids, strategy)
            }
            EngineChoice::JoinIndex(_) => {
                self.join_enforcer()
                    .audience_batch_forced(&self.graph, &self.store, rids, strategy)
            }
        }
    }

    fn check_batch_forced(
        &self,
        requests: &[(ResourceId, NodeId)],
        threads: usize,
        plan: CheckPlan,
    ) -> Result<(Vec<Decision>, ReadStats), EvalError> {
        match plan {
            CheckPlan::Targeted => self.check_batch_with_stats(requests, threads),
            CheckPlan::Audience(strategy) => match self.choice {
                EngineChoice::Online => self.online.check_batch_via_audiences(
                    &self.graph,
                    &self.store,
                    requests,
                    strategy,
                ),
                EngineChoice::JoinIndex(_) => self.join_enforcer().check_batch_via_audiences(
                    &self.graph,
                    &self.store,
                    requests,
                    strategy,
                ),
            },
        }
    }
}

/// The deployment-agnostic write surface (thin forwards onto the richer
/// inherent mutators, which remain for callers that want `EdgeId`s or
/// `impl Into<AttrValue>` ergonomics).
impl MutateService for AccessControlSystem {
    fn add_user(&mut self, name: &str) -> NodeId {
        AccessControlSystem::add_user(self, name)
    }

    fn set_user_attr(&mut self, user: NodeId, key: &str, value: AttrValue) {
        AccessControlSystem::set_user_attr(self, user, key, value);
    }

    fn add_relationship(&mut self, src: NodeId, label: &str, dst: NodeId) {
        self.connect(src, label, dst);
    }

    fn add_mutual_relationship(&mut self, a: NodeId, label: &str, b: NodeId) {
        self.connect_mutual(a, label, b);
    }

    fn add_resource(&mut self, owner: NodeId) -> ResourceId {
        self.share(owner)
    }

    fn add_rule(&mut self, rid: ResourceId, path_text: &str) -> Result<(), EvalError> {
        self.allow(rid, path_text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn populated(choice: EngineChoice) -> (AccessControlSystem, ResourceId) {
        let mut sys = AccessControlSystem::new(choice);
        let alice = sys.add_user("Alice");
        let bob = sys.add_user("Bob");
        let carol = sys.add_user("Carol");
        let dave = sys.add_user("Dave");
        sys.connect(alice, "friend", bob);
        sys.connect(bob, "friend", carol);
        sys.connect(carol, "colleague", dave);
        let rid = sys.share(alice);
        sys.allow(rid, "friend+[1,2]").unwrap();
        (sys, rid)
    }

    #[test]
    fn online_and_indexed_agree_end_to_end() {
        for choice in [
            EngineChoice::Online,
            EngineChoice::JoinIndex(JoinEngineConfig::default()),
        ] {
            let (sys, rid) = populated(choice);
            let bob = sys.user("Bob").unwrap();
            let carol = sys.user("Carol").unwrap();
            let dave = sys.user("Dave").unwrap();
            assert_eq!(sys.service().check(rid, bob).unwrap(), Decision::Grant);
            assert_eq!(sys.service().check(rid, carol).unwrap(), Decision::Grant);
            assert_eq!(sys.service().check(rid, dave).unwrap(), Decision::Deny);
        }
    }

    #[test]
    fn audience_includes_owner_and_matching_members() {
        let (sys, rid) = populated(EngineChoice::Online);
        let names: Vec<String> = sys
            .service()
            .audience(rid)
            .unwrap()
            .iter()
            .map(|&n| sys.graph().node_name(n).to_owned())
            .collect();
        assert_eq!(names, vec!["Alice", "Bob", "Carol"]);
    }

    #[test]
    fn mutation_invalidates_the_index() {
        let (mut sys, rid) = populated(EngineChoice::JoinIndex(JoinEngineConfig::default()));
        let dave = sys.user("Dave").unwrap();
        assert_eq!(sys.service().check(rid, dave).unwrap(), Decision::Deny);
        // Alice befriends Dave directly; the index must be rebuilt.
        let alice = sys.user("Alice").unwrap();
        sys.connect(alice, "friend", dave);
        assert_eq!(sys.service().check(rid, dave).unwrap(), Decision::Grant);
    }

    #[test]
    fn explain_produces_a_readable_walk() {
        let (sys, rid) = populated(EngineChoice::Online);
        let carol = sys.user("Carol").unwrap();
        let explanation = sys
            .service()
            .explain_lines(rid, carol)
            .unwrap()
            .expect("granted");
        assert_eq!(explanation.len(), 1);
        assert!(explanation[0].contains("Alice"));
        assert!(explanation[0].contains("-friend->"));
        assert!(explanation[0].ends_with("Carol"));
        let dave = sys.user("Dave").unwrap();
        assert!(sys.service().explain_lines(rid, dave).unwrap().is_none());
    }

    #[test]
    fn owner_explanation_is_ownership() {
        let (sys, rid) = populated(EngineChoice::Online);
        let alice = sys.user("Alice").unwrap();
        let explanation = sys.service().explain_lines(rid, alice).unwrap().unwrap();
        assert!(explanation[0].contains("owns"));
    }

    #[test]
    fn mutual_connection_adds_both_directions() {
        let mut sys = AccessControlSystem::new_online();
        let a = sys.add_user("A");
        let b = sys.add_user("B");
        sys.connect_mutual(a, "friend", b);
        assert_eq!(sys.graph().num_edges(), 2);
    }

    #[test]
    fn cache_stats_track_repeat_checks() {
        let (sys, rid) = populated(EngineChoice::Online);
        let bob = sys.user("Bob").unwrap();
        sys.service().check(rid, bob).unwrap();
        sys.service().check(rid, bob).unwrap();
        let (hits, misses) = sys.cache_stats();
        assert_eq!((hits, misses), (1, 1));
    }

    #[test]
    fn concurrent_readers_share_one_snapshot_epoch() {
        let (sys, rid) = populated(EngineChoice::Online);
        let bob = sys.user("Bob").unwrap();
        let carol = sys.user("Carol").unwrap();
        let dave = sys.user("Dave").unwrap();
        // Many threads checking through `&self` against one system.
        let decisions: Vec<Decision> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..8)
                .map(|i| {
                    let sys = &sys;
                    let user = [bob, carol, dave][i % 3];
                    scope.spawn(move || sys.service().check(rid, user).unwrap())
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (i, d) in decisions.iter().enumerate() {
            let expect = if i % 3 == 2 {
                Decision::Deny
            } else {
                Decision::Grant
            };
            assert_eq!(*d, expect);
        }
        assert_eq!(
            sys.snapshot_epoch(),
            1,
            "all readers shared a single publication"
        );
    }

    #[test]
    fn appends_republish_incrementally_not_from_scratch() {
        let (mut sys, rid) = populated(EngineChoice::Online);
        let dave = sys.user("Dave").unwrap();
        assert_eq!(sys.service().check(rid, dave).unwrap(), Decision::Deny);
        assert_eq!(sys.snapshot_epoch(), 1);
        let alice = sys.user("Alice").unwrap();
        sys.connect(alice, "friend", dave);
        assert_eq!(sys.service().check(rid, dave).unwrap(), Decision::Grant);
        assert_eq!(sys.snapshot_epoch(), 2, "append published a new epoch");
        // Attribute writes keep the epoch: the snapshot stores no
        // attributes, so no republication happens.
        sys.set_user_attr(dave, "age", 44i64);
        assert_eq!(sys.service().check(rid, dave).unwrap(), Decision::Grant);
        assert_eq!(sys.snapshot_epoch(), 2);
    }

    #[test]
    fn check_batch_through_the_facade_matches_sequential() {
        let (sys, rid) = populated(EngineChoice::Online);
        let bob = sys.user("Bob").unwrap();
        let dave = sys.user("Dave").unwrap();
        let requests: Vec<_> = (0..30)
            .map(|i| (rid, if i % 2 == 0 { bob } else { dave }))
            .collect();
        let sequential: Vec<Decision> = requests
            .iter()
            .map(|&(r, u)| sys.service().check(r, u).unwrap())
            .collect();
        assert_eq!(sys.service().check_batch(&requests, 4).unwrap(), sequential);
    }

    #[test]
    fn audience_batch_matches_per_resource_audiences() {
        for choice in [
            EngineChoice::Online,
            EngineChoice::JoinIndex(JoinEngineConfig::default()),
        ] {
            let (mut sys, rid) = populated(choice);
            let bob = sys.user("Bob").unwrap();
            let rid2 = sys.share(bob);
            sys.allow(rid2, "friend+[1,2]").unwrap();
            let rid3 = sys.share(bob); // private
            let bundle = [rid, rid2, rid3];
            let batched = sys.service().audience_batch(&bundle).unwrap();
            for (&r, batch) in bundle.iter().zip(&batched) {
                assert_eq!(batch, &sys.service().audience(r).unwrap());
            }
        }
    }

    #[test]
    fn unknown_user_and_resource_error() {
        let mut sys = AccessControlSystem::new_online();
        assert!(sys.user("Nobody").is_err());
        let alice = sys.add_user("Alice");
        assert!(matches!(
            sys.service().check(ResourceId(99), alice),
            Err(EvalError::UnknownResource(99))
        ));
    }
}
