//! `AccessControlSystem` — the batteries-included façade a social
//! platform would embed: members, relationships, shared resources,
//! textual policies, and enforced access checks with pluggable engines.
//!
//! The system keeps three derived structures coherent with the graph
//! and the policies: the decision cache, the join index, and the online
//! engine's label-partitioned [`CsrSnapshot`] (one per graph
//! generation, held by the wrapped `Enforcer`). Any mutation
//! invalidates all of them and they rebuild lazily on the next check
//! (the paper treats the graph as static during enforcement;
//! incremental maintenance is future work there — see DESIGN.md §3).
//!
//! [`CsrSnapshot`]: socialreach_graph::csr::CsrSnapshot

use crate::engine::{Enforcer, OnlineEngine};
use crate::error::EvalError;
use crate::joinengine::{JoinEngineConfig, JoinIndexEngine};
use crate::online;
use crate::path::parse_path;
use crate::policy::{Decision, PolicyStore, ResourceId};
use socialreach_graph::{AttrValue, EdgeId, NodeId, SocialGraph};

/// Which engine evaluates access conditions.
#[derive(Clone, Copy, Debug)]
pub enum EngineChoice {
    /// Constrained product BFS per request (no precomputation).
    Online,
    /// The §3 line-graph cluster join index (built lazily, rebuilt after
    /// mutations).
    JoinIndex(JoinEngineConfig),
}

/// High-level access-control façade.
pub struct AccessControlSystem {
    graph: SocialGraph,
    store: PolicyStore,
    choice: EngineChoice,
    join: Option<Enforcer<JoinIndexEngine>>,
    online: Enforcer<OnlineEngine>,
}

impl AccessControlSystem {
    /// A system evaluating requests online (good default for evolving
    /// graphs).
    pub fn new_online() -> Self {
        Self::new(EngineChoice::Online)
    }

    /// A system evaluating requests through the join index (good for
    /// read-mostly graphs).
    pub fn new_indexed() -> Self {
        Self::new(EngineChoice::JoinIndex(JoinEngineConfig::default()))
    }

    /// A system with an explicit engine choice.
    pub fn new(choice: EngineChoice) -> Self {
        AccessControlSystem {
            graph: SocialGraph::new(),
            store: PolicyStore::new(),
            choice,
            join: None,
            online: Enforcer::new(OnlineEngine),
        }
    }

    // ------------------------------------------------------------------
    // Graph management (mutations invalidate caches/indexes)
    // ------------------------------------------------------------------

    /// Registers a member.
    pub fn add_user(&mut self, name: &str) -> NodeId {
        self.dirty();
        self.graph.add_node(name)
    }

    /// Sets a member attribute.
    pub fn set_user_attr(&mut self, user: NodeId, key: &str, value: impl Into<AttrValue>) {
        self.dirty();
        self.graph.set_node_attr(user, key, value);
    }

    /// Adds a directed relationship.
    pub fn connect(&mut self, src: NodeId, label: &str, dst: NodeId) -> EdgeId {
        self.dirty();
        self.graph.connect(src, label, dst)
    }

    /// Adds a mutual relationship (both directions), as platforms model
    /// symmetric friendship.
    pub fn connect_mutual(&mut self, a: NodeId, label: &str, b: NodeId) -> (EdgeId, EdgeId) {
        self.dirty();
        let e1 = self.graph.connect(a, label, b);
        let e2 = self.graph.connect(b, label, a);
        (e1, e2)
    }

    /// Looks a member up by name.
    pub fn user(&self, name: &str) -> Result<NodeId, EvalError> {
        Ok(self.graph.require_node(name)?)
    }

    /// Read-only view of the social graph.
    pub fn graph(&self) -> &SocialGraph {
        &self.graph
    }

    /// Read-only view of the policy store.
    pub fn store(&self) -> &PolicyStore {
        &self.store
    }

    // ------------------------------------------------------------------
    // Resources and policies
    // ------------------------------------------------------------------

    /// Registers a resource owned by `owner`. New resources are private.
    pub fn share(&mut self, owner: NodeId) -> ResourceId {
        self.dirty();
        self.store.register_resource(owner)
    }

    /// Attaches a rule granting access along `path_text` (e.g.
    /// `"friend+[1,2]/colleague+[1]"`) to the resource's audience.
    pub fn allow(&mut self, rid: ResourceId, path_text: &str) -> Result<(), EvalError> {
        self.dirty();
        self.store.allow(rid, path_text, &mut self.graph)
    }

    // ------------------------------------------------------------------
    // Enforcement
    // ------------------------------------------------------------------

    /// Decides whether `requester` may access `rid`.
    pub fn check(&mut self, rid: ResourceId, requester: NodeId) -> Result<Decision, EvalError> {
        match self.choice {
            EngineChoice::Online => {
                self.online
                    .check_access(&self.graph, &self.store, rid, requester)
            }
            EngineChoice::JoinIndex(cfg) => {
                if self.join.is_none() {
                    self.join = Some(Enforcer::new(JoinIndexEngine::build(&self.graph, cfg)));
                }
                self.join
                    .as_ref()
                    .expect("join engine just built")
                    .check_access(&self.graph, &self.store, rid, requester)
            }
        }
    }

    /// The full audience of a resource: the union over rules of the
    /// intersection over each rule's conditions (plus the owner).
    pub fn audience(&mut self, rid: ResourceId) -> Result<Vec<NodeId>, EvalError> {
        match self.choice {
            EngineChoice::Online => {
                crate::engine::resource_audience(&self.graph, &self.store, rid, &OnlineEngine)
            }
            EngineChoice::JoinIndex(cfg) => {
                if self.join.is_none() {
                    self.join = Some(Enforcer::new(JoinIndexEngine::build(&self.graph, cfg)));
                }
                let engine = self.join.as_ref().expect("join engine just built").engine();
                crate::engine::resource_audience(&self.graph, &self.store, rid, engine)
            }
        }
    }

    /// Explains a grant: a human-readable walk from the owner to the
    /// requester matching one of the resource's rules, or `None` when
    /// access is denied. Always uses the online engine (the join index
    /// does not keep witnesses).
    pub fn explain(
        &mut self,
        rid: ResourceId,
        requester: NodeId,
    ) -> Result<Option<Vec<String>>, EvalError> {
        let owner = self.store.owner_of(rid)?;
        if requester == owner {
            return Ok(Some(vec![format!(
                "{} owns the resource",
                self.graph.node_name(owner)
            )]));
        }
        let rules = self.store.rules_for(rid).to_vec();
        'rules: for rule in &rules {
            if rule.conditions.is_empty() {
                continue;
            }
            let mut lines = Vec::new();
            for cond in &rule.conditions {
                let out = online::evaluate(&self.graph, cond.owner, &cond.path, Some(requester));
                let Some(witness) = out.witness else {
                    continue 'rules;
                };
                let mut walk = vec![self.graph.node_name(cond.owner).to_owned()];
                let mut at = cond.owner;
                for (eid, forward) in witness {
                    let rec = self.graph.edge(eid);
                    let (next, arrow) = if forward {
                        (
                            rec.dst,
                            format!("-{}->", self.graph.vocab().label_name(rec.label)),
                        )
                    } else {
                        (
                            rec.src,
                            format!("<-{}-", self.graph.vocab().label_name(rec.label)),
                        )
                    };
                    walk.push(arrow);
                    walk.push(self.graph.node_name(next).to_owned());
                    at = next;
                }
                debug_assert_eq!(at, requester);
                lines.push(walk.join(" "));
            }
            return Ok(Some(lines));
        }
        Ok(None)
    }

    /// Parses a path against this system's vocabulary (exposed for
    /// examples and tests).
    pub fn parse(&mut self, text: &str) -> Result<crate::path::PathExpr, EvalError> {
        Ok(parse_path(text, self.graph.vocab_mut())?)
    }

    /// Decision-cache statistics of the active engine `(hits, misses)`.
    pub fn cache_stats(&self) -> (u64, u64) {
        match self.choice {
            EngineChoice::Online => self.online.cache_stats(),
            EngineChoice::JoinIndex(_) => self
                .join
                .as_ref()
                .map(|e| e.cache_stats())
                .unwrap_or((0, 0)),
        }
    }

    fn dirty(&mut self) {
        // Enforcer::invalidate drops both the decision cache and the
        // cached CSR snapshot; the join index is rebuilt lazily.
        self.online.invalidate();
        if let Some(join) = &self.join {
            join.invalidate();
        }
        self.join = None; // the index is stale; rebuild lazily
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn populated(choice: EngineChoice) -> (AccessControlSystem, ResourceId) {
        let mut sys = AccessControlSystem::new(choice);
        let alice = sys.add_user("Alice");
        let bob = sys.add_user("Bob");
        let carol = sys.add_user("Carol");
        let dave = sys.add_user("Dave");
        sys.connect(alice, "friend", bob);
        sys.connect(bob, "friend", carol);
        sys.connect(carol, "colleague", dave);
        let rid = sys.share(alice);
        sys.allow(rid, "friend+[1,2]").unwrap();
        (sys, rid)
    }

    #[test]
    fn online_and_indexed_agree_end_to_end() {
        for choice in [
            EngineChoice::Online,
            EngineChoice::JoinIndex(JoinEngineConfig::default()),
        ] {
            let (mut sys, rid) = populated(choice);
            let bob = sys.user("Bob").unwrap();
            let carol = sys.user("Carol").unwrap();
            let dave = sys.user("Dave").unwrap();
            assert_eq!(sys.check(rid, bob).unwrap(), Decision::Grant);
            assert_eq!(sys.check(rid, carol).unwrap(), Decision::Grant);
            assert_eq!(sys.check(rid, dave).unwrap(), Decision::Deny);
        }
    }

    #[test]
    fn audience_includes_owner_and_matching_members() {
        let (mut sys, rid) = populated(EngineChoice::Online);
        let names: Vec<String> = sys
            .audience(rid)
            .unwrap()
            .iter()
            .map(|&n| sys.graph().node_name(n).to_owned())
            .collect();
        assert_eq!(names, vec!["Alice", "Bob", "Carol"]);
    }

    #[test]
    fn mutation_invalidates_the_index() {
        let (mut sys, rid) = populated(EngineChoice::JoinIndex(JoinEngineConfig::default()));
        let dave = sys.user("Dave").unwrap();
        assert_eq!(sys.check(rid, dave).unwrap(), Decision::Deny);
        // Alice befriends Dave directly; the index must be rebuilt.
        let alice = sys.user("Alice").unwrap();
        sys.connect(alice, "friend", dave);
        assert_eq!(sys.check(rid, dave).unwrap(), Decision::Grant);
    }

    #[test]
    fn explain_produces_a_readable_walk() {
        let (mut sys, rid) = populated(EngineChoice::Online);
        let carol = sys.user("Carol").unwrap();
        let explanation = sys.explain(rid, carol).unwrap().expect("granted");
        assert_eq!(explanation.len(), 1);
        assert!(explanation[0].contains("Alice"));
        assert!(explanation[0].contains("-friend->"));
        assert!(explanation[0].ends_with("Carol"));
        let dave = sys.user("Dave").unwrap();
        assert!(sys.explain(rid, dave).unwrap().is_none());
    }

    #[test]
    fn owner_explanation_is_ownership() {
        let (mut sys, rid) = populated(EngineChoice::Online);
        let alice = sys.user("Alice").unwrap();
        let explanation = sys.explain(rid, alice).unwrap().unwrap();
        assert!(explanation[0].contains("owns"));
    }

    #[test]
    fn mutual_connection_adds_both_directions() {
        let mut sys = AccessControlSystem::new_online();
        let a = sys.add_user("A");
        let b = sys.add_user("B");
        sys.connect_mutual(a, "friend", b);
        assert_eq!(sys.graph().num_edges(), 2);
    }

    #[test]
    fn cache_stats_track_repeat_checks() {
        let (mut sys, rid) = populated(EngineChoice::Online);
        let bob = sys.user("Bob").unwrap();
        sys.check(rid, bob).unwrap();
        sys.check(rid, bob).unwrap();
        let (hits, misses) = sys.cache_stats();
        assert_eq!((hits, misses), (1, 1));
    }

    #[test]
    fn unknown_user_and_resource_error() {
        let mut sys = AccessControlSystem::new_online();
        assert!(sys.user("Nobody").is_err());
        let alice = sys.add_user("Alice");
        assert!(matches!(
            sys.check(ResourceId(99), alice),
            Err(EvalError::UnknownResource(99))
        ));
    }
}
