//! The join-index evaluation engine — §3.3 (pattern matching over the
//! cluster-based join index) and §3.4 (post-processing).
//!
//! Pipeline per access condition:
//!
//! 1. the path is expanded into line queries
//!    ([`crate::lineplan::plan`], Figure 4);
//! 2. every line query is matched against the base tables by chained
//!    reachability joins routed through the W-table — producing
//!    *candidate* tuples of line vertices (§3.3's temporal tables);
//! 3. post-processing keeps the tuples whose consecutive vertices are
//!    adjacent (they form a single walk), whose first vertex leaves the
//!    owner and last vertex enters the requester, and whose step-end
//!    members satisfy the attribute conditions (§3.4).
//!
//! Three join strategies, compared in experiment P5:
//!
//! * [`JoinStrategy::PaperFaithful`] — the paper's exact recipe: joins
//!   start from the *full* first base table and the owner/requester are
//!   only checked in post-processing;
//! * [`JoinStrategy::OwnerSeeded`] — identical joins, but the first
//!   table is pre-filtered to the owner's leaving vertices (a
//!   straightforward optimization the paper's §3.4 example hints at);
//! * [`JoinStrategy::AdjacencyOnly`] — extends tuples along line-graph
//!   adjacency instead of reachability (no superset, post-adjacency is
//!   vacuous); this is effectively a BFS in line-graph space and serves
//!   as the optimized upper bound.

use crate::engine::{AccessEngine, AudienceOutcome, CheckOutcome, EvalStats};
use crate::error::EvalError;
use crate::lineplan::{plan, LineQuery, PlanConfig};
use crate::path::PathExpr;
use socialreach_graph::{NodeId, SocialGraph};
use socialreach_reach::{JoinIndex, JoinIndexConfig, LineNodeKind};

/// Candidate-generation strategy for the join pipeline.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JoinStrategy {
    /// Full-table joins, endpoints checked in post-processing (§3.3).
    PaperFaithful,
    /// Joins seeded with the owner's leaving vertices.
    OwnerSeeded,
    /// Tuple extension along line-graph adjacency (exact matching).
    AdjacencyOnly,
}

/// Configuration of [`JoinIndexEngine`].
#[derive(Clone, Copy, Debug)]
pub struct JoinEngineConfig {
    /// Line-query expansion limits.
    pub plan: PlanConfig,
    /// Candidate-generation strategy.
    pub strategy: JoinStrategy,
    /// Index construction options.
    pub index: JoinIndexConfig,
    /// Abort evaluation when the candidate tuple set outgrows this.
    pub max_tuples: usize,
}

impl Default for JoinEngineConfig {
    fn default() -> Self {
        JoinEngineConfig {
            plan: PlanConfig::default(),
            strategy: JoinStrategy::OwnerSeeded,
            index: JoinIndexConfig::default(),
            max_tuples: 1_000_000,
        }
    }
}

/// The precomputed engine: owns the [`JoinIndex`] of §3.3.
#[derive(Clone, Debug)]
pub struct JoinIndexEngine {
    index: JoinIndex,
    cfg: JoinEngineConfig,
}

impl JoinIndexEngine {
    /// Builds the line graph, labeling, base tables, clusters and
    /// W-table for `g`.
    pub fn build(g: &SocialGraph, cfg: JoinEngineConfig) -> Self {
        let index = JoinIndex::build(g, &cfg.index);
        JoinIndexEngine { index, cfg }
    }

    /// The underlying index (for artifact printing and size reporting).
    pub fn index(&self) -> &JoinIndex {
        &self.index
    }

    /// The engine configuration.
    pub fn config(&self) -> &JoinEngineConfig {
        &self.cfg
    }

    /// Evaluates one access condition. `target = None` collects the full
    /// audience; `target = Some(v)` reports whether `v` matches.
    pub fn evaluate(
        &self,
        g: &SocialGraph,
        owner: NodeId,
        path: &PathExpr,
        target: Option<NodeId>,
    ) -> Result<JoinOutcome, EvalError> {
        let mut stats = EvalStats::default();

        if path.is_empty() {
            let granted = target == Some(owner);
            return Ok(JoinOutcome {
                granted,
                matched: if target.is_none() {
                    vec![owner]
                } else {
                    vec![]
                },
                stats,
            });
        }
        if path.needs_reverse() && !self.index.line().is_augmented() {
            return Err(EvalError::UnsupportedDirection);
        }

        let line_plan = plan(path, &self.cfg.plan)?;
        stats.truncated = line_plan.truncated;
        stats.line_queries = line_plan.queries.len();

        let mut matched: Vec<NodeId> = Vec::new();
        let mut granted = false;
        for q in &line_plan.queries {
            self.eval_line_query(g, owner, path, q, target, &mut matched, &mut stats)?;
            if target.is_some() && matched.iter().any(|&m| Some(m) == target) {
                granted = true;
                break; // early exit on grant
            }
        }
        matched.sort_unstable();
        matched.dedup();
        if target.is_some() {
            granted = matched.iter().any(|&m| Some(m) == target);
        }
        Ok(JoinOutcome {
            granted,
            matched,
            stats,
        })
    }

    /// Matches one line query, appending every member that terminates a
    /// valid tuple to `matched`.
    #[allow(clippy::too_many_arguments)]
    fn eval_line_query(
        &self,
        g: &SocialGraph,
        owner: NodeId,
        path: &PathExpr,
        q: &LineQuery,
        target: Option<NodeId>,
        matched: &mut Vec<NodeId>,
        stats: &mut EvalStats,
    ) -> Result<(), EvalError> {
        debug_assert!(!q.is_empty(), "planned queries have >= 1 hop");
        let line = self.index.line();

        // ---- W-table / base-table pruning ----------------------------
        // A hop over an absent (label, orientation) can never match; an
        // empty W-table entry proves no x-labeled vertex reaches any
        // y-labeled vertex, hence no adjacency either. This is the
        // deny fast path the cluster index buys (experiment P4).
        if q.hops
            .iter()
            .any(|&k| self.index.base_tables().table(k).is_empty())
        {
            return Ok(());
        }
        if q.hops
            .windows(2)
            .any(|w| self.index.wtable().centers(w[0], w[1]).is_empty())
        {
            return Ok(());
        }

        if self.cfg.strategy == JoinStrategy::AdjacencyOnly {
            return self.eval_line_query_frontier(g, owner, path, q, target, matched, stats);
        }

        // ---- Candidate generation (§3.3 pattern matching) -------------
        let first_key = q.hops[0];
        let seed: Vec<u32> = match self.cfg.strategy {
            JoinStrategy::PaperFaithful => self.index.base_tables().table(first_key).to_vec(),
            JoinStrategy::OwnerSeeded | JoinStrategy::AdjacencyOnly => {
                self.leaving_with_key(owner, first_key)
            }
        };

        let mut tuples: Vec<Vec<u32>> = seed.into_iter().map(|x| vec![x]).collect();
        for w in q.hops.windows(2) {
            let (xk, yk) = (w[0], w[1]);
            let mut next: Vec<Vec<u32>> = Vec::new();
            for t in &tuples {
                let end = *t.last().expect("tuples are non-empty");
                let continuations: Vec<u32> = self.index.successors_via_wtable(end, xk, yk);
                for y in continuations {
                    let mut nt = t.clone();
                    nt.push(y);
                    next.push(nt);
                    if next.len() > self.cfg.max_tuples {
                        return Err(EvalError::TupleOverflow {
                            limit: self.cfg.max_tuples,
                        });
                    }
                }
            }
            tuples = next;
        }
        stats.candidate_tuples += tuples.len();

        // ---- Post-processing (§3.4) -----------------------------------
        let cond_sites = q.step_end_positions();
        'tuple: for t in &tuples {
            // (a) consecutive vertices must chain into a single walk.
            for w in t.windows(2) {
                if !line.adjacent(w[0], w[1]) {
                    continue 'tuple;
                }
            }
            // (b) the walk starts at the owner …
            if line.node(t[0]).from != owner {
                continue 'tuple;
            }
            // … and ends at the requester (when checking a target).
            let endpoint = line.node(*t.last().expect("non-empty")).to;
            if let Some(v) = target {
                if endpoint != v {
                    continue 'tuple;
                }
            }
            // (c) attribute conditions at each step's final member.
            for &(pos, step_idx) in &cond_sites {
                let member = line.node(t[pos]).to;
                let conds = &path.steps[step_idx as usize].conds;
                if !conds.iter().all(|c| c.eval(g.node_attrs(member))) {
                    continue 'tuple;
                }
            }
            stats.tuples_kept += 1;
            matched.push(endpoint);
        }
        Ok(())
    }

    /// Oriented line vertices leaving `owner` whose key matches.
    fn leaving_with_key(&self, owner: NodeId, key: socialreach_reach::LabelKey) -> Vec<u32> {
        let line = self.index.line();
        line.leaving(owner)
            .iter()
            .copied()
            .filter(|&x| {
                let ln = line.node(x);
                ln.label == Some(key.0)
                    && matches!(ln.kind, LineNodeKind::Real { forward, .. } if forward == key.1)
            })
            .collect()
    }

    /// Frontier-based matching for [`JoinStrategy::AdjacencyOnly`]: a
    /// BFS over `(line vertex, hop position)` states. Unlike the tuple
    /// pipelines it deduplicates states per position, so hub-heavy
    /// graphs cost `O(positions · |L(G)|)` instead of enumerating every
    /// walk. Correctness relies on step conditions being *positional*
    /// (each predicate looks only at the member reached at its own step
    /// end, never at walk history).
    #[allow(clippy::too_many_arguments)]
    fn eval_line_query_frontier(
        &self,
        g: &SocialGraph,
        owner: NodeId,
        path: &PathExpr,
        q: &LineQuery,
        target: Option<NodeId>,
        matched: &mut Vec<NodeId>,
        stats: &mut EvalStats,
    ) -> Result<(), EvalError> {
        let line = self.index.line();
        let cond_sites = q.step_end_positions();
        let cond_at = |pos: usize| -> Option<u16> {
            cond_sites
                .iter()
                .find(|&&(p, _)| p == pos)
                .map(|&(_, step)| step)
        };

        let mut frontier: Vec<u32> = self.leaving_with_key(owner, q.hops[0]);
        for pos in 0..q.hops.len() {
            // Apply the owning step's attribute conditions at its final
            // hop (they constrain the member the hop arrives at).
            if let Some(step_idx) = cond_at(pos) {
                let conds = &path.steps[step_idx as usize].conds;
                if !conds.is_empty() {
                    frontier.retain(|&x| {
                        let member = line.node(x).to;
                        conds.iter().all(|c| c.eval(g.node_attrs(member)))
                    });
                }
            }
            stats.candidate_tuples += frontier.len();
            if frontier.is_empty() {
                return Ok(());
            }
            if pos + 1 == q.hops.len() {
                break;
            }
            let next_key = q.hops[pos + 1];
            let mut next: Vec<u32> = Vec::new();
            for &x in &frontier {
                for &y in line.graph().successors(x) {
                    let ln = line.node(y);
                    if ln.label == Some(next_key.0)
                        && matches!(ln.kind, LineNodeKind::Real { forward, .. } if forward == next_key.1)
                    {
                        next.push(y);
                    }
                }
            }
            next.sort_unstable();
            next.dedup();
            frontier = next;
        }

        for &x in &frontier {
            let endpoint = line.node(x).to;
            if let Some(v) = target {
                if endpoint != v {
                    continue;
                }
            }
            stats.tuples_kept += 1;
            matched.push(endpoint);
        }
        Ok(())
    }
}

/// Result of a join-index evaluation.
#[derive(Clone, Debug)]
pub struct JoinOutcome {
    /// Whether the target matched.
    pub granted: bool,
    /// Matching members (complete audience only when `target = None`).
    pub matched: Vec<NodeId>,
    /// Work counters.
    pub stats: EvalStats,
}

impl AccessEngine for JoinIndexEngine {
    fn name(&self) -> &'static str {
        match self.cfg.strategy {
            JoinStrategy::PaperFaithful => "join-index/paper",
            JoinStrategy::OwnerSeeded => "join-index/seeded",
            JoinStrategy::AdjacencyOnly => "join-index/adjacency",
        }
    }

    fn check(
        &self,
        g: &SocialGraph,
        owner: NodeId,
        path: &PathExpr,
        requester: NodeId,
    ) -> Result<CheckOutcome, EvalError> {
        let out = self.evaluate(g, owner, path, Some(requester))?;
        Ok(CheckOutcome {
            granted: out.granted,
            stats: out.stats,
        })
    }

    fn audience(
        &self,
        g: &SocialGraph,
        owner: NodeId,
        path: &PathExpr,
    ) -> Result<AudienceOutcome, EvalError> {
        let out = self.evaluate(g, owner, path, None)?;
        Ok(AudienceOutcome {
            members: out.matched,
            stats: out.stats,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::online;
    use crate::path::parse_path;

    /// Alice -friend-> Bob -friend-> Carol -colleague-> Dave;
    /// Alice -friend-> Eve; Carol -parent-> Frank.
    fn sample() -> SocialGraph {
        let mut g = SocialGraph::new();
        let a = g.add_node("Alice");
        let b = g.add_node("Bob");
        let c = g.add_node("Carol");
        let d = g.add_node("Dave");
        let e = g.add_node("Eve");
        let f = g.add_node("Frank");
        g.connect(a, "friend", b);
        g.connect(b, "friend", c);
        g.connect(c, "colleague", d);
        g.connect(a, "friend", e);
        g.connect(c, "parent", f);
        g
    }

    fn engines(g: &SocialGraph) -> Vec<JoinIndexEngine> {
        [
            JoinStrategy::PaperFaithful,
            JoinStrategy::OwnerSeeded,
            JoinStrategy::AdjacencyOnly,
        ]
        .into_iter()
        .map(|strategy| {
            JoinIndexEngine::build(
                g,
                JoinEngineConfig {
                    strategy,
                    ..JoinEngineConfig::default()
                },
            )
        })
        .collect()
    }

    fn audience_names(
        g: &SocialGraph,
        engine: &JoinIndexEngine,
        owner: &str,
        path: &str,
    ) -> Vec<String> {
        let mut g2 = g.clone();
        let p = parse_path(path, g2.vocab_mut()).unwrap();
        let o = g.node_by_name(owner).unwrap();
        let out = engine.evaluate(&g2, o, &p, None).unwrap();
        out.matched
            .iter()
            .map(|&n| g.node_name(n).to_owned())
            .collect()
    }

    #[test]
    fn all_strategies_match_q1_style_queries() {
        let g = sample();
        for engine in engines(&g) {
            assert_eq!(
                audience_names(&g, &engine, "Alice", "friend+[1,2]/colleague+[1]"),
                vec!["Dave"],
                "strategy {}",
                engine.name()
            );
        }
    }

    #[test]
    fn strategies_agree_with_online_on_varied_paths() {
        let mut g = sample();
        g.set_node_attr(g.node_by_name("Dave").unwrap(), "age", 40i64);
        g.set_node_attr(g.node_by_name("Frank").unwrap(), "age", 10i64);
        let paths = [
            "friend+[1]",
            "friend+[2]",
            "friend+[1..3]",
            "friend*[1]",
            "friend-[1]",
            "friend+[1,2]/colleague+[1]",
            "friend+[2]/parent+[1]",
            "friend+[2]/colleague+[1]{age>=18}",
            "friend+[2]/parent+[1]{age>=18}",
            "colleague+[1]",
            "missing+[1]",
        ];
        let engines = engines(&g);
        for path_text in paths {
            let p = parse_path(path_text, g.vocab_mut()).unwrap();
            for owner in g.nodes() {
                let truth = online::evaluate(&g, owner, &p, None);
                for engine in &engines {
                    let got = engine.evaluate(&g, owner, &p, None).unwrap();
                    assert_eq!(
                        got.matched,
                        truth.matched,
                        "{} disagrees with online for {path_text} from {}",
                        engine.name(),
                        g.node_name(owner)
                    );
                }
            }
        }
    }

    #[test]
    fn check_grants_and_denies() {
        let mut g = sample();
        let p = parse_path("friend+[1,2]/colleague+[1]", g.vocab_mut()).unwrap();
        let alice = g.node_by_name("Alice").unwrap();
        let dave = g.node_by_name("Dave").unwrap();
        let eve = g.node_by_name("Eve").unwrap();
        for engine in engines(&g) {
            assert!(engine.check(&g, alice, &p, dave).unwrap().granted);
            assert!(!engine.check(&g, alice, &p, eve).unwrap().granted);
        }
    }

    #[test]
    fn unaugmented_index_rejects_reverse_steps() {
        let g = sample();
        let mut cfg = JoinEngineConfig::default();
        cfg.index.augment_reverse = false;
        let engine = JoinIndexEngine::build(&g, cfg);
        let mut g2 = g.clone();
        let p = parse_path("friend-[1]", g2.vocab_mut()).unwrap();
        let alice = g2.node_by_name("Alice").unwrap();
        assert_eq!(
            engine.evaluate(&g2, alice, &p, None).unwrap_err(),
            EvalError::UnsupportedDirection
        );
        // Forward-only paths still work.
        let p_fwd = parse_path("friend+[1]", g2.vocab_mut()).unwrap();
        assert!(engine.evaluate(&g2, alice, &p_fwd, None).is_ok());
    }

    #[test]
    fn tuple_overflow_is_reported() {
        // A clique-ish graph with a tiny tuple budget must overflow.
        let mut g = SocialGraph::new();
        let nodes: Vec<_> = (0..6).map(|i| g.add_node(&format!("u{i}"))).collect();
        let f = g.intern_label("friend");
        for &x in &nodes {
            for &y in &nodes {
                if x != y {
                    g.add_edge(x, y, f);
                }
            }
        }
        let cfg = JoinEngineConfig {
            max_tuples: 10,
            strategy: JoinStrategy::PaperFaithful,
            ..JoinEngineConfig::default()
        };
        let engine = JoinIndexEngine::build(&g, cfg);
        let p = parse_path("friend+[3]", g.vocab_mut()).unwrap();
        assert!(matches!(
            engine.evaluate(&g, nodes[0], &p, None),
            Err(EvalError::TupleOverflow { limit: 10 })
        ));
    }

    #[test]
    fn stats_report_candidates_and_survivors() {
        let mut g = sample();
        let p = parse_path("friend+[1,2]/colleague+[1]", g.vocab_mut()).unwrap();
        let alice = g.node_by_name("Alice").unwrap();
        let engine = JoinIndexEngine::build(
            &g,
            JoinEngineConfig {
                strategy: JoinStrategy::PaperFaithful,
                ..JoinEngineConfig::default()
            },
        );
        let out = engine.evaluate(&g, alice, &p, None).unwrap();
        assert_eq!(out.stats.line_queries, 2);
        assert!(out.stats.candidate_tuples >= out.stats.tuples_kept);
        assert!(out.stats.tuples_kept >= 1);
    }

    #[test]
    fn empty_path_matches_owner() {
        let g = sample();
        let alice = g.node_by_name("Alice").unwrap();
        let p = PathExpr::new(vec![]);
        for engine in engines(&g) {
            let out = engine.evaluate(&g, alice, &p, Some(alice)).unwrap();
            assert!(out.granted);
        }
    }

    #[test]
    fn truncation_flag_propagates() {
        let mut g = sample();
        let p = parse_path("friend+[1..]", g.vocab_mut()).unwrap();
        let alice = g.node_by_name("Alice").unwrap();
        let engine = &engines(&g)[1];
        let out = engine.evaluate(&g, alice, &p, None).unwrap();
        assert!(out.stats.truncated);
    }
}
