//! Error types of the access-control core.

use std::fmt;

/// Position-annotated syntax error from the path-expression parser.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the source text.
    pub pos: usize,
    /// What went wrong.
    pub message: String,
    /// The offending source text (for caret rendering).
    pub source: String,
}

impl ParseError {
    pub(crate) fn new(pos: usize, message: impl Into<String>, source: &str) -> Self {
        ParseError {
            pos,
            message: message.into(),
            source: source.to_owned(),
        }
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "path syntax error at byte {}: {}",
            self.pos, self.message
        )?;
        writeln!(f, "  {}", self.source)?;
        write!(f, "  {}^", " ".repeat(self.pos.min(self.source.len())))
    }
}

impl std::error::Error for ParseError {}

/// Errors raised while evaluating access conditions.
#[derive(Clone, Debug, PartialEq)]
pub enum EvalError {
    /// Path parsing failed (when evaluating textual rules).
    Parse(ParseError),
    /// A node id in a rule does not exist in the graph.
    Graph(socialreach_graph::GraphError),
    /// Depth expansion produced more line queries than the configured
    /// limit (`max_line_queries`); §3.1's transformation is exponential
    /// in `∗`-direction steps and wide depth sets.
    PlanOverflow {
        /// Number of line queries the plan would have needed.
        needed: usize,
        /// The configured cap.
        limit: usize,
    },
    /// The candidate tuple set outgrew the configured limit
    /// (`max_tuples`). The paper's full-table join can explode on dense
    /// graphs; benchmarks P5 quantifies this.
    TupleOverflow {
        /// The configured cap.
        limit: usize,
    },
    /// The join index was built without backward edge occurrences but
    /// the policy uses `−` or `∗` steps.
    UnsupportedDirection,
    /// The policy references a resource that was never registered.
    UnknownResource(u64),
    /// A networked deployment could not complete the read against its
    /// shard fleet (transport failure, corrupt frame, protocol
    /// violation, or a shard's typed refusal) even after the router's
    /// revive-and-retry pass. The read produced **no** decision — a
    /// transport fault is never converted into a grant or a deny.
    Remote(crate::remote::RemoteError),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Parse(e) => write!(f, "{e}"),
            EvalError::Graph(e) => write!(f, "{e}"),
            EvalError::PlanOverflow { needed, limit } => write!(
                f,
                "line-query expansion needs {needed} queries, exceeding the limit of {limit}"
            ),
            EvalError::TupleOverflow { limit } => {
                write!(f, "candidate tuple set exceeded the limit of {limit}")
            }
            EvalError::UnsupportedDirection => write!(
                f,
                "policy uses incoming ('-') or undirected ('*') steps but the join index \
                 was built with augment_reverse = false"
            ),
            EvalError::UnknownResource(r) => write!(f, "unknown resource id {r}"),
            EvalError::Remote(e) => write!(f, "remote shard fleet: {e}"),
        }
    }
}

impl std::error::Error for EvalError {}

impl From<ParseError> for EvalError {
    fn from(e: ParseError) -> Self {
        EvalError::Parse(e)
    }
}

impl From<socialreach_graph::GraphError> for EvalError {
    fn from(e: socialreach_graph::GraphError) -> Self {
        EvalError::Graph(e)
    }
}

impl From<crate::remote::RemoteError> for EvalError {
    fn from(e: crate::remote::RemoteError) -> Self {
        EvalError::Remote(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_error_renders_caret() {
        let e = ParseError::new(3, "unexpected token", "abc!def");
        let s = e.to_string();
        assert!(s.contains("byte 3"));
        assert!(s.contains("abc!def"));
        assert!(s.ends_with("   ^"));
    }

    #[test]
    fn eval_error_messages() {
        let e = EvalError::PlanOverflow {
            needed: 9000,
            limit: 4096,
        };
        assert!(e.to_string().contains("9000"));
        assert!(EvalError::UnsupportedDirection
            .to_string()
            .contains("augment_reverse"));
        assert!(EvalError::UnknownResource(7).to_string().contains('7'));
    }
}
