//! Policy query front-end and shared-prefix plan compiler.
//!
//! Two layers on top of the path-expression core:
//!
//! * **Front-end** ([`parse_query`]): an openCypher-flavored query
//!   language — `MATCH (owner)-[:friend*1..2]->(v {age >= 18})` —
//!   that lowers to the same [`PathExpr`](crate::path::PathExpr) AST
//!   the classic syntax (`friend+[1..2]{age>=18}`) parses to, with the
//!   same position-annotated caret errors. [`parse_policy`] accepts
//!   either syntax, so `add_rule` and the CLI take both;
//!   [`render_query`] prints a path back in query syntax.
//! * **Plan compiler** ([`plan::BundlePlan`]): compiles a bundle of
//!   conditions into one shared-prefix trie so the masked multi-source
//!   BFS ([`engine`]) walks each shared prefix **once** and forks
//!   64-bit condition masks only where the paths diverge — replacing
//!   the identical-expression grouping key in the single-graph,
//!   sharded and networked batch read paths.
//!
//! Ad-hoc audience queries enter through
//! [`AccessService::query_audience`](crate::service::AccessService::query_audience):
//!
//! ```
//! use socialreach_core::service::{AccessService, MutateService, Deployment};
//!
//! let mut svc = Deployment::online().build();
//! let alice = svc.add_user("alice");
//! let bob = svc.add_user("bob");
//! let carol = svc.add_user("carol");
//! svc.add_relationship(alice, "friend", bob);
//! svc.add_relationship(bob, "friend", carol);
//!
//! // Friends-of-friends of alice, in either syntax:
//! let a = svc.query_audience(alice, "MATCH (owner)-[:friend*1..2]->(v)").unwrap();
//! let b = svc.query_audience(alice, "friend+[1..2]").unwrap();
//! assert_eq!(a, vec![bob, carol]);
//! assert_eq!(a, b);
//! ```
//!
//! Queries are **read-only**: they are parsed against a clone of the
//! deployment's vocabulary, and a query that mentions a relationship
//! type or attribute key the graph has never seen simply has an empty
//! audience (an unknown label can head no edge, and a predicate on an
//! unknown attribute fails closed — in both cases no step can
//! complete), instead of growing the shared vocabulary as rule
//! registration does.

pub mod engine;
pub mod parse;
pub mod plan;

pub use engine::{evaluate_plan_audiences, evaluate_plan_batch_seeded, PlanBatchState};
pub use parse::{looks_like_query, parse_query, render_query};
pub use plan::{BundlePlan, ChunkMasks, PlanNode};

use crate::error::{EvalError, ParseError};
use crate::path::{parse_path, PathExpr};
use socialreach_graph::Vocabulary;

/// Parses a policy/query in **either** syntax: texts that start with
/// the `MATCH` keyword and an opening `(` use the query grammar
/// ([`parse_query`]), everything else the classic path grammar
/// ([`parse_path`]). The dispatch is unambiguous — no path expression
/// starts with `match (` (a relationship type named `match` is
/// followed by `+`/`-`/`*`/`[`/`{`/`/` or the end, never `(`).
pub fn parse_policy(text: &str, vocab: &mut Vocabulary) -> Result<PathExpr, ParseError> {
    if looks_like_query(text) {
        parse_query(text, vocab)
    } else {
        parse_path(text, vocab)
    }
}

/// Parses ad-hoc query texts **read-only** against `vocab`: each text
/// may use either syntax, nothing is interned into the caller's
/// vocabulary, and a query that mentions a label or attribute the
/// vocabulary does not know comes back as `None` — unsatisfiable,
/// because every step must traverse at least one edge of its (never
/// seen) label or pass a predicate on a (never set) attribute, so its
/// audience is empty. Backends must not evaluate `None` entries: their
/// interned ids exceed the real vocabulary.
pub fn parse_queries_readonly(
    texts: &[&str],
    vocab: &Vocabulary,
) -> Result<Vec<Option<PathExpr>>, EvalError> {
    let mut scratch = vocab.clone();
    let labels = vocab.num_labels();
    let attrs = vocab.num_attrs();
    let mut out = Vec::with_capacity(texts.len());
    for text in texts {
        let path = parse_policy(text, &mut scratch)?;
        let grew = scratch.num_labels() != labels || scratch.num_attrs() != attrs;
        out.push(if grew {
            // Unknown vocabulary: provably empty audience. Reset the
            // scratch so one unknown query cannot mask another's.
            scratch = vocab.clone();
            None
        } else {
            Some(path)
        });
    }
    Ok(out)
}

/// True when the `SOCIALREACH_BUNDLE_PLAN=grouped` lever forces the
/// batched read paths back onto the identical-expression grouping key
/// (the shared-prefix trie's benchmark baseline and differential
/// oracle). Any other value — including unset — serves the trie plan.
pub fn grouped_plan_forced() -> bool {
    std::env::var("SOCIALREACH_BUNDLE_PLAN")
        .map(|v| v.eq_ignore_ascii_case("grouped"))
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_policy_dispatches_on_syntax() {
        let mut vocab = Vocabulary::new();
        let classic = parse_policy("friend+[1..2]/colleague+[1]", &mut vocab).unwrap();
        let cypher = parse_policy(
            "MATCH (o)-[:friend*1..2]->(a)-[:colleague]->(v)",
            &mut vocab,
        )
        .unwrap();
        assert_eq!(classic, cypher);
        // A relationship type named `match` still parses as a path.
        let p = parse_policy("match+[1]", &mut vocab).unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(vocab.label_name(p.steps[0].label), "match");
    }

    #[test]
    fn parse_policy_propagates_caret_errors_from_both_grammars() {
        let mut vocab = Vocabulary::new();
        let e = parse_policy("friend+[0]", &mut vocab).unwrap_err();
        assert!(e.to_string().contains("start at 1"));
        let e = parse_policy("MATCH (o)-[friend]->(v)", &mut vocab).unwrap_err();
        assert!(e.to_string().contains("':' before the relationship type"));
    }

    #[test]
    fn readonly_parsing_never_grows_the_vocabulary() {
        let mut vocab = Vocabulary::new();
        vocab.intern_label("friend");
        vocab.intern_attr("age");
        let before = (vocab.num_labels(), vocab.num_attrs());
        let parsed = parse_queries_readonly(
            &[
                "MATCH (o)-[:friend]->(v {age > 18})",
                "MATCH (o)-[:stranger]->(v)", // unknown label
                "friend+[1]{height>170}",     // unknown attr
                "friend+[1..2]",
            ],
            &vocab,
        )
        .unwrap();
        assert_eq!((vocab.num_labels(), vocab.num_attrs()), before);
        assert!(parsed[0].is_some());
        assert!(parsed[1].is_none(), "unknown label is unsatisfiable");
        assert!(parsed[2].is_none(), "unknown attr is unsatisfiable");
        assert!(
            parsed[3].is_some(),
            "a prior unknown must not poison later queries"
        );
    }

    #[test]
    fn readonly_parsing_surfaces_syntax_errors() {
        let vocab = Vocabulary::new();
        let err = parse_queries_readonly(&["MATCH (o)-[:x*0]->(v)"], &vocab).unwrap_err();
        assert!(matches!(err, EvalError::Parse(_)));
    }
}
