//! Recursive-descent parser for the openCypher-flavored query syntax.
//!
//! Grammar (whitespace is permitted between tokens; `MATCH` is
//! case-insensitive):
//!
//! ```text
//! query := 'MATCH' node ( rel node )*
//! node  := '(' ident? props? ')'
//! props := '{' prop ( ',' prop )* '}'
//! prop  := ident ( ':' value | op value )
//! rel   := '-[' ':' label hops? ']->'     -- outgoing  ('+')
//!        | '<-[' ':' label hops? ']-'     -- incoming  ('-')
//!        | '-[' ':' label hops? ']-'      -- undirected ('*')
//! hops  := '*' ( INT ( '..' INT? )? | '..' INT )?
//! op    := '=' | '==' | '!=' | '<' | '<=' | '>' | '>=' | '~'
//! value := INT | FLOAT | 'true' | 'false' | '"…"' | ident
//! ident := [A-Za-z_][A-Za-z0-9_]*
//! ```
//!
//! `MATCH (owner)-[:friend*1..2]->(v {age >= 18})` lowers to the path
//! expression `friend+[1..2]{age>=18}` — each relationship pattern
//! becomes one [`Step`] and the properties of the node it *reaches*
//! become that step's attribute conditions. The first node is the
//! owner anchor; its variable name is decorative and properties on it
//! are rejected (the owner is given by the request, not matched).
//! `MATCH (owner)` alone is the empty path, whose audience is the
//! owner themself.
//!
//! Hop counts follow openCypher: no star means one hop, `*` alone
//! means `1..` (unbounded), `*3` exactly three, `*1..2` a range,
//! `*2..` an open range, and `*..3` is `1..3`. Node labels
//! (`(:colleague)`) are rejected with a caret error — members are
//! untyped in the paper's model; constrain them with `{key op value}`
//! properties instead.

use crate::error::ParseError;
use crate::path::ast::{AttrPredicate, CmpOp, DepthSet, PathExpr, Step};
use socialreach_graph::{AttrValue, Direction, Vocabulary};

/// Parses an openCypher-flavored query, interning labels/keys into
/// `vocab`. See the module docs for the grammar.
pub fn parse_query(text: &str, vocab: &mut Vocabulary) -> Result<PathExpr, ParseError> {
    let mut p = Parser {
        src: text,
        bytes: text.as_bytes(),
        pos: 0,
        anchor_props_pos: 0,
    };
    p.skip_ws();
    if p.at_end() {
        return Err(p.err("empty query"));
    }
    if !p.keyword("match") {
        return Err(p.err("expected the MATCH keyword"));
    }
    p.skip_ws();
    // Owner anchor: name only, no properties.
    let anchor_props = p.node(vocab)?;
    if !anchor_props.is_empty() {
        return Err(ParseError::new(
            p.anchor_props_pos,
            "properties on the owner anchor are not supported: the owner is \
             given by the request, not matched",
            p.src,
        ));
    }
    let mut steps = Vec::new();
    loop {
        p.skip_ws();
        if p.at_end() {
            break;
        }
        let (label_name, dir, depths) = p.rel()?;
        let label = vocab.intern_label(label_name);
        p.skip_ws();
        let conds = p.node(vocab)?;
        steps.push(Step {
            label,
            dir,
            depths,
            conds,
        });
    }
    Ok(PathExpr::new(steps))
}

/// Does `text` look like the query syntax rather than a classic path
/// expression? True when it starts (after whitespace) with the
/// case-insensitive keyword `MATCH` followed by an opening `(` — the
/// one shape no path expression can take (`match` alone is a valid
/// relationship type).
pub fn looks_like_query(text: &str) -> bool {
    let rest = text.trim_start();
    let Some(after) = rest
        .get(..5)
        .filter(|kw| kw.eq_ignore_ascii_case("match"))
        .map(|_| &rest[5..])
    else {
        return false;
    };
    after.trim_start().starts_with('(')
}

struct Parser<'a> {
    src: &'a str,
    bytes: &'a [u8],
    pos: usize,
    /// Where the anchor's property block started (for its error caret).
    anchor_props_pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: impl Into<String>) -> ParseError {
        ParseError::new(self.pos, msg, self.src)
    }

    fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(
            self.peek(),
            Some(b' ') | Some(b'\t') | Some(b'\n') | Some(b'\r')
        ) {
            self.pos += 1;
        }
    }

    /// Consumes `word` case-insensitively if it is the next token.
    fn keyword(&mut self, word: &str) -> bool {
        let end = self.pos + word.len();
        let matches = self
            .src
            .get(self.pos..end)
            .is_some_and(|s| s.eq_ignore_ascii_case(word));
        // The keyword must not run into a longer identifier (`matches`).
        let bounded =
            !matches!(self.bytes.get(end), Some(c) if c.is_ascii_alphanumeric() || *c == b'_');
        if matches && bounded {
            self.pos = end;
            true
        } else {
            false
        }
    }

    fn ident(&mut self) -> Result<&'a str, ParseError> {
        let start = self.pos;
        match self.peek() {
            Some(c) if c.is_ascii_alphabetic() || c == b'_' => self.pos += 1,
            _ => return Err(self.err("expected an identifier")),
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_alphanumeric() || c == b'_') {
            self.pos += 1;
        }
        Ok(&self.src[start..self.pos])
    }

    fn integer(&mut self) -> Result<u32, ParseError> {
        let start = self.pos;
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if start == self.pos {
            return Err(self.err("expected a number"));
        }
        self.src[start..self.pos]
            .parse::<u32>()
            .map_err(|_| ParseError::new(start, "depth does not fit in u32", self.src))
    }

    fn expect(&mut self, c: u8) -> Result<(), ParseError> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected '{}'", c as char)))
        }
    }

    /// Parses a node pattern `( name? props? )`, returning its
    /// property predicates.
    fn node(&mut self, vocab: &mut Vocabulary) -> Result<Vec<AttrPredicate>, ParseError> {
        self.expect(b'(').map_err(|mut e| {
            e.message = "expected '(' to open a node pattern".into();
            e
        })?;
        self.skip_ws();
        if self.peek() == Some(b':') {
            return Err(self.err(
                "node labels are not supported: members are untyped — constrain \
                 them with {key op value} properties instead",
            ));
        }
        if matches!(self.peek(), Some(c) if c.is_ascii_alphabetic() || c == b'_') {
            self.ident()?; // variable name, decorative
            self.skip_ws();
        }
        let mut conds = Vec::new();
        if self.peek() == Some(b'{') {
            self.anchor_props_pos = self.pos;
            self.pos += 1;
            loop {
                self.skip_ws();
                conds.push(self.prop(vocab)?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        break;
                    }
                    _ => return Err(self.err("expected ',' or '}' in property list")),
                }
            }
            self.skip_ws();
        }
        self.expect(b')').map_err(|mut e| {
            e.message = "expected ')' to close the node pattern".into();
            e
        })?;
        Ok(conds)
    }

    /// Parses one property predicate `key (':' | op) value`. The
    /// openCypher `key: value` form is sugar for equality.
    fn prop(&mut self, vocab: &mut Vocabulary) -> Result<AttrPredicate, ParseError> {
        let key_name = self.ident().map_err(|mut e| {
            e.message = "expected a property name".into();
            e
        })?;
        let key = vocab.intern_attr(key_name);
        self.skip_ws();
        let op = match (self.peek(), self.bytes.get(self.pos + 1).copied()) {
            (Some(b':'), _) => {
                self.pos += 1;
                CmpOp::Eq
            }
            (Some(b'='), Some(b'=')) => {
                self.pos += 2;
                CmpOp::Eq
            }
            (Some(b'='), _) => {
                self.pos += 1;
                CmpOp::Eq
            }
            (Some(b'!'), Some(b'=')) => {
                self.pos += 2;
                CmpOp::Ne
            }
            (Some(b'<'), Some(b'=')) => {
                self.pos += 2;
                CmpOp::Le
            }
            (Some(b'<'), _) => {
                self.pos += 1;
                CmpOp::Lt
            }
            (Some(b'>'), Some(b'=')) => {
                self.pos += 2;
                CmpOp::Ge
            }
            (Some(b'>'), _) => {
                self.pos += 1;
                CmpOp::Gt
            }
            (Some(b'~'), _) => {
                self.pos += 1;
                CmpOp::Contains
            }
            _ => return Err(self.err("expected ':' or a comparison operator")),
        };
        self.skip_ws();
        let value = self.value()?;
        Ok(AttrPredicate { key, op, value })
    }

    /// Parses a relationship pattern, returning the label name, the
    /// lowered direction and the depth set.
    fn rel(&mut self) -> Result<(&'a str, Direction, DepthSet), ParseError> {
        let incoming = match self.peek() {
            Some(b'<') => {
                self.pos += 1;
                self.expect(b'-')?;
                true
            }
            Some(b'-') => {
                self.pos += 1;
                false
            }
            _ => return Err(self.err("expected a relationship pattern or end of query")),
        };
        self.expect(b'[').map_err(|mut e| {
            e.message = "expected '[' to open the relationship pattern".into();
            e
        })?;
        self.skip_ws();
        self.expect(b':').map_err(|mut e| {
            e.message = "expected ':' before the relationship type".into();
            e
        })?;
        self.skip_ws();
        let label = self.ident().map_err(|mut e| {
            e.message = "expected a relationship type".into();
            e
        })?;
        self.skip_ws();
        let depths = if self.peek() == Some(b'*') {
            self.pos += 1;
            self.hops()?
        } else {
            DepthSet::default()
        };
        self.skip_ws();
        self.expect(b']').map_err(|mut e| {
            e.message = "expected ']' to close the relationship pattern".into();
            e
        })?;
        self.expect(b'-')?;
        let dir = if incoming {
            if self.peek() == Some(b'>') {
                return Err(self.err(
                    "a relationship cannot point both ways: \
                                     use -[:r]- for either direction",
                ));
            }
            Direction::In
        } else if self.peek() == Some(b'>') {
            self.pos += 1;
            Direction::Out
        } else {
            Direction::Both
        };
        Ok((label, dir, depths))
    }

    /// Parses the hop spec after `*`: nothing (`1..`), `n`, `n..`,
    /// `n..m`, or `..m` (= `1..m`).
    fn hops(&mut self) -> Result<DepthSet, ParseError> {
        self.skip_ws();
        match self.peek() {
            Some(c) if c.is_ascii_digit() => {
                let at = self.pos;
                let lo = self.integer()?;
                if lo == 0 {
                    return Err(ParseError::new(at, "hop counts start at 1", self.src));
                }
                self.skip_ws();
                if self.peek() == Some(b'.') {
                    self.expect(b'.')?;
                    self.expect(b'.').map_err(|mut e| {
                        e.message = "expected '..' in a hop range".into();
                        e
                    })?;
                    self.skip_ws();
                    if matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                        let hi = self.integer()?;
                        if hi < lo {
                            return Err(self.err(format!("empty hop range *{lo}..{hi}")));
                        }
                        Ok(DepthSet::range(lo, hi))
                    } else {
                        Ok(DepthSet::at_least(lo))
                    }
                } else {
                    Ok(DepthSet::single(lo))
                }
            }
            Some(b'.') => {
                self.expect(b'.')?;
                self.expect(b'.').map_err(|mut e| {
                    e.message = "expected '..' in a hop range".into();
                    e
                })?;
                self.skip_ws();
                let hi = self.integer().map_err(|mut e| {
                    e.message = "expected an upper hop bound after '..'".into();
                    e
                })?;
                if hi == 0 {
                    return Err(self.err("hop counts start at 1"));
                }
                Ok(DepthSet::range(1, hi))
            }
            // Bare '*': any number of hops.
            _ => Ok(DepthSet::at_least(1)),
        }
    }

    /// Literal values share the path parser's shapes.
    fn value(&mut self) -> Result<AttrValue, ParseError> {
        match self.peek() {
            Some(b'"') => {
                self.pos += 1;
                let start = self.pos;
                while let Some(c) = self.peek() {
                    if c == b'"' {
                        let s = &self.src[start..self.pos];
                        self.pos += 1;
                        return Ok(AttrValue::Text(s.to_owned()));
                    }
                    self.pos += 1;
                }
                Err(self.err("unterminated string literal"))
            }
            Some(c) if c.is_ascii_digit() || c == b'-' => {
                let start = self.pos;
                if c == b'-' {
                    self.pos += 1;
                }
                while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                    self.pos += 1;
                }
                let mut is_float = false;
                if self.peek() == Some(b'.')
                    && matches!(self.bytes.get(self.pos + 1), Some(c) if c.is_ascii_digit())
                {
                    is_float = true;
                    self.pos += 1;
                    while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                        self.pos += 1;
                    }
                }
                let text = &self.src[start..self.pos];
                if is_float {
                    text.parse::<f64>()
                        .map(AttrValue::Float)
                        .map_err(|_| ParseError::new(start, "invalid float literal", self.src))
                } else {
                    text.parse::<i64>()
                        .map(AttrValue::Int)
                        .map_err(|_| ParseError::new(start, "invalid integer literal", self.src))
                }
            }
            Some(c) if c.is_ascii_alphabetic() || c == b'_' => {
                let word = self.ident()?;
                Ok(match word {
                    "true" => AttrValue::Bool(true),
                    "false" => AttrValue::Bool(false),
                    other => AttrValue::Text(other.to_owned()),
                })
            }
            _ => Err(self.err("expected a literal value")),
        }
    }
}

/// Renders a path expression back into the query syntax, or `None`
/// when the path is inexpressible in it (a step whose depth set has
/// holes, e.g. `[1,4..5]` — the `*lo..hi` hop syntax covers only a
/// single interval).
pub fn render_query(path: &PathExpr, vocab: &Vocabulary) -> Option<String> {
    use std::fmt::Write as _;
    let mut out = String::from("MATCH (owner)");
    for (i, s) in path.steps.iter().enumerate() {
        let ivals = s.depths.intervals();
        if ivals.len() != 1 {
            return None;
        }
        let hops = match ivals[0] {
            (1, Some(1)) => String::new(),
            (d, Some(h)) if h == d => format!("*{d}"),
            (1, None) => "*".to_owned(),
            (lo, None) => format!("*{lo}.."),
            (lo, Some(hi)) => format!("*{lo}..{hi}"),
        };
        let (open, close) = match s.dir {
            Direction::Out => ("-[", "]->"),
            Direction::In => ("<-[", "]-"),
            Direction::Both => ("-[", "]-"),
        };
        let _ = write!(out, "{open}:{}{hops}{close}", vocab.label_name(s.label));
        let _ = write!(out, "(u{}", i + 1);
        if !s.conds.is_empty() {
            out.push_str(" {");
            for (j, c) in s.conds.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let op = match c.op {
                    CmpOp::Eq => ":".to_owned(),
                    other => format!(" {}", other.symbol()),
                };
                let _ = write!(
                    out,
                    "{}{op} {}",
                    vocab.attr_name(c.key),
                    crate::path::ast::render_value(&c.value)
                );
            }
            out.push('}');
        }
        out.push(')');
    }
    Some(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::parse_path;

    fn parse(text: &str) -> (PathExpr, Vocabulary) {
        let mut vocab = Vocabulary::new();
        let p = parse_query(text, &mut vocab).unwrap_or_else(|e| panic!("{e}"));
        (p, vocab)
    }

    #[test]
    fn lowers_the_issue_example() {
        let (p, vocab) = parse("MATCH (owner)-[:friend*1..2]->(v {age >= 18})");
        assert_eq!(p.len(), 1);
        assert_eq!(vocab.label_name(p.steps[0].label), "friend");
        assert_eq!(p.steps[0].dir, Direction::Out);
        assert_eq!(p.steps[0].depths, DepthSet::range(1, 2));
        assert_eq!(p.steps[0].conds.len(), 1);
        assert_eq!(vocab.attr_name(p.steps[0].conds[0].key), "age");
        assert_eq!(p.steps[0].conds[0].op, CmpOp::Ge);
        assert_eq!(p.steps[0].conds[0].value, AttrValue::Int(18));
    }

    #[test]
    fn query_and_path_syntax_lower_identically() {
        let cases = [
            (
                "MATCH (owner)-[:friend*1..2]->(a)-[:colleague]-(b {age >= 18})",
                "friend+[1..2]/colleague*[1]{age>=18}",
            ),
            ("MATCH (o)<-[:boss]-(v)", "boss-[1]"),
            ("MATCH (o)-[:friend*]-(v)", "friend*[1..]"),
            ("MATCH (o)-[:friend*3]->(v)", "friend+[3]"),
            ("MATCH (o)-[:friend*2..]->(v)", "friend+[2..]"),
            ("MATCH (o)-[:friend*..3]->(v)", "friend+[1..3]"),
            (
                r#"MATCH (o)-[:works]-(v {dept: "eng", senior: true})"#,
                r#"works*[1]{dept="eng",senior=true}"#,
            ),
        ];
        for (query, path) in cases {
            let mut vq = Vocabulary::new();
            let from_query = parse_query(query, &mut vq).unwrap_or_else(|e| panic!("{e}"));
            let mut vp = Vocabulary::new();
            let from_path = parse_path(path, &mut vp).unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(from_query, from_path, "{query} should lower to {path}");
        }
    }

    #[test]
    fn match_keyword_is_case_insensitive_and_anchor_named_freely() {
        let (p, _) = parse("match (alice)-[:friend]->(f)");
        assert_eq!(p.len(), 1);
        let (p, _) = parse("Match(owner)");
        assert!(p.is_empty(), "MATCH (owner) alone is the empty path");
    }

    #[test]
    fn anonymous_and_unnamed_nodes_accepted() {
        let (p, _) = parse("MATCH (o)-[:friend]->()-[:colleague]->( {age > 30} )");
        assert_eq!(p.len(), 2);
        assert_eq!(p.steps[1].conds.len(), 1);
        assert!(p.steps[0].conds.is_empty());
    }

    #[test]
    fn colon_property_is_equality_sugar() {
        let (p, _) = parse(r#"MATCH (o)-[:friend]-(v {city: "lyon"})"#);
        assert_eq!(p.steps[0].conds[0].op, CmpOp::Eq);
        assert_eq!(p.steps[0].conds[0].value, AttrValue::Text("lyon".into()));
    }

    #[test]
    fn rejects_malformed_queries_with_caret_errors() {
        let cases = [
            ("", "empty query"),
            ("friend+[1]", "expected the MATCH keyword"),
            ("MATCH owner", "expected '(' to open a node pattern"),
            ("MATCH (owner {age: 3})-[:friend]->(v)", "owner anchor"),
            (
                "MATCH (o)-[:friend]->(:colleague)",
                "node labels are not supported",
            ),
            (
                "MATCH (o)-[friend]->(v)",
                "expected ':' before the relationship type",
            ),
            ("MATCH (o)-[:friend*0]->(v)", "hop counts start at 1"),
            ("MATCH (o)-[:friend*3..2]->(v)", "empty hop range"),
            ("MATCH (o)-[:friend*..]->(v)", "upper hop bound"),
            ("MATCH (o)<-[:friend]->(v)", "cannot point both ways"),
            (
                "MATCH (o)-[:friend]->(v",
                "expected ')' to close the node pattern",
            ),
            (
                "MATCH (o)-[:friend->(v)",
                "expected ']' to close the relationship pattern",
            ),
            (
                "MATCH (o)-[:friend]->(v {age})",
                "expected ':' or a comparison operator",
            ),
            (
                "MATCH (o)-[:friend]->(v) nonsense",
                "relationship pattern or end of query",
            ),
        ];
        for (text, needle) in cases {
            let mut vocab = Vocabulary::new();
            let err = parse_query(text, &mut vocab).expect_err(text);
            let msg = err.to_string();
            assert!(
                msg.contains(needle),
                "error for {text:?} should mention {needle:?}, got: {msg}"
            );
            assert!(msg.contains('^'), "caret missing for {text:?}: {msg}");
        }
    }

    #[test]
    fn looks_like_query_dispatch() {
        assert!(looks_like_query("MATCH (owner)"));
        assert!(looks_like_query("  match ( o )-[:friend]->(v)"));
        assert!(looks_like_query("Match(o)"));
        assert!(!looks_like_query("friend+[1,2]/colleague+[1]"));
        assert!(!looks_like_query("match")); // a relationship type named `match`
        assert!(!looks_like_query("match+[1]"));
        assert!(!looks_like_query("matches (o)")); // longer identifier
        assert!(!looks_like_query("match_this/friend"));
    }

    #[test]
    fn render_round_trips_and_reports_inexpressible() {
        let texts = [
            "MATCH (owner)-[:friend*1..2]->(u1)-[:colleague]-(u2 {age >= 18})",
            "MATCH (owner)<-[:boss]-(u1)",
            "MATCH (owner)-[:friend*]-(u1)-[:friend*2..]->(u2)",
            r#"MATCH (owner)-[:works]-(u1 {dept: "eng", trust > 0.5, senior: true})"#,
            "MATCH (owner)",
        ];
        for text in texts {
            let mut vocab = Vocabulary::new();
            let p1 = parse_query(text, &mut vocab).unwrap_or_else(|e| panic!("{e}"));
            let rendered = render_query(&p1, &vocab).expect(text);
            let p2 = parse_query(&rendered, &mut vocab).unwrap_or_else(|e| panic!("{e}"));
            assert_eq!(p1, p2, "round trip failed: {text} -> {rendered}");
        }
        // Depth sets with holes have no hop syntax.
        let mut vocab = Vocabulary::new();
        let p = parse_path("friend+[1,4..5]", &mut vocab).unwrap();
        assert_eq!(render_query(&p, &vocab), None);
    }
}
