//! Masked seeded BFS over a shared-prefix plan.
//!
//! The per-expression seeded engine ([`crate::online`]) runs one
//! product automaton — the linear chain of a single path — carrying 64
//! condition bits that all share that chain. This module generalizes
//! the automaton to a [`BundlePlan`] trie: the state space is
//! `(member, plan node, depth within node)`, completion at a node
//! ε-forks into the node's *children* with the condition masks
//! intersected against each child's [`ChunkMasks::node_mask`], and a
//! member is reported into a condition's audience when its bit is in
//! the completing node's `accept_mask`. Shared prefixes are therefore
//! walked once for every condition that spells them, and the engine
//! degenerates to exactly the per-expression engine when no two
//! conditions share a prefix.
//!
//! The mechanics mirror the linear engine state for state: the same
//! dense flat-array variant with the same size caps, the same sparse
//! fallback, the same round persistence (`seen`/`pending` masks make
//! re-seeding idempotent, so the sharded fixpoint re-enters shards
//! cheaply), the same `matched_mask` report deduplication, and the
//! same watched-member export contract — exports carry the **plan
//! node id** in the slot where the linear engine carries the step
//! index, which is why trie node ids share the `u16` budget of
//! [`MaskedSeedState`]. Parent tracking and early-exit are
//! deliberately absent: targeted `check`/`explain` and witness
//! reconstruction stay on the per-expression engine.

use crate::online::{MaskedSeedState, SeededBatchOutcome, MAX_FLAT_LAYERS, MAX_FLAT_STATES};
use crate::query::plan::{BundlePlan, ChunkMasks, PlanNode};
use socialreach_graph::{CsrSnapshot, Direction, NodeId, SocialGraph};
use std::collections::HashMap;

/// Product state of the sparse variant: `(member, plan node, depth)`.
type PState = (u32, u16, u32);

/// Everything about a `(node, depth)` layer that is constant across
/// its `|V|` states (the plan analog of the linear engine's layer
/// table).
#[derive(Clone, Copy, Debug)]
struct PlanLayerInfo {
    /// Plan node this layer belongs to.
    node: u16,
    /// `d >= 1 && d ∈ I_node`: states here may complete the node.
    completes: bool,
    /// States here may take another edge of the node's label.
    expands: bool,
    /// Layer id reached by that edge (`min(d+1, sat)` of the node).
    next_layer: u32,
}

/// Round-persistent bookkeeping of the plan engine — one value serves
/// one `(graph, snapshot, plan, ≤64 conditions)` chunk across
/// arbitrarily many seeded runs, exactly like
/// [`crate::online::SeededBatchState`] serves one path.
pub struct PlanBatchState {
    states_expanded: usize,
    inner: PlanInner,
}

enum PlanInner {
    Flat(FlatPlanBatch),
    Sparse(SparsePlanBatch),
}

/// Dense-array variant: masks indexed by `layer · |V| + member`.
struct FlatPlanBatch {
    v_count: u32,
    /// First layer id of each plan node.
    bases: Vec<u32>,
    /// Saturation depth of each plan node's step.
    sats: Vec<u32>,
    layers: Vec<PlanLayerInfo>,
    seen: Vec<u64>,
    pending: Vec<u64>,
    matched_mask: Vec<u64>,
    frontier: Vec<u64>,
    next: Vec<u64>,
}

/// Sparse mirror for degenerate product spaces, keyed by
/// `(member, node, depth)`.
struct SparsePlanBatch {
    sats: Vec<u32>,
    seen: HashMap<PState, u64>,
    pending: HashMap<PState, u64>,
    matched_mask: HashMap<u32, u64>,
    frontier: Vec<PState>,
    next: Vec<PState>,
}

/// `(v_count, layer_count)` when the dense product space of the plan
/// over `snap` is reasonable (same caps as the linear engine).
fn flat_plan_dimensions(snap: &CsrSnapshot, nodes: &[PlanNode]) -> Option<(u32, u64)> {
    let num_nodes = snap.num_nodes() as u64;
    let layer_count: u64 = nodes
        .iter()
        .map(|n| n.step.depths.saturation() as u64 + 1)
        .sum();
    if num_nodes == 0 || layer_count > MAX_FLAT_LAYERS || layer_count * num_nodes > MAX_FLAT_STATES
    {
        return None;
    }
    Some((num_nodes as u32, layer_count))
}

impl PlanBatchState {
    /// Fresh state for evaluating `nodes` over `snap`/`g`. Picks the
    /// flat dense-array variant when the product space is reasonable
    /// and the sparse mirror otherwise — run results are identical
    /// either way.
    pub fn new(g: &SocialGraph, snap: &CsrSnapshot, nodes: &[PlanNode]) -> Self {
        assert!(
            !nodes.is_empty(),
            "a plan chunk traverses at least one node"
        );
        let inner = match if snap.matches(g) {
            flat_plan_dimensions(snap, nodes)
        } else {
            None
        } {
            Some((v_count, layer_count)) => {
                let mut bases = Vec::with_capacity(nodes.len());
                let mut sats = Vec::with_capacity(nodes.len());
                let mut layers = Vec::with_capacity(layer_count as usize);
                let mut base = 0u32;
                for (id, n) in nodes.iter().enumerate() {
                    let sat = n.step.depths.saturation();
                    let unbounded = n.step.depths.is_unbounded();
                    bases.push(base);
                    sats.push(sat);
                    for d in 0..=sat {
                        layers.push(PlanLayerInfo {
                            node: id as u16,
                            completes: d >= 1 && n.step.depths.contains(d),
                            expands: d < sat || unbounded,
                            next_layer: base + (d + 1).min(sat),
                        });
                    }
                    base += sat + 1;
                }
                let total_states = layer_count as usize * v_count as usize;
                PlanInner::Flat(FlatPlanBatch {
                    v_count,
                    bases,
                    sats,
                    layers,
                    seen: vec![0; total_states],
                    pending: vec![0; total_states],
                    matched_mask: vec![0; snap.num_nodes()],
                    frontier: Vec::new(),
                    next: Vec::new(),
                })
            }
            None => PlanInner::Sparse(SparsePlanBatch {
                sats: nodes.iter().map(|n| n.step.depths.saturation()).collect(),
                seen: HashMap::new(),
                pending: HashMap::new(),
                matched_mask: HashMap::new(),
                frontier: Vec::new(),
                next: Vec::new(),
            }),
        };
        PlanBatchState {
            states_expanded: 0,
            inner,
        }
    }

    /// Total product states processed across every run so far.
    pub fn states_expanded(&self) -> usize {
        self.states_expanded
    }
}

/// One seeded run of the plan engine: drains the frontier produced by
/// `seeds`, recording accepts and exporting masked states visited at
/// `watched` members. The contract matches
/// [`crate::online::evaluate_audience_batch_seeded`] — bits reported
/// (matched or exported) are disjoint across runs, and re-seeding
/// known bits is a no-op — with plan node ids in the `step` slot of
/// seeds and exports. `state` must have been created by
/// [`PlanBatchState::new`] for this same `(g, snap, nodes)`; `masks`
/// must stay the same chunk across runs.
pub fn evaluate_plan_batch_seeded(
    g: &SocialGraph,
    snap: &CsrSnapshot,
    nodes: &[PlanNode],
    masks: &ChunkMasks,
    state: &mut PlanBatchState,
    seeds: &[MaskedSeedState],
    watched: &[bool],
) -> SeededBatchOutcome {
    let PlanBatchState {
        states_expanded,
        inner,
    } = state;
    match inner {
        PlanInner::Flat(fb) => fb.run(g, snap, nodes, masks, seeds, watched, states_expanded),
        PlanInner::Sparse(sb) => sb.run(g, nodes, masks, seeds, watched, states_expanded),
    }
}

impl FlatPlanBatch {
    /// Forwards `bits` to a state, queueing it on the 0 → nonzero
    /// pending transition (free-function shape for split borrows).
    #[inline]
    fn send(
        seen: &mut [u64],
        pending: &mut [u64],
        queue: &mut Vec<u64>,
        v_count: u32,
        layer: u32,
        v: u32,
        bits: u64,
    ) {
        let idx = (layer * v_count + v) as usize;
        let new = bits & !seen[idx];
        if new != 0 {
            seen[idx] |= new;
            if pending[idx] == 0 {
                queue.push((u64::from(layer) << 32) | u64::from(v));
            }
            pending[idx] |= new;
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn run(
        &mut self,
        g: &SocialGraph,
        snap: &CsrSnapshot,
        nodes: &[PlanNode],
        masks: &ChunkMasks,
        seeds: &[MaskedSeedState],
        watched: &[bool],
        states_expanded: &mut usize,
    ) -> SeededBatchOutcome {
        debug_assert!(snap.matches(g), "snapshot pinned for the whole bundle");
        let mut out = SeededBatchOutcome::default();
        let FlatPlanBatch {
            v_count,
            bases,
            sats,
            layers,
            seen,
            pending,
            matched_mask,
            frontier,
            next,
        } = self;
        let v_count = *v_count;

        debug_assert!(frontier.is_empty(), "previous run drained its frontier");
        for &(m, node, depth, bits) in seeds {
            let lay = bases[node as usize] + depth.min(sats[node as usize]);
            Self::send(seen, pending, frontier, v_count, lay, m.0, bits);
        }

        while !frontier.is_empty() {
            for &packed in frontier.iter() {
                let v = packed as u32;
                let lay = (packed >> 32) as u32;
                let idx = (lay * v_count + v) as usize;
                let delta = pending[idx];
                pending[idx] = 0;
                debug_assert_ne!(delta, 0, "queued state without pending bits");
                out.stats.states_visited += 1;
                *states_expanded += 1;
                let li = layers[lay as usize];
                let pn = &nodes[li.node as usize];
                let step = &pn.step;
                let node = NodeId(v);

                if watched[node.index()] {
                    out.exports
                        .push((node, li.node, lay - bases[li.node as usize], delta));
                }

                // Node completion for the newly arrived bits: accept
                // the bits whose condition ends here, ε-fork the rest
                // into the children on their chains.
                if li.completes && step.conds.iter().all(|c| c.eval(g.node_attrs(node))) {
                    let acc =
                        delta & masks.accept_mask[li.node as usize] & !matched_mask[node.index()];
                    if acc != 0 {
                        matched_mask[node.index()] |= acc;
                        out.matched.push((node, acc));
                    }
                    for &child in &pn.children {
                        let fwd = delta & masks.node_mask[child as usize];
                        if fwd != 0 {
                            Self::send(seen, pending, next, v_count, bases[child as usize], v, fwd);
                        }
                    }
                }

                // Edge expansion within the node.
                if !li.expands {
                    continue;
                }
                if matches!(step.dir, Direction::Out | Direction::Both) {
                    for &nbr in snap.out_neighbors(v, step.label).nodes {
                        out.stats.edges_scanned += 1;
                        Self::send(seen, pending, next, v_count, li.next_layer, nbr, delta);
                    }
                }
                if matches!(step.dir, Direction::In | Direction::Both) {
                    for &nbr in snap.in_neighbors(v, step.label).nodes {
                        out.stats.edges_scanned += 1;
                        Self::send(seen, pending, next, v_count, li.next_layer, nbr, delta);
                    }
                }
            }
            std::mem::swap(frontier, next);
            next.clear();
        }
        out
    }
}

impl SparsePlanBatch {
    #[inline]
    fn send(
        seen: &mut HashMap<PState, u64>,
        pending: &mut HashMap<PState, u64>,
        queue: &mut Vec<PState>,
        st: PState,
        bits: u64,
    ) {
        let slot = seen.entry(st).or_insert(0);
        let new = bits & !*slot;
        if new != 0 {
            *slot |= new;
            let p = pending.entry(st).or_insert(0);
            if *p == 0 {
                queue.push(st);
            }
            *p |= new;
        }
    }

    fn run(
        &mut self,
        g: &SocialGraph,
        nodes: &[PlanNode],
        masks: &ChunkMasks,
        seeds: &[MaskedSeedState],
        watched: &[bool],
        states_expanded: &mut usize,
    ) -> SeededBatchOutcome {
        let mut out = SeededBatchOutcome::default();
        let SparsePlanBatch {
            sats,
            seen,
            pending,
            matched_mask,
            frontier,
            next,
        } = self;

        debug_assert!(frontier.is_empty(), "previous run drained its frontier");
        for &(m, node, depth, bits) in seeds {
            let st: PState = (m.0, node, depth.min(sats[node as usize]));
            Self::send(seen, pending, frontier, st, bits);
        }

        while !frontier.is_empty() {
            for &st in frontier.iter() {
                let (v, n, d) = st;
                let delta = pending.insert(st, 0).unwrap_or(0);
                debug_assert_ne!(delta, 0, "queued state without pending bits");
                out.stats.states_visited += 1;
                *states_expanded += 1;
                let pn = &nodes[n as usize];
                let step = &pn.step;
                let node = NodeId(v);

                if watched[node.index()] {
                    out.exports.push((node, n, d, delta));
                }

                if d >= 1
                    && step.depths.contains(d)
                    && step.conds.iter().all(|c| c.eval(g.node_attrs(node)))
                {
                    let mask = matched_mask.entry(v).or_insert(0);
                    let acc = delta & masks.accept_mask[n as usize] & !*mask;
                    if acc != 0 {
                        *mask |= acc;
                        out.matched.push((node, acc));
                    }
                    for &child in &pn.children {
                        let fwd = delta & masks.node_mask[child as usize];
                        if fwd != 0 {
                            Self::send(seen, pending, next, (v, child, 0), fwd);
                        }
                    }
                }

                if d >= sats[n as usize] && !step.depths.is_unbounded() {
                    continue;
                }
                let d_next = (d + 1).min(sats[n as usize]);
                if matches!(step.dir, Direction::Out | Direction::Both) {
                    for (_, rec) in g.out_edges(node) {
                        if rec.label != step.label {
                            out.stats.edges_filtered += 1;
                            continue;
                        }
                        out.stats.edges_scanned += 1;
                        Self::send(seen, pending, next, (rec.dst.0, n, d_next), delta);
                    }
                }
                if matches!(step.dir, Direction::In | Direction::Both) {
                    for (_, rec) in g.in_edges(node) {
                        if rec.label != step.label {
                            out.stats.edges_filtered += 1;
                            continue;
                        }
                        out.stats.edges_scanned += 1;
                        Self::send(seen, pending, next, (rec.src.0, n, d_next), delta);
                    }
                }
            }
            std::mem::swap(frontier, next);
            next.clear();
        }
        out
    }
}

/// Result of a whole-bundle plan evaluation on a single graph.
#[derive(Clone, Debug, Default)]
pub struct PlanAudienceOutcome {
    /// Per condition (same order as the compiled bundle), the sorted
    /// members whose walks satisfy it. Empty paths yield the owner.
    pub audiences: Vec<Vec<NodeId>>,
    /// Product states processed across all chunks.
    pub states_visited: usize,
    /// Edges scanned across all chunks.
    pub edges_scanned: usize,
    /// Number of 64-condition chunk traversals run.
    pub traversals: usize,
}

/// Evaluates a compiled bundle on one graph: every 64 conditions share
/// one plan traversal, each seeded at its owner on its root node.
/// `owners[i]` is the owner of condition `i`; the result is
/// per-condition audiences identical to evaluating each condition's
/// path alone (the differential suite pins this).
pub fn evaluate_plan_audiences(
    g: &SocialGraph,
    snap: &CsrSnapshot,
    plan: &BundlePlan,
    owners: &[NodeId],
) -> PlanAudienceOutcome {
    assert_eq!(owners.len(), plan.num_conds(), "one owner per condition");
    let mut out = PlanAudienceOutcome {
        audiences: vec![Vec::new(); owners.len()],
        ..Default::default()
    };
    let mut traversable = Vec::new();
    for (i, &owner) in owners.iter().enumerate() {
        match plan.root_of(i) {
            Some(_) => traversable.push(i),
            None => out.audiences[i].push(owner), // empty path: owner only
        }
    }
    if traversable.is_empty() {
        return out;
    }
    let watched = vec![false; g.num_nodes()];
    for chunk in traversable.chunks(64) {
        let masks = plan.chunk_masks(chunk);
        let mut state = PlanBatchState::new(g, snap, &plan.nodes);
        let seeds: Vec<MaskedSeedState> = chunk
            .iter()
            .enumerate()
            .map(|(bit, &cond)| {
                (
                    owners[cond],
                    plan.root_of(cond).expect("traversable condition"),
                    0,
                    1u64 << bit,
                )
            })
            .collect();
        let run =
            evaluate_plan_batch_seeded(g, snap, &plan.nodes, &masks, &mut state, &seeds, &watched);
        for (member, mut bits) in run.matched {
            while bits != 0 {
                let bit = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                out.audiences[chunk[bit]].push(member);
            }
        }
        out.states_visited += run.stats.states_visited;
        out.edges_scanned += run.stats.edges_scanned;
        out.traversals += 1;
    }
    for a in &mut out.audiences {
        a.sort_unstable_by_key(|n| n.0);
        a.dedup();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::online::evaluate_with_snapshot;
    use crate::path::parse_path;

    /// A small two-community graph: a friend chain 0-1-2-3 (out
    /// edges), colleagues 2→4, 3→4, and a boss edge 5→0.
    fn fixture() -> SocialGraph {
        let mut g = SocialGraph::new();
        for i in 0..6 {
            let n = g.add_node(&format!("m{i}"));
            assert_eq!(n.0, i);
        }
        for (s, d) in [(0, 1), (1, 2), (2, 3)] {
            g.connect(NodeId(s), "friend", NodeId(d));
        }
        g.connect(NodeId(2), "colleague", NodeId(4));
        g.connect(NodeId(3), "colleague", NodeId(4));
        g.connect(NodeId(5), "boss", NodeId(0));
        for i in 0..6u32 {
            g.set_node_attr(NodeId(i), "age", 20 + i as i64);
        }
        g
    }

    fn single_audience(
        g: &SocialGraph,
        snap: &CsrSnapshot,
        owner: NodeId,
        path: &crate::path::PathExpr,
    ) -> Vec<NodeId> {
        let mut a = evaluate_with_snapshot(g, snap, owner, path, None).matched;
        a.sort_unstable_by_key(|n| n.0);
        a
    }

    #[test]
    fn plan_matches_per_condition_evaluation() {
        let mut g = fixture();
        let texts = [
            "friend+[1..2]",
            "friend+[1..2]/colleague+[1]",
            "friend+[1..3]",
            "boss-[1]",
            "friend*[1..]{age>=21}",
        ];
        let paths: Vec<_> = texts
            .iter()
            .map(|t| parse_path(t, g.vocab_mut()).unwrap())
            .collect();
        let snap = g.snapshot();
        let owners = vec![NodeId(0); paths.len()];
        let plan = BundlePlan::compile(&paths.iter().collect::<Vec<_>>()).unwrap();
        let got = evaluate_plan_audiences(&g, &snap, &plan, &owners);
        for (i, path) in paths.iter().enumerate() {
            let want = single_audience(&g, &snap, owners[i], path);
            assert_eq!(got.audiences[i], want, "condition {i}: {}", texts[i]);
        }
        assert!(got.traversals == 1, "five conditions share one traversal");
    }

    #[test]
    fn shared_prefix_expands_fewer_states_than_separate_chains() {
        let mut g = fixture();
        let shared = [
            "friend+[1..2]",
            "friend+[1..2]/colleague+[1]",
            "friend+[1..2]/friend+[1]",
        ];
        let paths: Vec<_> = shared
            .iter()
            .map(|t| parse_path(t, g.vocab_mut()).unwrap())
            .collect();
        let snap = g.snapshot();
        let owners = vec![NodeId(0); paths.len()];
        let plan = BundlePlan::compile(&paths.iter().collect::<Vec<_>>()).unwrap();
        let fused = evaluate_plan_audiences(&g, &snap, &plan, &owners);
        let mut separate = 0;
        for (i, path) in paths.iter().enumerate() {
            let solo_plan = BundlePlan::compile(&[path]).unwrap();
            let solo = evaluate_plan_audiences(&g, &snap, &solo_plan, &owners[i..i + 1]);
            separate += solo.states_visited;
        }
        assert!(
            fused.states_visited < separate,
            "shared prefix must save work: fused {} vs separate {separate}",
            fused.states_visited
        );
    }

    #[test]
    fn empty_paths_and_mixed_owners() {
        let mut g = fixture();
        let friend = parse_path("friend+[1]", g.vocab_mut()).unwrap();
        let snap = g.snapshot();
        let empty = crate::path::PathExpr::new(vec![]);
        let paths = vec![&friend, &empty, &friend];
        let owners = vec![NodeId(0), NodeId(3), NodeId(1)];
        let plan = BundlePlan::compile(&paths).unwrap();
        let got = evaluate_plan_audiences(&g, &snap, &plan, &owners);
        assert_eq!(got.audiences[0], vec![NodeId(1)]);
        assert_eq!(
            got.audiences[1],
            vec![NodeId(3)],
            "empty path yields the owner"
        );
        assert_eq!(got.audiences[2], vec![NodeId(2)]);
    }

    #[test]
    fn persistence_reseeding_known_bits_is_a_noop() {
        let mut g = fixture();
        let path = parse_path("friend+[1..2]", g.vocab_mut()).unwrap();
        let snap = g.snapshot();
        let plan = BundlePlan::compile(&[&path]).unwrap();
        let masks = plan.chunk_masks(&[0]);
        let mut state = PlanBatchState::new(&g, &snap, &plan.nodes);
        let watched = vec![false; g.num_nodes()];
        let seeds = [(NodeId(0), 0u16, 0u32, 1u64)];
        let first = evaluate_plan_batch_seeded(
            &g,
            &snap,
            &plan.nodes,
            &masks,
            &mut state,
            &seeds,
            &watched,
        );
        assert!(!first.matched.is_empty());
        let again = evaluate_plan_batch_seeded(
            &g,
            &snap,
            &plan.nodes,
            &masks,
            &mut state,
            &seeds,
            &watched,
        );
        assert!(again.matched.is_empty(), "bits are disjoint across runs");
        assert_eq!(
            again.stats.states_visited, 0,
            "re-seeding known bits is free"
        );
    }

    #[test]
    fn watched_members_export_plan_states() {
        let mut g = fixture();
        let path = parse_path("friend+[1..3]", g.vocab_mut()).unwrap();
        let snap = g.snapshot();
        let plan = BundlePlan::compile(&[&path]).unwrap();
        let masks = plan.chunk_masks(&[0]);
        let mut state = PlanBatchState::new(&g, &snap, &plan.nodes);
        let mut watched = vec![false; g.num_nodes()];
        watched[2] = true;
        let seeds = [(NodeId(0), 0u16, 0u32, 1u64)];
        let run = evaluate_plan_batch_seeded(
            &g,
            &snap,
            &plan.nodes,
            &masks,
            &mut state,
            &seeds,
            &watched,
        );
        assert!(
            run.exports
                .iter()
                .any(|&(m, n, d, bits)| m == NodeId(2) && n == 0 && d == 2 && bits == 1),
            "watched member exports its arrival states: {:?}",
            run.exports
        );
    }
}
