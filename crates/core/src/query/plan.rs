//! Shared-prefix plan compiler: one trie over a bundle's conditions.
//!
//! A bundle of access conditions overwhelmingly shares *prefixes* even
//! when the full paths differ (`friend.friend` vs
//! `friend.friend.colleague` in a feed-shaped read). The batched
//! evaluators used to share traversal only between conditions whose
//! path expressions were *identical* — the grouping key. This module
//! replaces that key with a prefix trie: each bundle compiles into one
//! [`BundlePlan`] whose nodes are canonicalized [`Step`]s, conditions
//! that spell the same first k steps share the first k trie nodes, and
//! the masked multi-source BFS walks each shared node **once**,
//! forking its 64-bit condition masks only where the paths diverge.
//!
//! A condition *accepts* at the last node of its chain; interior nodes
//! both forward (ε-move to children) and accept when some shorter
//! condition ends there. Per 64-condition chunk, [`ChunkMasks`] gives
//! each node the set of condition bits whose chains pass through it
//! (`node_mask`, the ε-fork filter) and the bits that accept there
//! (`accept_mask`).
//!
//! Equivalence argument: every condition bit is masked into exactly
//! the trie chain of its own path — ε-forks intersect with
//! `node_mask[child]`, so a bit never enters a node outside its chain,
//! and within its chain the node sequence *is* the linear automaton of
//! its path. Per-bit reachability is therefore identical to running
//! the per-expression engine, state for state.

use crate::path::ast::{PathExpr, Step};

/// One node of the shared-prefix trie: a canonical step plus the trie
/// edges to the steps that may follow it in some condition.
#[derive(Clone, Debug, PartialEq)]
pub struct PlanNode {
    /// The canonicalized step this node matches.
    pub step: Step,
    /// Trie children (divergence points fork the condition masks).
    pub children: Vec<u16>,
}

/// Per-64-condition-chunk bit masks over a plan's nodes.
#[derive(Clone, Debug, Default)]
pub struct ChunkMasks {
    /// `node_mask[n]` — bits of the chunk's conditions whose chains
    /// pass through node `n`; the filter applied when ε-forking into
    /// `n`.
    pub node_mask: Vec<u64>,
    /// `accept_mask[n]` — bits whose condition accepts (reports the
    /// member into its audience) upon completing node `n`.
    pub accept_mask: Vec<u64>,
}

/// A compiled bundle: the trie plus each condition's chain through it.
#[derive(Clone, Debug)]
pub struct BundlePlan {
    /// Trie nodes; ids are indexes (they travel in the `step` slot of
    /// masked state keys, hence the `u16` budget).
    pub nodes: Vec<PlanNode>,
    /// Root nodes (distinct first steps across the bundle).
    pub roots: Vec<u16>,
    /// Per condition, the node ids along its path — `None` for the
    /// empty path (matches only the owner; never traversed).
    chains: Vec<Option<Vec<u16>>>,
}

impl BundlePlan {
    /// Compiles a bundle of condition paths into one shared-prefix
    /// trie. Steps are canonicalized before node lookup, so
    /// semantically identical steps share a node regardless of how
    /// they were written. Returns `None` if the bundle needs more than
    /// `u16::MAX` trie nodes (callers fall back to per-expression
    /// grouping).
    pub fn compile(paths: &[&PathExpr]) -> Option<BundlePlan> {
        let mut plan = BundlePlan {
            nodes: Vec::new(),
            roots: Vec::new(),
            chains: Vec::with_capacity(paths.len()),
        };
        for path in paths {
            if path.is_empty() {
                plan.chains.push(None);
                continue;
            }
            let mut chain = Vec::with_capacity(path.len());
            let mut parent: Option<u16> = None;
            for step in &path.steps {
                let step = step.canonical();
                let siblings = match parent {
                    None => &plan.roots,
                    Some(p) => &plan.nodes[p as usize].children,
                };
                let node = match siblings
                    .iter()
                    .copied()
                    .find(|&n| plan.nodes[n as usize].step == step)
                {
                    Some(n) => n,
                    None => {
                        if plan.nodes.len() >= u16::MAX as usize {
                            return None;
                        }
                        let id = plan.nodes.len() as u16;
                        plan.nodes.push(PlanNode {
                            step,
                            children: Vec::new(),
                        });
                        match parent {
                            None => plan.roots.push(id),
                            Some(p) => plan.nodes[p as usize].children.push(id),
                        }
                        id
                    }
                };
                chain.push(node);
                parent = Some(node);
            }
            plan.chains.push(Some(chain));
        }
        Some(plan)
    }

    /// Number of conditions the plan was compiled from.
    pub fn num_conds(&self) -> usize {
        self.chains.len()
    }

    /// The root node where condition `cond` is seeded, or `None` for
    /// an empty path.
    pub fn root_of(&self, cond: usize) -> Option<u16> {
        self.chains[cond].as_ref().map(|c| c[0])
    }

    /// Bit masks for a chunk of up to 64 condition indexes
    /// (`chunk[bit]` is the condition carried by `1 << bit`). Empty
    /// paths must not appear in a chunk.
    pub fn chunk_masks(&self, chunk: &[usize]) -> ChunkMasks {
        assert!(
            chunk.len() <= 64,
            "a mask chunk holds at most 64 conditions"
        );
        let mut masks = ChunkMasks {
            node_mask: vec![0; self.nodes.len()],
            accept_mask: vec![0; self.nodes.len()],
        };
        for (bit, &cond) in chunk.iter().enumerate() {
            let chain = self.chains[cond]
                .as_ref()
                .expect("empty-path conditions are resolved before planning");
            for &n in chain {
                masks.node_mask[n as usize] |= 1 << bit;
            }
            masks.accept_mask[*chain.last().unwrap() as usize] |= 1 << bit;
        }
        masks
    }

    /// Product-automaton layers of one node: depths `0..=sat` of its
    /// step (mirrors the per-expression engine's layer table).
    fn node_layers(&self, n: u16) -> usize {
        self.nodes[n as usize].step.depths.saturation() as usize + 1
    }

    /// Automaton states the shared plan occupies — each trie node
    /// contributes its layers once, however many conditions share it.
    pub fn plan_states(&self) -> usize {
        (0..self.nodes.len() as u16)
            .map(|n| self.node_layers(n))
            .sum()
    }

    /// Automaton states one-chain-per-condition evaluation would
    /// occupy: every condition pays for its full path. The ratio
    /// `plan_states / expr_states` is the shared-prefix compression
    /// the planner's telemetry tracks.
    pub fn expr_states(&self) -> usize {
        self.chains
            .iter()
            .filter_map(|c| c.as_ref())
            .map(|chain| chain.iter().map(|&n| self.node_layers(n)).sum::<usize>())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::parse_path;
    use socialreach_graph::Vocabulary;

    fn paths(texts: &[&str]) -> (Vec<PathExpr>, Vocabulary) {
        let mut vocab = Vocabulary::new();
        let ps = texts
            .iter()
            .map(|t| parse_path(t, &mut vocab).unwrap_or_else(|e| panic!("{e}")))
            .collect();
        (ps, vocab)
    }

    fn compile(texts: &[&str]) -> BundlePlan {
        let (ps, _) = paths(texts);
        BundlePlan::compile(&ps.iter().collect::<Vec<_>>()).unwrap()
    }

    #[test]
    fn shared_prefixes_share_nodes() {
        let plan = compile(&[
            "friend+[1]/friend+[1]",
            "friend+[1]/friend+[1]/colleague+[1]",
            "friend+[1]/colleague+[1]",
        ]);
        // Trie: friend -> {friend -> {colleague}, colleague}.
        assert_eq!(plan.nodes.len(), 4);
        assert_eq!(plan.roots.len(), 1);
        assert_eq!(plan.root_of(0), plan.root_of(1));
        assert_eq!(plan.root_of(0), plan.root_of(2));
        assert!(plan.plan_states() < plan.expr_states());
    }

    #[test]
    fn divergent_steps_fork() {
        let plan = compile(&["friend+[1]", "friend+[1..2]", "friend-[1]", "boss+[1]"]);
        // Same label but different depths/direction are different steps.
        assert_eq!(plan.roots.len(), 4);
        assert_eq!(plan.plan_states(), plan.expr_states(), "nothing shared");
    }

    #[test]
    fn identical_paths_collapse_to_one_chain() {
        let plan = compile(&["friend+[1]/colleague+[1]", "friend+[1]/colleague+[1]"]);
        assert_eq!(plan.nodes.len(), 2);
        let masks = plan.chunk_masks(&[0, 1]);
        let accept = *plan.chains[0].as_ref().unwrap().last().unwrap() as usize;
        assert_eq!(masks.accept_mask[accept], 0b11, "both bits accept together");
        assert_eq!(masks.node_mask[accept], 0b11);
    }

    #[test]
    fn canonicalization_merges_textual_variants() {
        // Same predicates in different order: one trie chain.
        let plan = compile(&[
            "friend+[1]{age>=18,city=\"lyon\"}",
            "friend+[1]{city=\"lyon\",age>=18}",
        ]);
        assert_eq!(plan.nodes.len(), 1);
        assert_eq!(plan.roots.len(), 1);
    }

    #[test]
    fn chunk_masks_route_bits_to_their_chains() {
        let plan = compile(&[
            "friend+[1]/friend+[1]",
            "friend+[1]/colleague+[1]",
            "boss-[1]",
        ]);
        let masks = plan.chunk_masks(&[0, 1, 2]);
        let root_friend = plan.root_of(0).unwrap() as usize;
        let root_boss = plan.root_of(2).unwrap() as usize;
        assert_eq!(
            masks.node_mask[root_friend], 0b011,
            "conds 0,1 share the root"
        );
        assert_eq!(masks.node_mask[root_boss], 0b100);
        assert_eq!(
            masks.accept_mask[root_friend], 0,
            "nothing ends at the shared root"
        );
        assert_eq!(masks.accept_mask[root_boss], 0b100);
        let end0 = *plan.chains[0].as_ref().unwrap().last().unwrap() as usize;
        let end1 = *plan.chains[1].as_ref().unwrap().last().unwrap() as usize;
        assert_eq!(masks.accept_mask[end0], 0b001);
        assert_eq!(masks.accept_mask[end1], 0b010);
    }

    #[test]
    fn empty_paths_have_no_chain() {
        let (mut ps, _) = paths(&["friend+[1]"]);
        ps.push(PathExpr::new(vec![]));
        let plan = BundlePlan::compile(&ps.iter().collect::<Vec<_>>()).unwrap();
        assert_eq!(plan.num_conds(), 2);
        assert!(plan.root_of(1).is_none());
        assert_eq!(plan.nodes.len(), 1);
    }

    #[test]
    fn interior_accepts_coexist_with_forwarding() {
        let plan = compile(&["friend+[1]", "friend+[1]/colleague+[1]"]);
        let masks = plan.chunk_masks(&[0, 1]);
        let root = plan.root_of(0).unwrap() as usize;
        assert_eq!(masks.node_mask[root], 0b11);
        assert_eq!(
            masks.accept_mask[root], 0b01,
            "cond 0 accepts at the prefix"
        );
        assert_eq!(plan.nodes[root].children.len(), 1);
    }
}
