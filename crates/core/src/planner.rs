//! Telemetry-fed adaptive read planner: pick the winning engine per
//! bundle, on either backend.
//!
//! Both deployments ship **interchangeable** read strategies whose
//! relative cost flips with workload shape. A single graph can answer
//! an audience bundle with one 64-way multi-source mask BFS or with
//! one independent walk per condition; a sharded deployment can run
//! one batched masked fixpoint or one per-condition fixpoint; a small
//! `check` batch can materialize full audiences or run early-exit
//! targeted walks. The batched engines win ~3.7× on dense
//! template-sharing bundles and *lose* (~0.8×) on sparse low-overlap
//! ones (BENCH_p10), and the masked fixpoint wins 1.2–2.4× exactly
//! when walks cross shard boundaries (BENCH_p12). No static default is
//! right everywhere.
//!
//! [`PlannedService`] closes that gap. It decorates any
//! [`ServiceInstance`] — exactly like [`crate::DurableService`] wraps
//! one for persistence — and routes every `audience_batch` /
//! `check_batch` / `check` through a [`Planner`] that:
//!
//! 1. keeps a decaying [`ResourceProfile`] per resource (audience
//!    size, deduped conditions, fixpoint rounds, boundary-crossing
//!    rate, states per condition), learned from the [`ReadStats`]
//!    censuses of prior reads;
//! 2. keeps per-strategy decayed **measured cost** (wall nanoseconds
//!    per resource) in the same profile;
//! 3. at read time, sums the profile costs over the bundle's deduped
//!    resources per candidate strategy and dispatches the argmin
//!    through the backend's forced entry points
//!    ([`AccessService::audience_batch_forced`] /
//!    [`AccessService::check_batch_forced`]).
//!
//! Cold start is safe by construction: with no measurements at all
//! the planner serves the backend's current default, so the very
//! first reads behave exactly like an unplanned deployment. From
//! there it alternates arms — weakest evidence first — until every
//! candidate has [`MIN_ARM_SAMPLES`] per resource, and only then
//! exploits the argmin: a single cold-cache sample can therefore
//! never lock in the losing engine, and estimates seed with an
//! arithmetic mean before switching to the EWMA for the same reason.
//! (Check batches keep their own route costs, separate from the
//! audience-bundle slots: warm checks ride the decision cache, and
//! their near-zero timings must not convince the planner that
//! materializing audiences is free.) Every ~256th decision
//! deterministically re-probes the least-sampled candidate so
//! estimates track drift;
//! decay (EWMA, α = ¼) retires stale history without any invalidation
//! hook — mutations never touch the profile table. Profiles are keyed
//! by [`ResourceId`] in the decorator, **not** in any epoch-published
//! snapshot, so they survive republication; the table sits behind one
//! `RwLock` and all counters are atomic, so concurrent readers plan
//! and observe coherently. A misprediction costs latency, never
//! correctness: every strategy returns identical decisions, audiences
//! and witnesses (pinned by `tests/planner_differential.rs`).
//!
//! `explain` stays on the targeted witness path (the only strategy
//! that produces walks on both backends) but still feeds its census
//! into the profile, warming the targeted cost slot for later check
//! planning.
//!
//! # Example
//!
//! ```
//! use socialreach_core::{
//!     AccessService, Decision, Deployment, MutateService, PlannerMode,
//! };
//!
//! let mut svc = Deployment::sharded(4, 7).planned(PlannerMode::Adaptive);
//! let alice = svc.add_user("Alice");
//! let bob = svc.add_user("Bob");
//! svc.add_relationship(alice, "friend", bob);
//! let album = svc.add_resource(alice);
//! svc.add_rule(album, "friend+[1,2]").unwrap();
//!
//! // Reads plan transparently; repeated bundles converge on the
//! // measured-cheapest engine.
//! for _ in 0..3 {
//!     assert_eq!(svc.check(album, bob).unwrap(), Decision::Grant);
//!     assert_eq!(svc.audience(album).unwrap(), vec![alice, bob]);
//! }
//! assert!(svc.planner().profile(album).is_some());
//! let tally = svc.planner().executed();
//! assert!(tally.batched + tally.per_condition + tally.targeted > 0);
//! ```

use crate::error::EvalError;
use crate::policy::{Decision, ResourceId};
use crate::service::{
    AccessService, BundleStrategy, CheckPlan, Deployment, Explanation, MutateService, ReadStats,
    ServiceInstance,
};
use parking_lot::RwLock;
use socialreach_graph::{AttrValue, LabelId, NodeId};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// EWMA blend factor: each new sample contributes a quarter, so ~8
/// samples retire 90% of stale history.
const ALPHA: f64 = 0.25;

/// Every `PROBE_PERIOD`-th planning decision re-measures the
/// least-sampled candidate instead of exploiting the argmin, so the
/// losing arm's estimate cannot go permanently stale. (The winning
/// arm re-measures on every read, so its drift is self-correcting.)
/// At the worst observed flip ratio (~3.7×, BENCH_p10 dense) the
/// amortized probe overhead is bounded by (3.7−1)/256 ≈ 1%.
const PROBE_PERIOD: u64 = 256;

/// Strategy slots inside a [`ResourceProfile`]'s cost table.
const S_BATCHED: usize = 0;
const S_PER_CONDITION: usize = 1;
const S_TARGETED: usize = 2;

/// Check bundles whose resources carry more profiled conditions than
/// this never consider the targeted route: each targeted walk pays
/// every condition again, so the audience routes dominate quickly.
const TARGETED_MAX_CONDITIONS: f64 = 2.0;

/// Minimum per-resource samples every candidate needs before the
/// planner exploits the argmin. Until the floor is met the planner
/// alternates arms (weakest evidence first), so no arm's estimate is
/// built solely from one cold-cache measurement — a single unlucky
/// sample must never lock in the losing engine.
const MIN_ARM_SAMPLES: u64 = 3;

/// Measured bundle costs within this relative margin of each other
/// count as a tie — timing noise routinely exceeds a 15% gap — and
/// the audience planner breaks the tie on learned workload *shape*
/// instead: the batched trie plan wins only when the bundle's learned
/// [`ResourceProfile::prefix_share`] shows real prefix overlap.
const NEAR_TIE_MARGIN: f64 = 0.15;

/// The learned prefix-share floor above which a near-tie prefers the
/// shared (batched) plan: 5% of product states eliminated by sharing.
const MIN_PREFIX_SHARE: f64 = 0.05;

/// Estimates average their first few samples arithmetically before
/// switching to the EWMA, so the coldest (first) measurement doesn't
/// dominate the estimate during warm-up the way first-seeded EWMA
/// weighting (56% after three samples) would.
const SEED_SAMPLES: u64 = 4;

/// How a [`PlannedService`] picks strategies.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PlannerMode {
    /// Learn per-resource profiles and dispatch the measured argmin
    /// (cold start = backend default, deterministic periodic probe).
    Adaptive,
    /// Always the batched engines (audience bundles run the mask
    /// BFS / masked fixpoint; check batches decide by membership in
    /// batched audiences).
    ForcedBatch,
    /// Always the per-condition engines (audience bundles run one
    /// walk/fixpoint per deduped condition; check batches run
    /// early-exit targeted walks per request).
    ForcedPerCondition,
}

impl PlannerMode {
    /// Parses the `SOCIALREACH_PLANNER` lever (`adaptive` | `batch` |
    /// `per-condition`, case-insensitive). `None` for anything else.
    pub fn parse(text: &str) -> Option<PlannerMode> {
        match text.to_ascii_lowercase().as_str() {
            "adaptive" => Some(PlannerMode::Adaptive),
            "batch" => Some(PlannerMode::ForcedBatch),
            "per-condition" => Some(PlannerMode::ForcedPerCondition),
            _ => None,
        }
    }

    /// The lever spelling (`adaptive` | `batch` | `per-condition`).
    pub fn as_str(&self) -> &'static str {
        match self {
            PlannerMode::Adaptive => "adaptive",
            PlannerMode::ForcedBatch => "batch",
            PlannerMode::ForcedPerCondition => "per-condition",
        }
    }
}

/// A decayed per-strategy cost estimate. `samples == 0` means the
/// strategy was never measured for this resource — the planner treats
/// its cost as unknown rather than zero.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CostEstimate {
    /// EWMA of measured wall nanoseconds per resource (audience
    /// routes) or per request (targeted route).
    pub cost_ns: f64,
    /// Samples absorbed so far.
    pub samples: u64,
}

impl CostEstimate {
    fn absorb(&mut self, sample_ns: f64) {
        if self.samples < SEED_SAMPLES {
            // Arithmetic mean while seeding (see [`SEED_SAMPLES`]).
            self.cost_ns =
                (self.cost_ns * self.samples as f64 + sample_ns) / (self.samples + 1) as f64;
        } else {
            self.cost_ns += ALPHA * (sample_ns - self.cost_ns);
        }
        self.samples += 1;
    }
}

/// The decaying telemetry profile of one resource: workload shape
/// learned from [`ReadStats`] censuses plus per-strategy measured
/// cost. All shape fields are EWMAs (α = ¼); the first observation
/// seeds them directly.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ResourceProfile {
    /// Audience cardinality (members granted access).
    pub audience_size: f64,
    /// Deduped `(owner, path)` conditions attributable to this
    /// resource per bundle read.
    pub conditions: f64,
    /// Fixpoint rounds per traversal pass (1.0 on a single graph;
    /// cross-shard round-trips on a sharded one).
    pub rounds: f64,
    /// Boundary-crossing rate: exported states over expanded states
    /// (always 0 on single-graph deployments). The resharding
    /// hotspot-detection follow-on consumes this same field.
    pub boundary_rate: f64,
    /// Product states expanded per deduped condition.
    pub states_per_condition: f64,
    /// Shared-prefix hit rate of the batched trie plan: the fraction
    /// of per-condition product states the bundle's shared-prefix
    /// compilation eliminated (`1 − plan/expr`, from
    /// [`ReadStats::prefix_share`]). Stays at its default (0) until a
    /// trie-planned batched read observes it — grouped-mode, targeted
    /// and per-condition reads leave the EWMA untouched. Near-tie
    /// audience planning consults this field: the shared plan is only
    /// preferred over per-condition walks when prefixes actually
    /// overlap.
    pub prefix_share: f64,
    /// Shape observations absorbed (any strategy).
    pub shape_samples: u64,
    /// Measured cost per strategy slot: `[batched, per-condition,
    /// targeted]`. Slots 0–1 are **audience-bundle** evidence
    /// (nanoseconds per resource, fed only by audience reads); slot 2
    /// is the targeted per-request cost (single `check`/`explain` and
    /// targeted check batches).
    pub costs: [CostEstimate; 3],
    /// Measured cost of deciding a check batch **via** audience
    /// materialization: `[batched, per-condition]`, nanoseconds per
    /// deduped resource. Kept apart from `costs[0..2]` because warm
    /// check batches ride the decision cache — near-zero check
    /// timings must not convince the planner that materializing a
    /// full audience bundle is free.
    pub check_costs: [CostEstimate; 2],
}

impl ResourceProfile {
    fn absorb_shape(&mut self, sample: &ShapeSample) {
        let blend = |field: &mut f64, value: Option<f64>, first: bool| {
            if let Some(v) = value {
                if first {
                    *field = v;
                } else {
                    *field += ALPHA * (v - *field);
                }
            }
        };
        let first = self.shape_samples == 0;
        blend(&mut self.audience_size, sample.audience_size, first);
        blend(&mut self.conditions, sample.conditions, first);
        blend(&mut self.rounds, sample.rounds, first);
        blend(&mut self.boundary_rate, sample.boundary_rate, first);
        blend(
            &mut self.states_per_condition,
            sample.states_per_condition,
            first,
        );
        blend(&mut self.prefix_share, sample.prefix_share, first);
        self.shape_samples += 1;
    }
}

/// One read's shape evidence for one resource, derived from a bundle
/// census. `None` fields leave the profile's EWMA untouched (e.g. a
/// check batch observes no audience cardinality).
struct ShapeSample {
    audience_size: Option<f64>,
    conditions: Option<f64>,
    rounds: Option<f64>,
    boundary_rate: Option<f64>,
    states_per_condition: Option<f64>,
    prefix_share: Option<f64>,
}

impl ShapeSample {
    /// Shape evidence shared by every bundle read: per-resource
    /// condition share plus bundle-uniform ratios.
    fn from_stats(stats: &ReadStats, resources: usize) -> ShapeSample {
        let conditions = (resources > 0).then(|| stats.conditions as f64 / resources as f64);
        let rounds = (stats.traversals > 0).then(|| stats.rounds as f64 / stats.traversals as f64);
        let boundary_rate = (stats.states_expanded > 0)
            .then(|| stats.exported_states as f64 / stats.states_expanded as f64);
        let states_per_condition =
            (stats.conditions > 0).then(|| stats.states_expanded as f64 / stats.conditions as f64);
        ShapeSample {
            audience_size: None,
            conditions,
            rounds,
            boundary_rate,
            states_per_condition,
            prefix_share: stats.prefix_share(),
        }
    }
}

/// Executed-strategy totals, one counter per dispatched read.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PlannerTally {
    /// Reads served by the batched engines.
    pub batched: u64,
    /// Reads served by the per-condition engines.
    pub per_condition: u64,
    /// Reads served by early-exit targeted walks.
    pub targeted: u64,
}

/// The cost model and telemetry store behind a [`PlannedService`].
///
/// All methods take `&self`: planning reads the profile table under a
/// shared lock, observation updates it under an exclusive lock, and
/// the decision/tally counters are atomics — concurrent readers of
/// the wrapped service plan and learn without coordination.
pub struct Planner {
    mode: PlannerMode,
    profiles: RwLock<HashMap<ResourceId, ResourceProfile>>,
    decisions: AtomicU64,
    executed: [AtomicU64; 3],
}

impl Planner {
    /// An empty planner (no profiles — everything cold-starts to the
    /// backend default until observations arrive).
    pub fn new(mode: PlannerMode) -> Planner {
        Planner {
            mode,
            profiles: RwLock::new(HashMap::new()),
            decisions: AtomicU64::new(0),
            executed: Default::default(),
        }
    }

    /// The configured mode.
    pub fn mode(&self) -> PlannerMode {
        self.mode
    }

    /// Snapshot of one resource's profile, if any read observed it.
    pub fn profile(&self, rid: ResourceId) -> Option<ResourceProfile> {
        self.profiles.read().get(&rid).copied()
    }

    /// Planning decisions taken so far.
    pub fn decisions(&self) -> u64 {
        self.decisions.load(Ordering::Relaxed)
    }

    /// Executed-strategy totals.
    pub fn executed(&self) -> PlannerTally {
        PlannerTally {
            batched: self.executed[S_BATCHED].load(Ordering::Relaxed),
            per_condition: self.executed[S_PER_CONDITION].load(Ordering::Relaxed),
            targeted: self.executed[S_TARGETED].load(Ordering::Relaxed),
        }
    }

    /// Picks the bundle strategy for an audience read over `rids`.
    pub fn plan_audience(&self, rids: &[ResourceId]) -> BundleStrategy {
        let tick = self.decisions.fetch_add(1, Ordering::Relaxed);
        match self.mode {
            PlannerMode::ForcedBatch => return BundleStrategy::Batched,
            PlannerMode::ForcedPerCondition => return BundleStrategy::PerCondition,
            PlannerMode::Adaptive => {}
        }
        let unique = dedup(rids);
        let profiles = self.profiles.read();
        let batched = bundle_cost(&profiles, &unique, |p| p.costs[S_BATCHED]);
        let per_cond = bundle_cost(&profiles, &unique, |p| p.costs[S_PER_CONDITION]);
        if tick % PROBE_PERIOD == PROBE_PERIOD - 1 {
            // Deterministic probe: refresh whichever candidate has the
            // thinner evidence.
            let s_batched = slot_samples(&profiles, &unique, |p| p.costs[S_BATCHED]);
            let s_per_cond = slot_samples(&profiles, &unique, |p| p.costs[S_PER_CONDITION]);
            return if s_per_cond < s_batched {
                BundleStrategy::PerCondition
            } else {
                BundleStrategy::Batched
            };
        }
        // Evidence floor: alternate arms (weakest first, tie → the
        // batched default) until every resource has MIN_ARM_SAMPLES of
        // both, so no single cold measurement can lock in a loser. A
        // probed misprediction costs latency, never correctness.
        let ev_batched = arm_evidence(&profiles, &unique, |p| p.costs[S_BATCHED]);
        let ev_per_cond = arm_evidence(&profiles, &unique, |p| p.costs[S_PER_CONDITION]);
        if ev_batched < MIN_ARM_SAMPLES || ev_per_cond < MIN_ARM_SAMPLES {
            return if ev_per_cond < ev_batched {
                BundleStrategy::PerCondition
            } else {
                BundleStrategy::Batched
            };
        }
        match (batched, per_cond) {
            // Near-tie: measured costs alone can't separate the arms
            // (timing noise exceeds the gap), so let the learned
            // workload shape decide — the batched trie plan only earns
            // its keep when the bundle's prefixes actually overlap.
            (Some(b), Some(p)) if (b - p).abs() <= NEAR_TIE_MARGIN * b.max(p) => {
                if bundle_prefix_share(&profiles, &unique) > MIN_PREFIX_SHARE {
                    BundleStrategy::Batched
                } else {
                    BundleStrategy::PerCondition
                }
            }
            (Some(b), Some(p)) if p < b => BundleStrategy::PerCondition,
            _ => BundleStrategy::Batched,
        }
    }

    /// Picks the decision route for a check batch. `default` is the
    /// backend's unplanned behaviour for this batch size and is served
    /// verbatim on cold start.
    pub fn plan_checks(&self, requests: &[(ResourceId, NodeId)], default: CheckPlan) -> CheckPlan {
        let tick = self.decisions.fetch_add(1, Ordering::Relaxed);
        match self.mode {
            PlannerMode::ForcedBatch => return CheckPlan::Audience(BundleStrategy::Batched),
            PlannerMode::ForcedPerCondition => return CheckPlan::Targeted,
            PlannerMode::Adaptive => {}
        }
        let unique: Vec<ResourceId> = dedup(&requests.iter().map(|&(r, _)| r).collect::<Vec<_>>());
        let profiles = self.profiles.read();

        // The targeted route replays every condition per request, so it
        // is only a candidate for thin-policy bundles (the ISSUE's
        // "1–2-condition check bundles"). Unprofiled resources pass the
        // gate — the cost model (not the gate) handles them.
        let targeted_ok = unique.iter().all(|rid| {
            profiles
                .get(rid)
                .is_none_or(|p| p.shape_samples == 0 || p.conditions <= TARGETED_MAX_CONDITIONS)
        });

        // Audience-route costs come from the check-specific estimates
        // (what deciding a batch via materialization actually cost,
        // decision cache included) — never from the audience-bundle
        // slots. Targeted cost is per *request* (duplicates re-walk,
        // modulo the decision cache), audience-route cost per deduped
        // resource.
        let cost_route = |slot: usize| bundle_cost(&profiles, &unique, |p| p.check_costs[slot]);
        let cost_targeted = || -> Option<f64> {
            let per_rid = bundle_cost(&profiles, &unique, |p| p.costs[S_TARGETED])?;
            Some(per_rid / unique.len().max(1) as f64 * requests.len() as f64)
        };

        // (plan, known bundle cost, per-resource evidence floor) per
        // candidate.
        let mut candidates = vec![
            (
                CheckPlan::Audience(BundleStrategy::Batched),
                cost_route(S_BATCHED),
                arm_evidence(&profiles, &unique, |p| p.check_costs[S_BATCHED]),
            ),
            (
                CheckPlan::Audience(BundleStrategy::PerCondition),
                cost_route(S_PER_CONDITION),
                arm_evidence(&profiles, &unique, |p| p.check_costs[S_PER_CONDITION]),
            ),
        ];
        if targeted_ok {
            candidates.push((
                CheckPlan::Targeted,
                cost_targeted(),
                arm_evidence(&profiles, &unique, |p| p.costs[S_TARGETED]),
            ));
        }

        if tick % PROBE_PERIOD == PROBE_PERIOD - 1 {
            // Deterministic probe: refresh whichever candidate has the
            // thinnest total evidence.
            return candidates
                .into_iter()
                .min_by_key(|&(_, _, evidence)| evidence)
                .map(|(plan, _, _)| plan)
                .unwrap_or(default);
        }

        // True cold start: nothing measured for any route → serve the
        // backend default verbatim.
        if candidates.iter().all(|&(_, _, evidence)| evidence == 0) {
            return default;
        }

        // Evidence floor: route batches to the weakest-evidenced
        // candidate (the backend default wins ties) until every route
        // has MIN_ARM_SAMPLES per resource — a single cold sample must
        // not lock in a loser.
        if let Some(&(plan, _, _)) = candidates
            .iter()
            .filter(|&&(_, _, evidence)| evidence < MIN_ARM_SAMPLES)
            .min_by_key(|&&(plan, _, evidence)| (evidence, plan != default))
        {
            return plan;
        }

        candidates
            .into_iter()
            .filter_map(|(plan, cost, _)| cost.map(|c| (c, plan)))
            .min_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(_, plan)| plan)
            .unwrap_or(default)
    }

    /// Absorbs the outcome of an executed audience bundle:
    /// per-resource shape evidence plus the executed strategy's
    /// measured cost (`elapsed_ns / resources`).
    pub fn observe_audience(
        &self,
        rids: &[ResourceId],
        strategy: BundleStrategy,
        elapsed_ns: u64,
        stats: &ReadStats,
        audiences: &[Vec<NodeId>],
    ) {
        let unique = dedup(rids);
        if unique.is_empty() {
            return;
        }
        let slot = match strategy {
            BundleStrategy::Batched => S_BATCHED,
            BundleStrategy::PerCondition => S_PER_CONDITION,
        };
        self.executed[slot].fetch_add(1, Ordering::Relaxed);
        let mut sample = ShapeSample::from_stats(stats, unique.len());
        let cost = elapsed_ns as f64 / unique.len() as f64;
        let mut sizes: HashMap<ResourceId, f64> = HashMap::new();
        for (rid, audience) in rids.iter().zip(audiences) {
            sizes.entry(*rid).or_insert(audience.len() as f64);
        }
        let mut profiles = self.profiles.write();
        for rid in &unique {
            sample.audience_size = sizes.get(rid).copied();
            let profile = profiles.entry(*rid).or_default();
            profile.absorb_shape(&sample);
            profile.costs[slot].absorb(cost);
        }
    }

    /// Absorbs the outcome of an executed check batch. Audience routes
    /// attribute cost per deduped resource (they materialized those
    /// audiences); the targeted route per request (each request
    /// walked).
    pub fn observe_checks(
        &self,
        requests: &[(ResourceId, NodeId)],
        plan: CheckPlan,
        elapsed_ns: u64,
        stats: &ReadStats,
    ) {
        let unique: Vec<ResourceId> = dedup(&requests.iter().map(|&(r, _)| r).collect::<Vec<_>>());
        if unique.is_empty() {
            return;
        }
        let slot = match plan {
            CheckPlan::Targeted => S_TARGETED,
            CheckPlan::Audience(BundleStrategy::Batched) => S_BATCHED,
            CheckPlan::Audience(BundleStrategy::PerCondition) => S_PER_CONDITION,
        };
        self.executed[slot].fetch_add(1, Ordering::Relaxed);
        let sample = ShapeSample::from_stats(stats, unique.len());
        let cost = if plan == CheckPlan::Targeted {
            elapsed_ns as f64 / requests.len().max(1) as f64
        } else {
            elapsed_ns as f64 / unique.len() as f64
        };
        let mut profiles = self.profiles.write();
        for rid in &unique {
            let profile = profiles.entry(*rid).or_default();
            profile.absorb_shape(&sample);
            // Check evidence lands in check-route estimates; only the
            // targeted slot is shared with single check/explain reads.
            match plan {
                CheckPlan::Targeted => profile.costs[S_TARGETED].absorb(cost),
                CheckPlan::Audience(_) => profile.check_costs[slot].absorb(cost),
            }
        }
    }

    /// Absorbs a targeted single read (`check` / `explain`): warms the
    /// targeted cost slot and the shape profile.
    pub fn observe_targeted(&self, rid: ResourceId, elapsed_ns: u64, stats: &ReadStats) {
        self.executed[S_TARGETED].fetch_add(1, Ordering::Relaxed);
        let sample = ShapeSample::from_stats(stats, 1);
        let mut profiles = self.profiles.write();
        let profile = profiles.entry(rid).or_default();
        profile.absorb_shape(&sample);
        profile.costs[S_TARGETED].absorb(elapsed_ns as f64);
    }
}

/// Order-preserving dedup of a resource list.
fn dedup(rids: &[ResourceId]) -> Vec<ResourceId> {
    let mut seen = std::collections::HashSet::new();
    rids.iter().copied().filter(|r| seen.insert(*r)).collect()
}

/// Estimated bundle cost for one strategy's estimate (selected by
/// `est`): the sum of the deduped resources' per-resource EWMA costs.
/// `None` when *any* resource lacks a measurement — an unknown addend
/// makes the whole estimate unknown, which is what routes cold
/// bundles to the default (and partially-cold ones to a probe).
fn bundle_cost(
    profiles: &HashMap<ResourceId, ResourceProfile>,
    unique: &[ResourceId],
    est: impl Fn(&ResourceProfile) -> CostEstimate,
) -> Option<f64> {
    let mut total = 0.0;
    for rid in unique {
        let est = est(profiles.get(rid)?);
        if est.samples == 0 {
            return None;
        }
        total += est.cost_ns;
    }
    (!unique.is_empty()).then_some(total)
}

/// Per-resource evidence floor of one strategy's estimate across the
/// bundle: the *minimum* sample count over the deduped resources
/// (zero when any is unprofiled). The planner exploits the argmin
/// only once every candidate's floor reaches [`MIN_ARM_SAMPLES`].
fn arm_evidence(
    profiles: &HashMap<ResourceId, ResourceProfile>,
    unique: &[ResourceId],
    est: impl Fn(&ResourceProfile) -> CostEstimate,
) -> u64 {
    unique
        .iter()
        .map(|rid| profiles.get(rid).map_or(0, |p| est(p).samples))
        .min()
        .unwrap_or(0)
}

/// Mean learned shared-prefix hit rate across the bundle's deduped
/// resources (unprofiled resources contribute 0 — no evidence of
/// overlap is treated as no overlap).
fn bundle_prefix_share(
    profiles: &HashMap<ResourceId, ResourceProfile>,
    unique: &[ResourceId],
) -> f64 {
    if unique.is_empty() {
        return 0.0;
    }
    let total: f64 = unique
        .iter()
        .map(|rid| profiles.get(rid).map_or(0.0, |p| p.prefix_share))
        .sum();
    total / unique.len() as f64
}

/// Total measurement count of one strategy's estimate across the
/// bundle.
fn slot_samples(
    profiles: &HashMap<ResourceId, ResourceProfile>,
    unique: &[ResourceId],
    est: impl Fn(&ResourceProfile) -> CostEstimate,
) -> u64 {
    unique
        .iter()
        .map(|rid| profiles.get(rid).map_or(0, |p| est(p).samples))
        .sum()
}

// ---------------------------------------------------------------------
// The decorator
// ---------------------------------------------------------------------

/// A [`ServiceInstance`] whose bundle reads are routed by a
/// [`Planner`]. Construct with [`Deployment::planned`] (empty backend)
/// or [`PlannedService::over`] (existing backend — the bench harness
/// path). Implements both service traits, so it drops in anywhere a
/// backend does; writes forward untouched and never invalidate
/// profiles (decay absorbs drift).
pub struct PlannedService {
    inner: ServiceInstance,
    planner: Planner,
}

impl Deployment {
    /// An empty backend for this deployment behind an adaptive (or
    /// forced) read planner. The planner lever of the CLI
    /// (`SOCIALREACH_PLANNER=adaptive|batch|per-condition`) lands
    /// here.
    pub fn planned(&self, mode: PlannerMode) -> PlannedService {
        PlannedService::over(self.build(), mode)
    }
}

impl PlannedService {
    /// Wraps an existing backend (profiles start empty — reads behave
    /// like the unplanned backend until telemetry accumulates).
    pub fn over(inner: ServiceInstance, mode: PlannerMode) -> PlannedService {
        PlannedService {
            inner,
            planner: Planner::new(mode),
        }
    }

    /// The planner (profiles, tallies, decision count).
    pub fn planner(&self) -> &Planner {
        &self.planner
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &ServiceInstance {
        &self.inner
    }

    /// Unwraps the backend, discarding learned profiles.
    pub fn into_inner(self) -> ServiceInstance {
        self.inner
    }

    /// The backend's unplanned route for a check batch of `len`
    /// requests — what cold-start serves. Mirrors each backend's
    /// `check_batch_with_stats` dispatch.
    fn default_check_plan(&self, len: usize) -> CheckPlan {
        match &self.inner {
            ServiceInstance::Single(_) => CheckPlan::Targeted,
            ServiceInstance::Sharded(_) | ServiceInstance::Networked(_) if len <= 1 => {
                CheckPlan::Targeted
            }
            ServiceInstance::Sharded(_) | ServiceInstance::Networked(_) => {
                CheckPlan::Audience(BundleStrategy::Batched)
            }
        }
    }
}

impl AccessService for PlannedService {
    fn describe(&self) -> String {
        format!(
            "planned({}, {})",
            self.inner.reads().describe(),
            self.planner.mode.as_str()
        )
    }

    fn num_members(&self) -> usize {
        self.inner.reads().num_members()
    }

    fn num_relationships(&self) -> usize {
        self.inner.reads().num_relationships()
    }

    fn resolve_user(&self, name: &str) -> Result<NodeId, EvalError> {
        self.inner.reads().resolve_user(name)
    }

    fn member_name(&self, member: NodeId) -> &str {
        self.inner.member_name(member)
    }

    fn label_name(&self, label: LabelId) -> &str {
        self.inner.label_name(label)
    }

    fn check(&self, resource: ResourceId, requester: NodeId) -> Result<Decision, EvalError> {
        Ok(self.check_with_stats(resource, requester)?.0)
    }

    fn check_with_stats(
        &self,
        resource: ResourceId,
        requester: NodeId,
    ) -> Result<(Decision, ReadStats), EvalError> {
        let start = Instant::now();
        let (decision, stats) = self.inner.reads().check_with_stats(resource, requester)?;
        self.planner
            .observe_targeted(resource, start.elapsed().as_nanos() as u64, &stats);
        Ok((decision, stats))
    }

    fn check_batch(
        &self,
        requests: &[(ResourceId, NodeId)],
        threads: usize,
    ) -> Result<Vec<Decision>, EvalError> {
        Ok(self.check_batch_with_stats(requests, threads)?.0)
    }

    fn check_batch_with_stats(
        &self,
        requests: &[(ResourceId, NodeId)],
        threads: usize,
    ) -> Result<(Vec<Decision>, ReadStats), EvalError> {
        let plan = self
            .planner
            .plan_checks(requests, self.default_check_plan(requests.len()));
        let start = Instant::now();
        let (decisions, stats) = self
            .inner
            .reads()
            .check_batch_forced(requests, threads, plan)?;
        self.planner
            .observe_checks(requests, plan, start.elapsed().as_nanos() as u64, &stats);
        Ok((decisions, stats))
    }

    fn audience_batch_with_stats(
        &self,
        rids: &[ResourceId],
    ) -> Result<(Vec<Vec<NodeId>>, ReadStats), EvalError> {
        let strategy = self.planner.plan_audience(rids);
        let start = Instant::now();
        let (audiences, stats) = self.inner.reads().audience_batch_forced(rids, strategy)?;
        self.planner.observe_audience(
            rids,
            strategy,
            start.elapsed().as_nanos() as u64,
            &stats,
            &audiences,
        );
        Ok((audiences, stats))
    }

    fn query_audience_bundle(
        &self,
        queries: &[(NodeId, &str)],
    ) -> Result<Vec<Vec<NodeId>>, EvalError> {
        // Read-only ad-hoc queries carry no ResourceId to profile, so
        // they bypass the planner and ride the backend's default
        // bundle strategy.
        self.inner.reads().query_audience_bundle(queries)
    }

    fn explain(
        &self,
        resource: ResourceId,
        requester: NodeId,
    ) -> Result<Option<Explanation>, EvalError> {
        Ok(self.explain_with_stats(resource, requester)?.0)
    }

    fn explain_with_stats(
        &self,
        resource: ResourceId,
        requester: NodeId,
    ) -> Result<(Option<Explanation>, ReadStats), EvalError> {
        let start = Instant::now();
        let (explanation, stats) = self.inner.reads().explain_with_stats(resource, requester)?;
        self.planner
            .observe_targeted(resource, start.elapsed().as_nanos() as u64, &stats);
        Ok((explanation, stats))
    }

    fn cache_stats(&self) -> (u64, u64) {
        self.inner.reads().cache_stats()
    }

    fn stats_supported(&self) -> bool {
        self.inner.reads().stats_supported()
    }

    fn audience_batch_forced(
        &self,
        rids: &[ResourceId],
        strategy: BundleStrategy,
    ) -> Result<(Vec<Vec<NodeId>>, ReadStats), EvalError> {
        // An explicit force outranks the planner; still observe, so
        // forced traffic warms the profile.
        let start = Instant::now();
        let (audiences, stats) = self.inner.reads().audience_batch_forced(rids, strategy)?;
        self.planner.observe_audience(
            rids,
            strategy,
            start.elapsed().as_nanos() as u64,
            &stats,
            &audiences,
        );
        Ok((audiences, stats))
    }

    fn check_batch_forced(
        &self,
        requests: &[(ResourceId, NodeId)],
        threads: usize,
        plan: CheckPlan,
    ) -> Result<(Vec<Decision>, ReadStats), EvalError> {
        let start = Instant::now();
        let (decisions, stats) = self
            .inner
            .reads()
            .check_batch_forced(requests, threads, plan)?;
        self.planner
            .observe_checks(requests, plan, start.elapsed().as_nanos() as u64, &stats);
        Ok((decisions, stats))
    }
}

impl MutateService for PlannedService {
    fn add_user(&mut self, name: &str) -> NodeId {
        self.inner.writes().add_user(name)
    }

    fn set_user_attr(&mut self, user: NodeId, key: &str, value: AttrValue) {
        self.inner.writes().set_user_attr(user, key, value)
    }

    fn add_relationship(&mut self, src: NodeId, label: &str, dst: NodeId) {
        self.inner.writes().add_relationship(src, label, dst)
    }

    fn add_resource(&mut self, owner: NodeId) -> ResourceId {
        self.inner.writes().add_resource(owner)
    }

    fn add_rule(&mut self, resource: ResourceId, path_text: &str) -> Result<(), EvalError> {
        self.inner.writes().add_rule(resource, path_text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ReadBatch;

    fn rid(n: u64) -> ResourceId {
        ResourceId(n)
    }

    fn stats(conditions: usize, states: usize, exported: usize) -> ReadStats {
        ReadStats {
            conditions,
            traversals: 1,
            rounds: 1,
            states_expanded: states,
            exported_states: exported,
            plan_states: 0,
            expr_states: 0,
        }
    }

    #[test]
    fn ewma_decay_math_is_exact() {
        let p = Planner::new(PlannerMode::Adaptive);
        p.observe_audience(
            &[rid(0)],
            BundleStrategy::Batched,
            100,
            &stats(2, 40, 10),
            &[vec![NodeId(1)]],
        );
        let prof = p.profile(rid(0)).unwrap();
        // First sample seeds directly.
        assert_eq!(prof.costs[S_BATCHED].cost_ns, 100.0);
        assert_eq!(prof.conditions, 2.0);
        assert_eq!(prof.boundary_rate, 0.25);
        assert_eq!(prof.audience_size, 1.0);

        p.observe_audience(
            &[rid(0)],
            BundleStrategy::Batched,
            200,
            &stats(4, 40, 0),
            &[vec![NodeId(1), NodeId(2), NodeId(3)]],
        );
        let prof = p.profile(rid(0)).unwrap();
        // Costs seed with the arithmetic mean: (100 + 200) / 2.
        assert_eq!(prof.costs[S_BATCHED].cost_ns, 150.0);
        assert_eq!(prof.costs[S_BATCHED].samples, 2);
        // Shape fields blend with α = 0.25 from the first sample on.
        assert_eq!(prof.conditions, 2.5);
        assert_eq!(prof.boundary_rate, 0.1875);
        assert_eq!(prof.audience_size, 1.5);

        // Two more samples complete the mean seeding…
        for ns in [300, 400] {
            p.observe_audience(
                &[rid(0)],
                BundleStrategy::Batched,
                ns,
                &stats(4, 40, 0),
                &[vec![NodeId(1)]],
            );
        }
        let prof = p.profile(rid(0)).unwrap();
        assert_eq!(prof.costs[S_BATCHED].cost_ns, 250.0);
        // …after which the EWMA takes over: 250 + 0.25·(450−250).
        p.observe_audience(
            &[rid(0)],
            BundleStrategy::Batched,
            450,
            &stats(4, 40, 0),
            &[vec![NodeId(1)]],
        );
        let prof = p.profile(rid(0)).unwrap();
        assert_eq!(prof.costs[S_BATCHED].cost_ns, 300.0);
        assert_eq!(prof.costs[S_BATCHED].samples, 5);
    }

    #[test]
    fn prefix_share_ewma_math_is_exact() {
        let p = Planner::new(PlannerMode::Adaptive);
        let audiences = [vec![NodeId(1)]];
        // First trie-planned census: 100 per-condition states collapsed
        // to 50 plan states → share 0.5 seeds the field directly.
        let mut s = stats(2, 40, 0);
        s.plan_states = 50;
        s.expr_states = 100;
        p.observe_audience(&[rid(0)], BundleStrategy::Batched, 100, &s, &audiences);
        let prof = p.profile(rid(0)).unwrap();
        assert_eq!(prof.prefix_share, 0.5);

        // Second census at share 0.25 blends with α = ¼:
        // 0.5 + 0.25·(0.25 − 0.5).
        s.plan_states = 75;
        p.observe_audience(&[rid(0)], BundleStrategy::Batched, 100, &s, &audiences);
        let prof = p.profile(rid(0)).unwrap();
        assert_eq!(prof.prefix_share, 0.4375);

        // A grouped-mode census (no plan compiled → expr_states == 0)
        // reports no share and must leave the EWMA untouched.
        p.observe_audience(
            &[rid(0)],
            BundleStrategy::Batched,
            100,
            &stats(2, 40, 0),
            &audiences,
        );
        let prof = p.profile(rid(0)).unwrap();
        assert_eq!(prof.prefix_share, 0.4375);
    }

    #[test]
    fn near_tie_breaks_on_learned_prefix_share() {
        let audiences = [vec![NodeId(1)]];
        // Costs within the 15% near-tie margin on both planners; only
        // the learned prefix overlap differs.
        let learn = |share_states: usize| {
            let p = Planner::new(PlannerMode::Adaptive);
            let mut batched_stats = stats(1, 10, 0);
            batched_stats.plan_states = share_states;
            batched_stats.expr_states = 100;
            for _ in 0..MIN_ARM_SAMPLES {
                p.observe_audience(
                    &[rid(0)],
                    BundleStrategy::Batched,
                    1_000,
                    &batched_stats,
                    &audiences,
                );
                p.observe_audience(
                    &[rid(0)],
                    BundleStrategy::PerCondition,
                    950,
                    &stats(1, 10, 0),
                    &audiences,
                );
            }
            p
        };
        // Disjoint bundle: the plan holds exactly the per-condition
        // states (share 0) — per-condition wins the tie.
        let disjoint = learn(100);
        assert_eq!(
            disjoint.plan_audience(&[rid(0)]),
            BundleStrategy::PerCondition
        );
        // Overlapping bundle: half the states shared — the trie plan
        // wins the tie even though per-condition measured nominally
        // cheaper.
        let shared = learn(50);
        assert_eq!(shared.plan_audience(&[rid(0)]), BundleStrategy::Batched);
        // Outside the margin the measured argmin still rules.
        let p = learn(50);
        for _ in 0..8 {
            p.observe_audience(
                &[rid(0)],
                BundleStrategy::PerCondition,
                100,
                &stats(1, 10, 0),
                &audiences,
            );
        }
        assert_eq!(p.plan_audience(&[rid(0)]), BundleStrategy::PerCondition);
    }

    #[test]
    fn cold_start_serves_the_defaults() {
        let p = Planner::new(PlannerMode::Adaptive);
        assert_eq!(p.plan_audience(&[rid(0), rid(1)]), BundleStrategy::Batched);
        let reqs = [(rid(0), NodeId(0)), (rid(1), NodeId(1))];
        assert_eq!(
            p.plan_checks(&reqs, CheckPlan::Targeted),
            CheckPlan::Targeted
        );
        assert_eq!(
            p.plan_checks(&reqs, CheckPlan::Audience(BundleStrategy::Batched)),
            CheckPlan::Audience(BundleStrategy::Batched)
        );
    }

    #[test]
    fn forced_modes_never_consult_profiles() {
        let batch = Planner::new(PlannerMode::ForcedBatch);
        let per = Planner::new(PlannerMode::ForcedPerCondition);
        let reqs = [(rid(0), NodeId(0))];
        assert_eq!(batch.plan_audience(&[rid(0)]), BundleStrategy::Batched);
        assert_eq!(per.plan_audience(&[rid(0)]), BundleStrategy::PerCondition);
        assert_eq!(
            batch.plan_checks(&reqs, CheckPlan::Targeted),
            CheckPlan::Audience(BundleStrategy::Batched)
        );
        assert_eq!(
            per.plan_checks(&reqs, CheckPlan::Audience(BundleStrategy::Batched)),
            CheckPlan::Targeted
        );
    }

    #[test]
    fn adaptive_picks_the_measured_cheaper_engine() {
        let p = Planner::new(PlannerMode::Adaptive);
        let audiences = [vec![NodeId(1)]];
        // Meet the evidence floor on both arms.
        for _ in 0..MIN_ARM_SAMPLES {
            p.observe_audience(
                &[rid(0)],
                BundleStrategy::Batched,
                9_000,
                &stats(1, 10, 0),
                &audiences,
            );
            p.observe_audience(
                &[rid(0)],
                BundleStrategy::PerCondition,
                1_000,
                &stats(1, 10, 0),
                &audiences,
            );
        }
        assert_eq!(p.plan_audience(&[rid(0)]), BundleStrategy::PerCondition);
        // Flip the evidence; decay converges on the new winner.
        for _ in 0..8 {
            p.observe_audience(
                &[rid(0)],
                BundleStrategy::Batched,
                100,
                &stats(1, 10, 0),
                &audiences,
            );
            p.observe_audience(
                &[rid(0)],
                BundleStrategy::PerCondition,
                20_000,
                &stats(1, 10, 0),
                &audiences,
            );
        }
        assert_eq!(p.plan_audience(&[rid(0)]), BundleStrategy::Batched);
    }

    #[test]
    fn periodic_probe_refreshes_the_least_sampled_candidate() {
        let p = Planner::new(PlannerMode::Adaptive);
        let audiences = [vec![NodeId(1)]];
        // Both arms past the evidence floor — batched cheap and
        // better-sampled, so the argmin alone would never run
        // per-condition again.
        for _ in 0..MIN_ARM_SAMPLES + 1 {
            p.observe_audience(
                &[rid(0)],
                BundleStrategy::Batched,
                10,
                &stats(1, 10, 0),
                &audiences,
            );
        }
        for _ in 0..MIN_ARM_SAMPLES {
            p.observe_audience(
                &[rid(0)],
                BundleStrategy::PerCondition,
                90_000,
                &stats(1, 10, 0),
                &audiences,
            );
        }
        let mut probed = false;
        for _ in 0..PROBE_PERIOD {
            if p.plan_audience(&[rid(0)]) == BundleStrategy::PerCondition {
                probed = true;
            }
        }
        assert!(
            probed,
            "one decision per period must re-probe the least-sampled arm"
        );
    }

    #[test]
    fn evidence_floor_alternates_arms_before_exploiting() {
        let p = Planner::new(PlannerMode::Adaptive);
        let audiences = [vec![NodeId(1)]];
        // Drive audience planning closed-loop: execute whatever the
        // planner prescribes, with batched cheap and per-condition
        // expensive. The floor must alternate arms — the one
        // expensive probe never locks in, and argmin lands on batched.
        let mut per_cond_runs = 0;
        for _ in 0..2 * MIN_ARM_SAMPLES {
            let strategy = p.plan_audience(&[rid(0)]);
            let cost = match strategy {
                BundleStrategy::Batched => 10,
                BundleStrategy::PerCondition => {
                    per_cond_runs += 1;
                    90_000
                }
            };
            p.observe_audience(&[rid(0)], strategy, cost, &stats(1, 10, 0), &audiences);
        }
        assert_eq!(per_cond_runs, MIN_ARM_SAMPLES, "arms must alternate");
        let prof = p.profile(rid(0)).unwrap();
        assert_eq!(prof.costs[S_BATCHED].samples, MIN_ARM_SAMPLES);
        assert_eq!(prof.costs[S_PER_CONDITION].samples, MIN_ARM_SAMPLES);
        assert_eq!(p.plan_audience(&[rid(0)]), BundleStrategy::Batched);

        // Same discipline for check routing: all three routes gather
        // MIN_ARM_SAMPLES before the cheap targeted default wins.
        let reqs = [(rid(0), NodeId(1))];
        for _ in 0..3 * MIN_ARM_SAMPLES {
            let plan = p.plan_checks(&reqs, CheckPlan::Targeted);
            let cost = match plan {
                CheckPlan::Targeted => 10,
                CheckPlan::Audience(BundleStrategy::Batched) => 70_000,
                CheckPlan::Audience(BundleStrategy::PerCondition) => 80_000,
            };
            p.observe_checks(&reqs, plan, cost, &stats(1, 10, 0));
        }
        let prof = p.profile(rid(0)).unwrap();
        assert!(prof.costs[S_TARGETED].samples >= MIN_ARM_SAMPLES);
        assert!(prof.check_costs[S_BATCHED].samples >= MIN_ARM_SAMPLES);
        assert!(prof.check_costs[S_PER_CONDITION].samples >= MIN_ARM_SAMPLES);
        assert_eq!(
            p.plan_checks(&reqs, CheckPlan::Targeted),
            CheckPlan::Targeted
        );
    }

    #[test]
    fn targeted_gate_respects_profiled_condition_count() {
        let p = Planner::new(PlannerMode::Adaptive);
        let reqs = [(rid(0), NodeId(1))];
        // Heavy policy (4 conditions) with targeted measured cheapest:
        // the gate must still refuse the targeted route.
        for _ in 0..MIN_ARM_SAMPLES {
            p.observe_checks(&reqs, CheckPlan::Targeted, 10, &stats(4, 100, 0));
            p.observe_checks(
                &reqs,
                CheckPlan::Audience(BundleStrategy::Batched),
                50_000,
                &stats(4, 100, 0),
            );
            p.observe_checks(
                &reqs,
                CheckPlan::Audience(BundleStrategy::PerCondition),
                40_000,
                &stats(4, 100, 0),
            );
        }
        let plan = p.plan_checks(&reqs, CheckPlan::Audience(BundleStrategy::Batched));
        assert_eq!(plan, CheckPlan::Audience(BundleStrategy::PerCondition));
    }

    #[test]
    fn profiles_survive_republication_under_racing_readers() {
        let mut svc = Deployment::online().planned(PlannerMode::Adaptive);
        let alice = svc.add_user("Alice");
        let mut members = vec![alice];
        for i in 0..24 {
            let m = svc.add_user(&format!("m{i}"));
            svc.add_relationship(alice, "friend", m);
            members.push(m);
        }
        let album = svc.add_resource(alice);
        svc.add_rule(album, "friend+[1,2]").unwrap();

        // Racing readers plan + observe concurrently.
        std::thread::scope(|scope| {
            for _ in 0..4 {
                let svc = &svc;
                let probe = members[3];
                scope.spawn(move || {
                    for _ in 0..16 {
                        svc.audience_batch(&[album]).unwrap();
                        svc.check_batch(&[(album, probe)], 1).unwrap();
                    }
                });
            }
        });
        let before = svc.planner().profile(album).expect("profile learned");
        assert!(before.shape_samples > 0);
        let decisions = svc.planner().decisions();

        // Mutate (stales the epoch), then read again: the next read
        // republishes the snapshot while the profile table carries on.
        let zed = svc.add_user("Zed");
        svc.add_relationship(alice, "friend", zed);
        let audience = svc.audience(album).unwrap();
        assert!(audience.contains(&zed));
        let after = svc.planner().profile(album).expect("profile survived");
        assert!(after.shape_samples > before.shape_samples);
        assert!(svc.planner().decisions() > decisions);
    }

    #[test]
    fn read_batch_routes_through_the_planner() {
        let mut svc = Deployment::sharded(2, 7).planned(PlannerMode::Adaptive);
        let alice = svc.add_user("Alice");
        let bob = svc.add_user("Bob");
        svc.add_relationship(alice, "friend", bob);
        let album = svc.add_resource(alice);
        svc.add_rule(album, "friend+[1]").unwrap();
        let batch = ReadBatch::new()
            .check(album, bob)
            .audience(album)
            .explain(album, bob);
        let responses = svc.read_batch(&batch).unwrap();
        assert_eq!(responses[0].decision, Some(Decision::Grant));
        assert_eq!(responses[1].audience, Some(vec![alice, bob]));
        assert!(responses[2].explanation.is_some());
        let tally = svc.planner().executed();
        assert!(tally.batched + tally.per_condition + tally.targeted >= 3);
    }
}
