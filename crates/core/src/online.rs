//! The online evaluation engine: constrained product BFS over the social
//! graph.
//!
//! This is the paper's §1 baseline (*"apply a Depth-First Search
//! algorithm (respectively, Breadth-First Search algorithm) together
//! with the constraints to reduce the search space"*) and the semantic
//! **ground truth** the join-index engine is property-tested against.
//!
//! The search runs over product states `(member, step, depth-in-step)`:
//!
//! * from `(v, i, d)` every edge labeled `label_i` in direction `dir_i`
//!   leads to `(u, i, d+1)`, as long as `d+1` does not exceed the step's
//!   saturation depth (unbounded depth sets saturate: once `d` reaches
//!   the open tail every further depth behaves identically, so the state
//!   space stays finite);
//! * a state `(u, i, d)` with `d ∈ I_i` whose attribute conditions
//!   accept `u` *completes* step `i`: it matches the whole path when `i`
//!   is the last step, and otherwise ε-moves to `(u, i+1, 0)`.
//!
//! Matching is over **walks** — members and relationships may repeat.

use crate::path::PathExpr;
use socialreach_graph::{Direction, EdgeId, NodeId, SocialGraph};
use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};

/// Counters describing how much work an evaluation performed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Product states dequeued.
    pub states_visited: usize,
    /// Edge traversals attempted.
    pub edges_scanned: usize,
}

/// One traversed relationship of a witness walk: the edge plus the
/// direction it was taken in (`true` = along its orientation).
pub type WitnessHop = (EdgeId, bool);

/// Result of evaluating one access condition online.
#[derive(Clone, Debug)]
pub struct OnlineOutcome {
    /// Whether the target requester matched (always `false` when no
    /// target was supplied).
    pub granted: bool,
    /// Every member that matches the full path (the audience) — only
    /// populated when no early-exit target was supplied.
    pub matched: Vec<NodeId>,
    /// A shortest witness walk to the target, when granted.
    pub witness: Option<Vec<WitnessHop>>,
    /// Work counters.
    pub stats: SearchStats,
}

/// Product state: (member, step index, depth within step).
type State = (u32, u16, u32);

/// Evaluates `path` from `owner`.
///
/// With `target = Some(v)` the search exits as soon as `v` matches and
/// reconstructs a witness walk. With `target = None` it explores the
/// whole product space and returns the full audience (sorted).
pub fn evaluate(
    g: &SocialGraph,
    owner: NodeId,
    path: &PathExpr,
    target: Option<NodeId>,
) -> OnlineOutcome {
    let mut stats = SearchStats::default();

    // Empty path: only the owner matches.
    if path.is_empty() {
        let granted = target == Some(owner);
        return OnlineOutcome {
            granted,
            matched: if target.is_none() { vec![owner] } else { vec![] },
            witness: granted.then(Vec::new),
            stats,
        };
    }

    let steps = &path.steps;
    let sat: Vec<u32> = steps.iter().map(|s| s.depths.saturation()).collect();

    // parent[state] = (previous state, hop taken), for witness
    // reconstruction; also doubles as the visited set.
    let mut parent: HashMap<State, Option<(State, Option<WitnessHop>)>> = HashMap::new();
    let mut queue: VecDeque<State> = VecDeque::new();
    let start: State = (owner.0, 0, 0);
    parent.insert(start, None);
    queue.push_back(start);

    let mut matched: Vec<NodeId> = Vec::new();
    let mut matched_seen = vec![false; g.num_nodes()];
    let mut granted_state: Option<State> = None;

    'search: while let Some(state) = queue.pop_front() {
        let (v, i, d) = state;
        stats.states_visited += 1;
        let step = &steps[i as usize];
        let node = NodeId(v);

        // Step completion: d hops taken, d ∈ I_i, conditions accept v.
        if d >= 1 && step.depths.contains(d) && step.conds.iter().all(|c| c.eval(g.node_attrs(node)))
        {
            if (i as usize) == steps.len() - 1 {
                if !matched_seen[node.index()] {
                    matched_seen[node.index()] = true;
                    matched.push(node);
                }
                if target == Some(node) {
                    granted_state = Some(state);
                    break 'search;
                }
            } else {
                let eps: State = (v, i + 1, 0);
                if let Entry::Vacant(e) = parent.entry(eps) {
                    e.insert(Some((state, None)));
                    queue.push_back(eps);
                }
            }
        }

        // Edge expansion within step i.
        if d >= sat[i as usize] && !step.depths.is_unbounded() {
            continue; // bounded step exhausted
        }
        let d_next = (d + 1).min(sat[i as usize]);
        let out = matches!(step.dir, Direction::Out | Direction::Both);
        let inc = matches!(step.dir, Direction::In | Direction::Both);
        if out {
            for (eid, rec) in g.out_edges(node) {
                stats.edges_scanned += 1;
                if rec.label != step.label {
                    continue;
                }
                let next: State = (rec.dst.0, i, d_next);
                if let Entry::Vacant(e) = parent.entry(next) {
                    e.insert(Some((state, Some((eid, true)))));
                    queue.push_back(next);
                }
            }
        }
        if inc {
            for (eid, rec) in g.in_edges(node) {
                stats.edges_scanned += 1;
                if rec.label != step.label {
                    continue;
                }
                let next: State = (rec.src.0, i, d_next);
                if let Entry::Vacant(e) = parent.entry(next) {
                    e.insert(Some((state, Some((eid, false)))));
                    queue.push_back(next);
                }
            }
        }
    }

    let witness = granted_state.map(|end| {
        let mut hops = Vec::new();
        let mut cur = end;
        while let Some(Some((prev, hop))) = parent.get(&cur) {
            if let Some(h) = hop {
                hops.push(*h);
            }
            cur = *prev;
        }
        hops.reverse();
        hops
    });

    matched.sort_unstable();
    OnlineOutcome {
        granted: granted_state.is_some(),
        matched,
        witness,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::{parse_path, PathExpr};

    fn parse(g: &mut SocialGraph, text: &str) -> PathExpr {
        parse_path(text, g.vocab_mut()).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Alice -friend-> Bob -friend-> Carol -colleague-> Dave
    ///   \--friend-> Eve
    fn chain() -> SocialGraph {
        let mut g = SocialGraph::new();
        let a = g.add_node("Alice");
        let b = g.add_node("Bob");
        let c = g.add_node("Carol");
        let d = g.add_node("Dave");
        let e = g.add_node("Eve");
        g.connect(a, "friend", b);
        g.connect(b, "friend", c);
        g.connect(c, "colleague", d);
        g.connect(a, "friend", e);
        g
    }

    fn names(g: &SocialGraph, nodes: &[NodeId]) -> Vec<String> {
        nodes.iter().map(|&n| g.node_name(n).to_owned()).collect()
    }

    #[test]
    fn single_hop_out() {
        let mut g = chain();
        let p = parse(&mut g, "friend+[1]");
        let alice = g.node_by_name("Alice").unwrap();
        let out = evaluate(&g, alice, &p, None);
        assert_eq!(names(&g, &out.matched), vec!["Bob", "Eve"]);
    }

    #[test]
    fn depth_set_reaches_exact_levels() {
        let mut g = chain();
        let alice = g.node_by_name("Alice").unwrap();
        let p2 = parse(&mut g, "friend+[2]");
        let out = evaluate(&g, alice, &p2, None);
        assert_eq!(names(&g, &out.matched), vec!["Carol"]);
        let p12 = parse(&mut g, "friend+[1,2]");
        let out = evaluate(&g, alice, &p12, None);
        assert_eq!(names(&g, &out.matched), vec!["Bob", "Carol", "Eve"]);
    }

    #[test]
    fn multi_step_path() {
        let mut g = chain();
        let alice = g.node_by_name("Alice").unwrap();
        let p = parse(&mut g, "friend+[1,2]/colleague+[1]");
        let out = evaluate(&g, alice, &p, None);
        assert_eq!(names(&g, &out.matched), vec!["Dave"]);
    }

    #[test]
    fn incoming_direction() {
        let mut g = chain();
        let bob = g.node_by_name("Bob").unwrap();
        let p = parse(&mut g, "friend-[1]");
        let out = evaluate(&g, bob, &p, None);
        assert_eq!(names(&g, &out.matched), vec!["Alice"]);
    }

    #[test]
    fn both_direction_unions_orientations() {
        let mut g = chain();
        let bob = g.node_by_name("Bob").unwrap();
        let p = parse(&mut g, "friend*[1]");
        let out = evaluate(&g, bob, &p, None);
        assert_eq!(names(&g, &out.matched), vec!["Alice", "Carol"]);
    }

    #[test]
    fn unbounded_depth_saturates() {
        let mut g = chain();
        let alice = g.node_by_name("Alice").unwrap();
        let p = parse(&mut g, "friend+[1..]");
        let out = evaluate(&g, alice, &p, None);
        assert_eq!(names(&g, &out.matched), vec!["Bob", "Carol", "Eve"]);
    }

    #[test]
    fn unbounded_with_hole_skips_depths() {
        // friend+[3..] from Alice: only Carol is 3+ friend-hops away?
        // Alice -> Bob (1) -> Carol (2); chain ends. Nothing at 3+.
        let mut g = chain();
        let alice = g.node_by_name("Alice").unwrap();
        let p = parse(&mut g, "friend+[3..]");
        let out = evaluate(&g, alice, &p, None);
        assert!(out.matched.is_empty());
    }

    #[test]
    fn walks_may_revisit_nodes() {
        // Alice <-friend-> Bob (mutual), query friend+[3]: walks
        // A->B->A->B land on Bob at depth 3.
        let mut g = SocialGraph::new();
        let a = g.add_node("Alice");
        let b = g.add_node("Bob");
        g.connect(a, "friend", b);
        g.connect(b, "friend", a);
        let p = parse(&mut g, "friend+[3]");
        let out = evaluate(&g, a, &p, None);
        assert_eq!(names(&g, &out.matched), vec!["Bob"]);
    }

    #[test]
    fn attribute_conditions_filter_endpoints() {
        let mut g = chain();
        let alice = g.node_by_name("Alice").unwrap();
        let bob = g.node_by_name("Bob").unwrap();
        let eve = g.node_by_name("Eve").unwrap();
        g.set_node_attr(bob, "age", 17i64);
        g.set_node_attr(eve, "age", 30i64);
        let p = parse(&mut g, "friend+[1]{age>=18}");
        let out = evaluate(&g, alice, &p, None);
        assert_eq!(names(&g, &out.matched), vec!["Eve"]);
    }

    #[test]
    fn conditions_apply_at_step_end_not_mid_run() {
        // friend+[2]{age>=18}: the intermediate member (Bob, 17) is only
        // passed through; the condition tests the endpoint (Carol, 20).
        let mut g = chain();
        let alice = g.node_by_name("Alice").unwrap();
        let bob = g.node_by_name("Bob").unwrap();
        let carol = g.node_by_name("Carol").unwrap();
        g.set_node_attr(bob, "age", 17i64);
        g.set_node_attr(carol, "age", 20i64);
        let p = parse(&mut g, "friend+[2]{age>=18}");
        let out = evaluate(&g, alice, &p, None);
        assert_eq!(names(&g, &out.matched), vec!["Carol"]);
    }

    #[test]
    fn target_early_exit_and_witness() {
        let mut g = chain();
        let alice = g.node_by_name("Alice").unwrap();
        let dave = g.node_by_name("Dave").unwrap();
        let p = parse(&mut g, "friend+[1,2]/colleague+[1]");
        let out = evaluate(&g, alice, &p, Some(dave));
        assert!(out.granted);
        let witness = out.witness.expect("witness present on grant");
        assert_eq!(witness.len(), 3, "2 friend hops + 1 colleague hop");
        // Replay the witness: it must be a connected walk from Alice to
        // Dave.
        let mut at = alice;
        for (eid, forward) in witness {
            let rec = g.edge(eid);
            if forward {
                assert_eq!(rec.src, at);
                at = rec.dst;
            } else {
                assert_eq!(rec.dst, at);
                at = rec.src;
            }
        }
        assert_eq!(at, dave);
    }

    #[test]
    fn deny_when_no_matching_walk() {
        let mut g = chain();
        let alice = g.node_by_name("Alice").unwrap();
        let dave = g.node_by_name("Dave").unwrap();
        let p = parse(&mut g, "colleague+[1]");
        let out = evaluate(&g, alice, &p, Some(dave));
        assert!(!out.granted);
        assert!(out.witness.is_none());
    }

    #[test]
    fn empty_path_matches_owner_only() {
        let g = chain();
        let alice = g.node_by_name("Alice").unwrap();
        let bob = g.node_by_name("Bob").unwrap();
        let p = PathExpr::new(vec![]);
        assert!(evaluate(&g, alice, &p, Some(alice)).granted);
        assert!(!evaluate(&g, alice, &p, Some(bob)).granted);
        assert_eq!(evaluate(&g, alice, &p, None).matched, vec![alice]);
    }

    #[test]
    fn unknown_label_matches_nothing() {
        let mut g = chain();
        let alice = g.node_by_name("Alice").unwrap();
        let p = parse(&mut g, "enemy+[1]");
        let out = evaluate(&g, alice, &p, None);
        assert!(out.matched.is_empty());
    }

    #[test]
    fn stats_are_populated() {
        let mut g = chain();
        let alice = g.node_by_name("Alice").unwrap();
        let p = parse(&mut g, "friend+[1,2]/colleague+[1]");
        let out = evaluate(&g, alice, &p, None);
        assert!(out.stats.states_visited > 0);
        assert!(out.stats.edges_scanned > 0);
    }

    #[test]
    fn owner_can_be_in_their_own_audience_via_cycles() {
        // Mutual friendship: friend+[2] from Alice loops back to Alice.
        let mut g = SocialGraph::new();
        let a = g.add_node("Alice");
        let b = g.add_node("Bob");
        g.connect(a, "friend", b);
        g.connect(b, "friend", a);
        let p = parse(&mut g, "friend+[2]");
        let out = evaluate(&g, a, &p, None);
        assert_eq!(names(&g, &out.matched), vec!["Alice"]);
    }
}
