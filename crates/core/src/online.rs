//! The online evaluation engine: constrained product BFS over the social
//! graph.
//!
//! This is the paper's §1 baseline (*"apply a Depth-First Search
//! algorithm (respectively, Breadth-First Search algorithm) together
//! with the constraints to reduce the search space"*) and the semantic
//! **ground truth** the join-index engine is property-tested against.
//!
//! The search runs over product states `(member, step, depth-in-step)`:
//!
//! * from `(v, i, d)` every edge labeled `label_i` in direction `dir_i`
//!   leads to `(u, i, d+1)`, as long as `d+1` does not exceed the step's
//!   saturation depth (unbounded depth sets saturate: once `d` reaches
//!   the open tail every further depth behaves identically, so the state
//!   space stays finite);
//! * a state `(u, i, d)` with `d ∈ I_i` whose attribute conditions
//!   accept `u` *completes* step `i`: it matches the whole path when `i`
//!   is the last step, and otherwise ε-moves to `(u, i+1, 0)`.
//!
//! Matching is over **walks** — members and relationships may repeat.
//!
//! # Two implementations, one semantics
//!
//! * [`evaluate`] / [`evaluate_with_snapshot`] — the production engine:
//!   a level-synchronous BFS over a label-partitioned
//!   [`CsrSnapshot`], with flat dense visited/parent arrays indexed by
//!   `(step, depth) · |V| + member` and swap-buffer frontiers. A path
//!   step scans only the `O(deg_label)` matching CSR slice instead of
//!   filtering all `O(deg)` incident edges, and the hot loop touches no
//!   hash map or `VecDeque`.
//! * [`evaluate_reference`] — the original HashMap/VecDeque product BFS,
//!   retained verbatim as the executable specification. The flat engine
//!   is property-tested decision-for-decision against it
//!   (`tests/csr_differential.rs`), and degenerate inputs whose product
//!   space would make the dense arrays unreasonable (astronomical
//!   saturation depths) transparently fall back to it.
//!
//! Both traversals expand states in identical FIFO order, so audiences,
//! decisions and witness walks agree exactly — including
//! [`SearchStats::edges_scanned`], which on **both** engines counts
//! label-matching traversals only. The reference engine additionally
//! reports the non-matching edges it had to inspect and skip as
//! [`SearchStats::edges_filtered`]; the snapshot engine never even
//! looks at those, so its `edges_filtered` is always zero. The two
//! `edges_scanned` series therefore share an axis in experiments.
//!
//! # Batch audience evaluation
//!
//! [`evaluate_audience_batch`] answers the audience-dominant workload
//! ("who can see this post?" for a whole policy bundle) with a
//! **multi-source** flat BFS: up to 64 owners traverse together, each
//! product state carrying a bitmask of the sources that reached it, so
//! one scan of a `(node, label, direction)` CSR slice serves every
//! owner whose frontier touches that node — amortizing edge scans
//! across the bundle instead of re-walking the graph per condition.
//!
//! # Seeded mask engine (the sharded batch primitive)
//!
//! [`evaluate_audience_batch_seeded`] generalizes the mask BFS for the
//! sharded serving layer: the search enters the layered product space
//! at **arbitrary** `(member, step, depth, mask)` states and exports
//! the masked states it visits at *watched* members (a shard's ghost
//! replicas). Its visited/mask bookkeeping lives in a caller-owned
//! [`SeededBatchState`] that **persists across runs**, so the
//! cross-shard fixpoint can re-enter a shard round after round and pay
//! only for the *new* condition bits each round delivers — total work
//! stays linear in the explored region instead of re-traversing it per
//! round (and, because up to 64 conditions share each frontier pass,
//! linear in the region rather than in `conditions × region`). The
//! single-source seeded engine ([`evaluate_seeded`]) remains the
//! targeted-check/witness primitive; the mask engine is the audience
//! and batched-decision hot path.

use crate::path::PathExpr;
use socialreach_graph::csr::CsrSnapshot;
use socialreach_graph::{Direction, EdgeId, NodeId, SocialGraph};
use std::cell::RefCell;
use std::collections::hash_map::Entry;
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

/// Counters describing how much work an evaluation performed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Product states dequeued.
    pub states_visited: usize,
    /// Label-matching edge traversals. Both engines count exactly the
    /// edges whose label matches the active step, so the series is
    /// comparable across engines.
    pub edges_scanned: usize,
    /// Edges inspected and skipped because their label did not match.
    /// Only the reference engine pays this cost (it filters the full
    /// adjacency list); the snapshot engine's per-(node, label) slices
    /// never touch a non-matching edge, so it reports zero.
    pub edges_filtered: usize,
}

impl SearchStats {
    /// Element-wise accumulation (batch paths merge per-chunk counters).
    pub fn absorb(&mut self, other: &SearchStats) {
        self.states_visited += other.states_visited;
        self.edges_scanned += other.edges_scanned;
        self.edges_filtered += other.edges_filtered;
    }
}

/// One traversed relationship of a witness walk: the edge plus the
/// direction it was taken in (`true` = along its orientation).
pub type WitnessHop = (EdgeId, bool);

/// Result of evaluating one access condition online.
#[derive(Clone, Debug)]
pub struct OnlineOutcome {
    /// Whether the target requester matched (always `false` when no
    /// target was supplied).
    pub granted: bool,
    /// Every member that matches the full path (the audience) — only
    /// populated when no early-exit target was supplied.
    pub matched: Vec<NodeId>,
    /// A shortest witness walk to the target, when granted.
    pub witness: Option<Vec<WitnessHop>>,
    /// Work counters.
    pub stats: SearchStats,
}

impl OnlineOutcome {
    fn empty_path(owner: NodeId, target: Option<NodeId>) -> Self {
        let granted = target == Some(owner);
        OnlineOutcome {
            granted,
            matched: if target.is_none() {
                vec![owner]
            } else {
                vec![]
            },
            witness: granted.then(Vec::new),
            stats: SearchStats::default(),
        }
    }
}

// ---------------------------------------------------------------------
// Flat-array snapshot engine
// ---------------------------------------------------------------------

/// Cap on `layers · |V|` dense state slots (64 MiB of visited stamps).
/// Above it the reference engine's sparse bookkeeping wins.
pub(crate) const MAX_FLAT_STATES: u64 = 1 << 24;
/// Cap on the number of `(step, depth)` layers by themselves, so a
/// degenerate `label+[1..2^30]` cannot force a huge layer table.
pub(crate) const MAX_FLAT_LAYERS: u64 = 1 << 20;
/// `parent_hop` packs `edge id << 1 | forward`; this marks ε-moves and
/// the start state.
const HOP_NONE: u32 = u32::MAX;

/// Reusable per-thread search buffers, epoch-stamped so reuse costs
/// `O(1)` instead of a clear per query. Frontier entries pack
/// `(layer << 32) | member` so the hot loop decodes with shifts instead
/// of division; the flat array index is `layer · |V| + member`.
#[derive(Default)]
struct Scratch {
    epoch: u32,
    visited: Vec<u32>,
    matched_epoch: Vec<u32>,
    frontier: Vec<u64>,
    next: Vec<u64>,
    parent_state: Vec<u32>,
    parent_hop: Vec<u32>,
    /// Per-path layer table, rebuilt per call without reallocating.
    layers: Vec<LayerInfo>,
    /// Multi-source batch BFS: source bits ever arrived at a state.
    seen_mask: Vec<u64>,
    /// Source bits that arrived since the state was last processed.
    pending_mask: Vec<u64>,
    /// Epoch stamps validating `seen_mask`/`pending_mask`.
    mask_epoch: Vec<u32>,
    /// Per-member source bits already recorded in an audience.
    matched_mask: Vec<u64>,
    /// Epoch stamps validating `matched_mask`.
    matched_mask_epoch: Vec<u32>,
}

impl Scratch {
    /// Advances and returns the reuse epoch, clearing every stamp array
    /// on the (rare) wrap so stale stamps can never alias a new search.
    fn next_epoch(&mut self) -> u32 {
        if self.epoch == u32::MAX {
            self.visited.fill(0);
            self.matched_epoch.fill(0);
            self.mask_epoch.fill(0);
            self.matched_mask_epoch.fill(0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.epoch
    }
}

/// Everything about a `(step, depth)` layer that is constant across its
/// `|V|` states, precomputed once per call so the per-state loop is
/// table lookups: depth-set membership, last-step flag, the ε-target
/// layer, and the edge-expansion target layer.
#[derive(Clone, Copy, Debug)]
struct LayerInfo {
    /// Index of the step this layer belongs to.
    step: u16,
    /// `d >= 1 && d ∈ I_step`: states here may complete the step.
    completes: bool,
    /// This is the path's final step (completion ⇒ match).
    last: bool,
    /// Layer id of `(step+1, 0)` for ε-moves (unused when `last`).
    eps_layer: u32,
    /// States here may take another `label_step` edge.
    expands: bool,
    /// Layer id reached by that edge (`min(d+1, sat)` of the same step).
    next_layer: u32,
}

/// Fills `layers` with the dense per-(step, depth) layer table of
/// `steps` (shared by the single-source and batch engines).
fn fill_layer_table(steps: &[crate::path::Step], layers: &mut Vec<LayerInfo>) {
    layers.clear();
    let mut base = 0u32;
    for (i, step) in steps.iter().enumerate() {
        let sat = step.depths.saturation();
        let unbounded = step.depths.is_unbounded();
        for d in 0..=sat {
            layers.push(LayerInfo {
                step: i as u16,
                completes: d >= 1 && step.depths.contains(d),
                last: i == steps.len() - 1,
                eps_layer: base + sat + 1, // first layer of step i+1
                expands: d < sat || unbounded,
                next_layer: base + (d + 1).min(sat),
            });
        }
        base += sat + 1;
    }
}

/// `(v_count, layer_count, total_states)` when the dense product space
/// of `path` over `snap` is reasonable, `None` when the reference
/// engine's sparse bookkeeping should take over.
fn flat_dimensions(snap: &CsrSnapshot, path: &PathExpr) -> Option<(u32, u64, usize)> {
    let num_nodes = snap.num_nodes() as u64;
    let layer_count: u64 = path
        .steps
        .iter()
        .map(|s| s.depths.saturation() as u64 + 1)
        .sum();
    if num_nodes == 0
        || layer_count > MAX_FLAT_LAYERS
        || layer_count * num_nodes > MAX_FLAT_STATES
        || snap.num_edges() as u64 >= u64::from(HOP_NONE >> 1)
    {
        return None;
    }
    Some((
        num_nodes as u32,
        layer_count,
        (layer_count * num_nodes) as usize,
    ))
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::default();
    /// One cached snapshot per thread for callers that evaluate against
    /// a bare `&SocialGraph` (the engine layer caches its own shared
    /// snapshot; see `Enforcer`).
    static SNAPSHOT: RefCell<Option<Rc<CsrSnapshot>>> = const { RefCell::new(None) };
    /// `(topology generation, targeted-check misses)` — see
    /// `BUILD_AFTER_MISSES`.
    static SNAPSHOT_MISSES: RefCell<(u64, u32)> = const { RefCell::new((0, 0)) };
}

/// A one-shot targeted check on a graph with no current snapshot runs
/// the reference engine instead of paying an `O(|E| log deg)` index
/// build the seed never charged (a CLI `check`, or a mutate-then-check
/// loop where every check sees a fresh topology generation). After
/// this many consecutive targeted misses on one generation the build
/// amortizes, so the snapshot is built. Audience materialization
/// explores the whole product space and builds immediately.
const BUILD_AFTER_MISSES: u32 = 2;

/// Returns a current snapshot of `g`, reusing the thread-local cache
/// when the topology generation still matches. `None` for uncacheable
/// graphs (generation 0: deserialized without `rebuild_lookups`).
fn thread_snapshot(g: &SocialGraph) -> Option<Rc<CsrSnapshot>> {
    if g.topology_generation() == 0 {
        return None;
    }
    SNAPSHOT.with(|slot| {
        let mut slot = slot.borrow_mut();
        if let Some(s) = slot.as_ref() {
            if s.matches(g) {
                return Some(Rc::clone(s));
            }
        }
        let fresh = Rc::new(CsrSnapshot::build(g));
        *slot = Some(Rc::clone(&fresh));
        Some(fresh)
    })
}

/// The thread-cached snapshot when it is already current for `g`,
/// without building one. Single-shot label scans (`carminati`) use
/// this: they profit from a snapshot another evaluation already paid
/// for, but a full two-direction all-label index build would cost more
/// than their one bounded scan.
pub(crate) fn thread_snapshot_if_current(g: &SocialGraph) -> Option<Rc<CsrSnapshot>> {
    SNAPSHOT.with(|slot| {
        slot.borrow()
            .as_ref()
            .filter(|s| s.matches(g))
            .map(Rc::clone)
    })
}

/// Releases this thread's cached snapshot and search buffers.
///
/// The caches are sized to the largest graph/query this thread has
/// evaluated and are otherwise retained for reuse; a long-lived worker
/// that has finished with a large graph can call this to return the
/// memory.
pub fn release_thread_caches() {
    release_thread_snapshot();
    SCRATCH.with(|scratch| *scratch.borrow_mut() = Scratch::default());
}

/// Releases only this thread's cached [`CsrSnapshot`] (and the
/// deferred-build miss counter), keeping the BFS scratch buffers.
///
/// The enforcement layer calls this from `Enforcer::invalidate`: after
/// a mutation the calling thread's fallback snapshot is stale and would
/// otherwise pin the old index in memory until the thread's next
/// bare-graph evaluation notices the generation moved. The scratch
/// stays — it is epoch-stamped and graph-agnostic, so retaining it is
/// free and keeps mutate-then-check loops allocation-free.
pub fn release_thread_snapshot() {
    SNAPSHOT.with(|slot| slot.borrow_mut().take());
    SNAPSHOT_MISSES.with(|m| *m.borrow_mut() = (0, 0));
}

/// Observable footprint of this thread's online-engine caches, for
/// tests and capacity instrumentation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ThreadCacheStats {
    /// Whether a CSR snapshot is cached for this thread.
    pub snapshot_cached: bool,
    /// Dense visited slots currently allocated in the BFS scratch.
    pub scratch_state_slots: usize,
}

/// Reports this thread's cached-snapshot presence and scratch size.
pub fn thread_cache_stats() -> ThreadCacheStats {
    ThreadCacheStats {
        snapshot_cached: SNAPSHOT.with(|slot| slot.borrow().is_some()),
        scratch_state_slots: SCRATCH.with(|scratch| scratch.borrow().visited.len()),
    }
}

/// Evaluates `path` from `owner`.
///
/// With `target = Some(v)` the search exits as soon as `v` matches and
/// reconstructs a witness walk. With `target = None` it explores the
/// whole product space and returns the full audience (sorted).
///
/// Runs on the label-partitioned CSR engine, building (and caching, per
/// thread) a [`CsrSnapshot`] as needed. Callers holding a snapshot —
/// the enforcement layer does — should use [`evaluate_with_snapshot`].
pub fn evaluate(
    g: &SocialGraph,
    owner: NodeId,
    path: &PathExpr,
    target: Option<NodeId>,
) -> OnlineOutcome {
    if path.is_empty() {
        return OnlineOutcome::empty_path(owner, target);
    }
    if target.is_some() && thread_snapshot_if_current(g).is_none() {
        // No snapshot yet for this topology: only build one once a few
        // targeted checks have hit the same generation (see
        // BUILD_AFTER_MISSES); a single early-exit BFS is cheaper than
        // an index build.
        let defer = SNAPSHOT_MISSES.with(|m| {
            let m = &mut *m.borrow_mut();
            if m.0 != g.topology_generation() {
                *m = (g.topology_generation(), 0);
            }
            m.1 += 1;
            m.1 <= BUILD_AFTER_MISSES
        });
        if defer {
            return evaluate_reference(g, owner, path, target);
        }
    }
    match thread_snapshot(g) {
        Some(snap) => evaluate_with_snapshot(g, &snap, owner, path, target),
        None => evaluate_reference(g, owner, path, target),
    }
}

/// [`evaluate`] over a caller-provided snapshot (no cache probe, no
/// build). Falls back to [`evaluate_reference`] when the snapshot is
/// stale for `g` or the dense product space would be unreasonable.
pub fn evaluate_with_snapshot(
    g: &SocialGraph,
    snap: &CsrSnapshot,
    owner: NodeId,
    path: &PathExpr,
    target: Option<NodeId>,
) -> OnlineOutcome {
    if path.is_empty() {
        return OnlineOutcome::empty_path(owner, target);
    }
    if !snap.matches(g) {
        return evaluate_reference(g, owner, path, target);
    }

    let steps = &path.steps;
    let Some((v_count, _, total_states)) = flat_dimensions(snap, path) else {
        return evaluate_reference(g, owner, path, target);
    };

    let mut stats = SearchStats::default();
    let mut matched: Vec<NodeId> = Vec::new();
    let mut granted_state: Option<u64> = None;
    let track_parents = target.is_some();

    let witness = SCRATCH.with(|scratch| {
        let s = &mut *scratch.borrow_mut();

        // Layer table: (step, depth) <-> dense layer id, so a product
        // state is the single index `layer · |V| + member`, and all
        // depth logic is resolved here once instead of per state.
        fill_layer_table(steps, &mut s.layers);

        if s.visited.len() < total_states {
            s.visited.resize(total_states, 0);
        }
        if s.matched_epoch.len() < snap.num_nodes() {
            s.matched_epoch.resize(snap.num_nodes(), 0);
        }
        if track_parents && s.parent_state.len() < total_states {
            s.parent_state.resize(total_states, 0);
            s.parent_hop.resize(total_states, 0);
        }
        let epoch = s.next_epoch();
        s.frontier.clear();
        s.next.clear();

        let start = u64::from(owner.0); // layer 0 is (step 0, depth 0)
        s.visited[owner.index()] = epoch;
        if track_parents {
            s.parent_hop[owner.index()] = HOP_NONE;
            s.parent_state[owner.index()] = owner.0;
        }
        s.frontier.push(start);

        'search: while !s.frontier.is_empty() {
            // Split-borrow the scratch so the frontier can be read while
            // the visited/parent arrays and next-frontier are written.
            let Scratch {
                visited,
                matched_epoch,
                frontier,
                next,
                parent_state,
                parent_hop,
                layers,
                ..
            } = s;
            for &state in frontier.iter() {
                let v = state as u32;
                let lay = (state >> 32) as usize;
                let idx = lay as u32 * v_count + v;
                let li = layers[lay];
                stats.states_visited += 1;
                let step = &steps[li.step as usize];
                let node = NodeId(v);

                // Step completion: d hops taken, d ∈ I_i, conditions
                // accept v.
                if li.completes && step.conds.iter().all(|c| c.eval(g.node_attrs(node))) {
                    if li.last {
                        if matched_epoch[node.index()] != epoch {
                            matched_epoch[node.index()] = epoch;
                            matched.push(node);
                        }
                        if target == Some(node) {
                            granted_state = Some(state);
                            break 'search;
                        }
                    } else {
                        let eps = li.eps_layer * v_count + v;
                        let slot = &mut visited[eps as usize];
                        if *slot != epoch {
                            *slot = epoch;
                            if track_parents {
                                parent_state[eps as usize] = idx;
                                parent_hop[eps as usize] = HOP_NONE;
                            }
                            next.push((u64::from(li.eps_layer) << 32) | u64::from(v));
                        }
                    }
                }

                // Edge expansion within step i.
                if !li.expands {
                    continue; // bounded step exhausted
                }
                let next_base = li.next_layer * v_count;
                let next_tag = u64::from(li.next_layer) << 32;
                let mut expand = |nbr: u32, eid: u32, forward: bool| {
                    stats.edges_scanned += 1;
                    let ns = next_base + nbr;
                    let slot = &mut visited[ns as usize];
                    if *slot != epoch {
                        *slot = epoch;
                        if track_parents {
                            parent_state[ns as usize] = idx;
                            parent_hop[ns as usize] = (eid << 1) | u32::from(forward);
                        }
                        next.push(next_tag | u64::from(nbr));
                    }
                };
                if matches!(step.dir, Direction::Out | Direction::Both) {
                    let out = snap.out_neighbors(v, step.label);
                    for (&nbr, &eid) in out.nodes.iter().zip(out.edges) {
                        expand(nbr, eid, true);
                    }
                }
                if matches!(step.dir, Direction::In | Direction::Both) {
                    let inn = snap.in_neighbors(v, step.label);
                    for (&nbr, &eid) in inn.nodes.iter().zip(inn.edges) {
                        expand(nbr, eid, false);
                    }
                }
            }
            std::mem::swap(&mut s.frontier, &mut s.next);
            s.next.clear();
        }

        // Replay parent pointers (all stamped this epoch) back to the
        // self-parenting start state.
        granted_state.map(|end| {
            let mut hops = Vec::new();
            let mut cur = ((end >> 32) as u32) * v_count + end as u32;
            loop {
                let hop = s.parent_hop[cur as usize];
                let prev = s.parent_state[cur as usize];
                if hop != HOP_NONE {
                    hops.push((EdgeId(hop >> 1), hop & 1 == 1));
                }
                if prev == cur {
                    break;
                }
                cur = prev;
            }
            hops.reverse();
            hops
        })
    });

    matched.sort_unstable();
    OnlineOutcome {
        granted: granted_state.is_some(),
        matched,
        witness,
        stats,
    }
}

// ---------------------------------------------------------------------
// Multi-source batch audience engine
// ---------------------------------------------------------------------

/// Audiences of many owners under one path expression, evaluated
/// together (see [`evaluate_audience_batch`]).
#[derive(Clone, Debug)]
pub struct BatchAudienceOutcome {
    /// `audiences[i]` is the full sorted audience of `owners[i]` —
    /// element-for-element what `evaluate(g, owners[i], path,
    /// None).matched` returns.
    pub audiences: Vec<Vec<NodeId>>,
    /// Aggregate work counters across the whole batch. One frontier
    /// pass serves every owner in a 64-source chunk, so
    /// `edges_scanned` sits far below the per-owner sum a sequential
    /// sweep would pay.
    pub stats: SearchStats,
}

/// Materializes the audiences of up to arbitrarily many `owners` under
/// one `path`, sharing frontier passes between them.
///
/// Owners are processed in chunks of 64; within a chunk every product
/// state carries a bitmask of the sources that reached it, so each
/// `(node, label, direction)` CSR slice is scanned **once per state
/// activation** regardless of how many owners' searches pass through
/// it (the multi-source BFS technique of Then et al., adapted to the
/// layered product space). Bits propagate as deltas: a state forwards
/// only the sources that newly arrived. Sources that reach a state in
/// the same BFS wave share its slice scan outright, so total work
/// approaches the *union* of the per-owner traversals when frontiers
/// overlap — and degrades to at most their sum (one re-activation per
/// distinct arrival wave, i.e. never worse than sequential evaluation
/// by more than the mask bookkeeping) when they don't.
///
/// Falls back to per-owner [`evaluate_with_snapshot`] when the
/// snapshot is stale for `g` or the dense product space would be
/// unreasonable — semantics are identical either way.
pub fn evaluate_audience_batch(
    g: &SocialGraph,
    snap: &CsrSnapshot,
    owners: &[NodeId],
    path: &PathExpr,
) -> BatchAudienceOutcome {
    let mut stats = SearchStats::default();
    if path.is_empty() {
        return BatchAudienceOutcome {
            audiences: owners.iter().map(|&o| vec![o]).collect(),
            stats,
        };
    }
    let flat = if snap.matches(g) {
        flat_dimensions(snap, path)
    } else {
        None
    };
    let Some((v_count, _, total_states)) = flat else {
        // Degenerate product space or stale snapshot: same answers,
        // one owner at a time.
        let audiences = owners
            .iter()
            .map(|&o| {
                let out = evaluate_with_snapshot(g, snap, o, path, None);
                stats.absorb(&out.stats);
                out.matched
            })
            .collect();
        return BatchAudienceOutcome { audiences, stats };
    };

    let steps = &path.steps;
    let mut audiences: Vec<Vec<NodeId>> = vec![Vec::new(); owners.len()];
    SCRATCH.with(|scratch| {
        let s = &mut *scratch.borrow_mut();
        fill_layer_table(steps, &mut s.layers);
        if s.seen_mask.len() < total_states {
            s.seen_mask.resize(total_states, 0);
            s.pending_mask.resize(total_states, 0);
            s.mask_epoch.resize(total_states, 0);
        }
        if s.matched_mask.len() < snap.num_nodes() {
            s.matched_mask.resize(snap.num_nodes(), 0);
            s.matched_mask_epoch.resize(snap.num_nodes(), 0);
        }

        for (chunk_idx, chunk) in owners.chunks(64).enumerate() {
            let chunk_base = chunk_idx * 64;
            let epoch = s.next_epoch();
            s.frontier.clear();
            s.next.clear();

            let Scratch {
                frontier,
                next,
                layers,
                seen_mask,
                pending_mask,
                mask_epoch,
                matched_mask,
                matched_mask_epoch,
                ..
            } = &mut *s;

            // Validates a state's mask slots for this epoch, zeroing
            // stale contents lazily.
            macro_rules! fresh {
                ($idx:expr) => {{
                    let idx = $idx;
                    if mask_epoch[idx] != epoch {
                        mask_epoch[idx] = epoch;
                        seen_mask[idx] = 0;
                        pending_mask[idx] = 0;
                    }
                    idx
                }};
            }

            // Seed layer 0 with each owner's bit; owners sharing a
            // member share one start state with several bits.
            for (bit, owner) in chunk.iter().enumerate() {
                let idx = fresh!(owner.index());
                let new = 1u64 << bit;
                if seen_mask[idx] & new == 0 {
                    seen_mask[idx] |= new;
                    if pending_mask[idx] == 0 {
                        frontier.push(u64::from(owner.0)); // layer 0 tag
                    }
                    pending_mask[idx] |= new;
                }
            }

            while !frontier.is_empty() {
                for &state in frontier.iter() {
                    let v = state as u32;
                    let lay = (state >> 32) as usize;
                    let idx = (lay as u32 * v_count + v) as usize;
                    // Consume the delta: only sources that arrived
                    // since the state last ran need (re)processing.
                    let delta = pending_mask[idx];
                    pending_mask[idx] = 0;
                    debug_assert_ne!(delta, 0, "queued state without pending bits");
                    stats.states_visited += 1;
                    let li = layers[lay];
                    let step = &steps[li.step as usize];
                    let node = NodeId(v);

                    // Forwards `delta` to `target`, queueing it for the
                    // next level on its 0 → nonzero pending transition.
                    let mut send = |target_layer: u32,
                                    target_v: u32,
                                    bits: u64,
                                    next: &mut Vec<u64>| {
                        let t = fresh!((target_layer * v_count + target_v) as usize);
                        let new = bits & !seen_mask[t];
                        if new != 0 {
                            seen_mask[t] |= new;
                            if pending_mask[t] == 0 {
                                next.push((u64::from(target_layer) << 32) | u64::from(target_v));
                            }
                            pending_mask[t] |= new;
                        }
                    };

                    // Step completion for the newly arrived sources.
                    if li.completes && step.conds.iter().all(|c| c.eval(g.node_attrs(node))) {
                        if li.last {
                            if matched_mask_epoch[node.index()] != epoch {
                                matched_mask_epoch[node.index()] = epoch;
                                matched_mask[node.index()] = 0;
                            }
                            let mut new_matched = delta & !matched_mask[node.index()];
                            matched_mask[node.index()] |= new_matched;
                            while new_matched != 0 {
                                let bit = new_matched.trailing_zeros() as usize;
                                new_matched &= new_matched - 1;
                                audiences[chunk_base + bit].push(node);
                            }
                        } else {
                            send(li.eps_layer, v, delta, next);
                        }
                    }

                    // Edge expansion within the step.
                    if !li.expands {
                        continue;
                    }
                    if matches!(step.dir, Direction::Out | Direction::Both) {
                        let out = snap.out_neighbors(v, step.label);
                        for &nbr in out.nodes {
                            stats.edges_scanned += 1;
                            send(li.next_layer, nbr, delta, next);
                        }
                    }
                    if matches!(step.dir, Direction::In | Direction::Both) {
                        let inn = snap.in_neighbors(v, step.label);
                        for &nbr in inn.nodes {
                            stats.edges_scanned += 1;
                            send(li.next_layer, nbr, delta, next);
                        }
                    }
                }
                std::mem::swap(frontier, next);
                next.clear();
            }
        }
    });

    for audience in &mut audiences {
        audience.sort_unstable();
    }
    BatchAudienceOutcome { audiences, stats }
}

// ---------------------------------------------------------------------
// Seeded evaluation (the sharded serving layer's per-shard primitive)
// ---------------------------------------------------------------------

/// A product-automaton coordinate exchanged between shards: the member
/// plus its `(step, depth)` position, with `depth` capped at the step's
/// saturation point (all deeper states behave identically, so the cap
/// makes the coordinate canonical across independently built shards).
pub type SeedState = (NodeId, u16, u32);

/// What a seeded evaluation is looking for.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SeededTarget {
    /// Explore the whole reachable product space: collect the audience
    /// and every watched state.
    Audience,
    /// Stop as soon as this member completes the final step (an access
    /// check).
    Member(NodeId),
    /// Stop as soon as this exact product state is visited (cross-shard
    /// witness reconstruction replays a prior run up to the state it
    /// exported).
    State(NodeId, u16, u32),
}

/// Result of a seeded evaluation.
#[derive(Clone, Debug, Default)]
pub struct SeededOutcome {
    /// Members that completed the final step, sorted (includes watched
    /// members — the caller filters ghosts).
    pub matched: Vec<NodeId>,
    /// Every product state visited at a watched member, depth already
    /// saturated — the states a shard exports for its neighbors to
    /// continue from. Unique by construction (each state is visited
    /// once).
    pub reached: Vec<SeedState>,
    /// Whether the target (member or state) was found.
    pub hit: bool,
    /// When `hit` under a non-audience target: the local walk from one
    /// of the seeds to the target, plus the index (into `seeds`) of the
    /// seed it traces back to.
    pub witness: Option<(Vec<WitnessHop>, usize)>,
    /// Work counters.
    pub stats: SearchStats,
}

/// Per-step base offsets and saturations of the dense layer table:
/// layer id of `(step, depth)` is `bases[step] + depth.min(sats[step])`.
fn layer_bases(steps: &[crate::path::Step]) -> (Vec<u32>, Vec<u32>) {
    let mut bases = Vec::with_capacity(steps.len());
    let mut sats = Vec::with_capacity(steps.len());
    let mut base = 0u32;
    for step in steps {
        let sat = step.depths.saturation();
        bases.push(base);
        sats.push(sat);
        base += sat + 1;
    }
    (bases, sats)
}

/// [`evaluate_with_snapshot`] generalized for the sharded serving
/// layer: the search starts from arbitrary product states (`seeds`),
/// reports every state visited at a *watched* member (the shard's
/// ghost copies of remote members, whose expansion is completed by the
/// owning shard), and can chase a state target as well as a member
/// target.
///
/// Semantics are those of the single-graph engine restricted to this
/// graph's edges: a state `(v, step, depth)` is reachable from the
/// seeds exactly when the unsharded engine could reach it using only
/// locally present edges. The sharded router obtains global semantics
/// by fixpointing seeded runs across shards (every exported watched
/// state is re-seeded at the member's owning shard, where its full
/// adjacency lives).
///
/// Uses the flat dense-state engine when the product space is
/// reasonable ([`evaluate_with_snapshot`]'s criterion) and a sparse
/// HashMap walk mirroring [`evaluate_reference`] otherwise — results
/// are identical.
pub fn evaluate_seeded(
    g: &SocialGraph,
    snap: &CsrSnapshot,
    path: &PathExpr,
    seeds: &[SeedState],
    watched: &[bool],
    target: SeededTarget,
) -> SeededOutcome {
    debug_assert!(!path.is_empty(), "the router handles empty paths");
    if path.is_empty() || seeds.is_empty() {
        return SeededOutcome::default();
    }
    if snap.matches(g) && flat_dimensions(snap, path).is_some() {
        evaluate_seeded_flat(g, snap, path, seeds, watched, target)
    } else {
        evaluate_seeded_sparse(g, path, seeds, watched, target)
    }
}

fn evaluate_seeded_flat(
    g: &SocialGraph,
    snap: &CsrSnapshot,
    path: &PathExpr,
    seeds: &[SeedState],
    watched: &[bool],
    target: SeededTarget,
) -> SeededOutcome {
    let steps = &path.steps;
    let (v_count, _, total_states) =
        flat_dimensions(snap, path).expect("caller checked dimensions");
    let (bases, sats) = layer_bases(steps);
    let layer_of = |step: u16, depth: u32| bases[step as usize] + depth.min(sats[step as usize]);

    let track_parents = !matches!(target, SeededTarget::Audience);
    let target_member = match target {
        SeededTarget::Member(m) => Some(m),
        _ => None,
    };
    let target_idx: Option<u32> = match target {
        SeededTarget::State(m, step, depth) => Some(layer_of(step, depth) * v_count + m.0),
        _ => None,
    };

    let mut stats = SearchStats::default();
    let mut matched: Vec<NodeId> = Vec::new();
    let mut reached: Vec<SeedState> = Vec::new();
    let mut hit_state: Option<u32> = None;
    // Seed states self-parent; the replay resolves which seed a chain
    // ends at through this (tiny) index list.
    let mut seed_index: Vec<(u32, usize)> = Vec::with_capacity(seeds.len());

    let witness = SCRATCH.with(|scratch| {
        let s = &mut *scratch.borrow_mut();
        fill_layer_table(steps, &mut s.layers);
        // `layer_bases` must describe exactly the layout
        // `fill_layer_table` produced — the two are parallel
        // constructions, so pin their agreement here.
        debug_assert_eq!(
            s.layers.len() as u32,
            bases.last().unwrap() + sats.last().unwrap() + 1,
            "layer_bases and fill_layer_table disagree on the layer count"
        );
        for (i, &base) in bases.iter().enumerate() {
            debug_assert_eq!(
                s.layers[base as usize].step as usize, i,
                "layer_bases and fill_layer_table disagree on step {i}'s base layer"
            );
        }
        if s.visited.len() < total_states {
            s.visited.resize(total_states, 0);
        }
        if s.matched_epoch.len() < snap.num_nodes() {
            s.matched_epoch.resize(snap.num_nodes(), 0);
        }
        if track_parents && s.parent_state.len() < total_states {
            s.parent_state.resize(total_states, 0);
            s.parent_hop.resize(total_states, 0);
        }
        let epoch = s.next_epoch();
        s.frontier.clear();
        s.next.clear();

        for (i, &(m, step, depth)) in seeds.iter().enumerate() {
            let lay = layer_of(step, depth);
            let idx = lay * v_count + m.0;
            if s.visited[idx as usize] == epoch {
                continue; // duplicate seed; first occurrence wins
            }
            s.visited[idx as usize] = epoch;
            if track_parents {
                s.parent_state[idx as usize] = idx;
                s.parent_hop[idx as usize] = HOP_NONE;
            }
            seed_index.push((idx, i));
            if target_idx == Some(idx) {
                hit_state = Some(idx);
            }
            s.frontier.push((u64::from(lay) << 32) | u64::from(m.0));
        }

        'search: while !s.frontier.is_empty() && hit_state.is_none() {
            let Scratch {
                visited,
                matched_epoch,
                frontier,
                next,
                parent_state,
                parent_hop,
                layers,
                ..
            } = s;
            for &state in frontier.iter() {
                let v = state as u32;
                let lay = (state >> 32) as u32;
                let idx = lay * v_count + v;
                let li = layers[lay as usize];
                stats.states_visited += 1;
                let step = &steps[li.step as usize];
                let node = NodeId(v);

                if watched[node.index()] {
                    reached.push((node, li.step, lay - bases[li.step as usize]));
                }

                if li.completes && step.conds.iter().all(|c| c.eval(g.node_attrs(node))) {
                    if li.last {
                        if matched_epoch[node.index()] != epoch {
                            matched_epoch[node.index()] = epoch;
                            matched.push(node);
                        }
                        if target_member == Some(node) {
                            hit_state = Some(idx);
                            break 'search;
                        }
                    } else {
                        let eps = li.eps_layer * v_count + v;
                        let slot = &mut visited[eps as usize];
                        if *slot != epoch {
                            *slot = epoch;
                            if track_parents {
                                parent_state[eps as usize] = idx;
                                parent_hop[eps as usize] = HOP_NONE;
                            }
                            if target_idx == Some(eps) {
                                hit_state = Some(eps);
                                break 'search;
                            }
                            next.push((u64::from(li.eps_layer) << 32) | u64::from(v));
                        }
                    }
                }

                if !li.expands {
                    continue;
                }
                let next_base = li.next_layer * v_count;
                let next_tag = u64::from(li.next_layer) << 32;
                let mut found = false;
                let mut expand = |nbr: u32, eid: u32, forward: bool| {
                    stats.edges_scanned += 1;
                    let ns = next_base + nbr;
                    let slot = &mut visited[ns as usize];
                    if *slot != epoch {
                        *slot = epoch;
                        if track_parents {
                            parent_state[ns as usize] = idx;
                            parent_hop[ns as usize] = (eid << 1) | u32::from(forward);
                        }
                        if target_idx == Some(ns) {
                            found = true;
                        }
                        next.push(next_tag | u64::from(nbr));
                    }
                };
                if matches!(step.dir, Direction::Out | Direction::Both) {
                    let out = snap.out_neighbors(v, step.label);
                    for (&nbr, &eid) in out.nodes.iter().zip(out.edges) {
                        expand(nbr, eid, true);
                    }
                }
                if matches!(step.dir, Direction::In | Direction::Both) {
                    let inn = snap.in_neighbors(v, step.label);
                    for (&nbr, &eid) in inn.nodes.iter().zip(inn.edges) {
                        expand(nbr, eid, false);
                    }
                }
                if found {
                    hit_state = Some(target_idx.expect("found implies a state target"));
                    break 'search;
                }
            }
            std::mem::swap(&mut s.frontier, &mut s.next);
            s.next.clear();
        }

        hit_state.filter(|_| track_parents).map(|end| {
            let mut hops = Vec::new();
            let mut cur = end;
            loop {
                let hop = s.parent_hop[cur as usize];
                let prev = s.parent_state[cur as usize];
                if hop != HOP_NONE {
                    hops.push((EdgeId(hop >> 1), hop & 1 == 1));
                }
                if prev == cur {
                    break;
                }
                cur = prev;
            }
            hops.reverse();
            let seed = seed_index
                .iter()
                .find(|&&(idx, _)| idx == cur)
                .map(|&(_, i)| i)
                .expect("witness chain ends at a seed");
            (hops, seed)
        })
    });

    matched.sort_unstable();
    SeededOutcome {
        matched,
        reached,
        hit: hit_state.is_some(),
        witness,
        stats,
    }
}

/// Sparse-state mirror of [`evaluate_seeded_flat`] for degenerate
/// product spaces, structured after [`evaluate_reference`].
fn evaluate_seeded_sparse(
    g: &SocialGraph,
    path: &PathExpr,
    seeds: &[SeedState],
    watched: &[bool],
    target: SeededTarget,
) -> SeededOutcome {
    let steps = &path.steps;
    let sat: Vec<u32> = steps.iter().map(|s| s.depths.saturation()).collect();
    let canon = |(m, step, depth): SeedState| (m.0, step, depth.min(sat[step as usize]));

    let target_member = match target {
        SeededTarget::Member(m) => Some(m),
        _ => None,
    };
    let target_state: Option<State> = match target {
        SeededTarget::State(m, step, depth) => Some(canon((m, step, depth))),
        _ => None,
    };

    let mut stats = SearchStats::default();
    let mut parent: HashMap<State, Option<(State, Option<WitnessHop>)>> = HashMap::new();
    let mut seed_of: HashMap<State, usize> = HashMap::new();
    let mut queue: VecDeque<State> = VecDeque::new();
    for (i, &seed) in seeds.iter().enumerate() {
        let state = canon(seed);
        if let Entry::Vacant(e) = parent.entry(state) {
            e.insert(None);
            seed_of.insert(state, i);
            queue.push_back(state);
        }
    }

    let mut matched: Vec<NodeId> = Vec::new();
    let mut matched_seen = vec![false; g.num_nodes()];
    let mut reached: Vec<SeedState> = Vec::new();
    let mut hit_state: Option<State> = target_state.filter(|t| parent.contains_key(t));

    'search: while hit_state.is_none() {
        let Some(state) = queue.pop_front() else {
            break;
        };
        let (v, i, d) = state;
        stats.states_visited += 1;
        let step = &steps[i as usize];
        let node = NodeId(v);

        if watched[node.index()] {
            reached.push((node, i, d));
        }

        if d >= 1
            && step.depths.contains(d)
            && step.conds.iter().all(|c| c.eval(g.node_attrs(node)))
        {
            if (i as usize) == steps.len() - 1 {
                if !matched_seen[node.index()] {
                    matched_seen[node.index()] = true;
                    matched.push(node);
                }
                if target_member == Some(node) {
                    hit_state = Some(state);
                    break 'search;
                }
            } else {
                let eps: State = (v, i + 1, 0);
                if let Entry::Vacant(e) = parent.entry(eps) {
                    e.insert(Some((state, None)));
                    if target_state == Some(eps) {
                        hit_state = Some(eps);
                        break 'search;
                    }
                    queue.push_back(eps);
                }
            }
        }

        if d >= sat[i as usize] && !step.depths.is_unbounded() {
            continue;
        }
        let d_next = (d + 1).min(sat[i as usize]);
        let out = matches!(step.dir, Direction::Out | Direction::Both);
        let inc = matches!(step.dir, Direction::In | Direction::Both);
        if out {
            for (eid, rec) in g.out_edges(node) {
                if rec.label != step.label {
                    stats.edges_filtered += 1;
                    continue;
                }
                stats.edges_scanned += 1;
                let next: State = (rec.dst.0, i, d_next);
                if let Entry::Vacant(e) = parent.entry(next) {
                    e.insert(Some((state, Some((eid, true)))));
                    if target_state == Some(next) {
                        hit_state = Some(next);
                        break 'search;
                    }
                    queue.push_back(next);
                }
            }
        }
        if inc {
            for (eid, rec) in g.in_edges(node) {
                if rec.label != step.label {
                    stats.edges_filtered += 1;
                    continue;
                }
                stats.edges_scanned += 1;
                let next: State = (rec.src.0, i, d_next);
                if let Entry::Vacant(e) = parent.entry(next) {
                    e.insert(Some((state, Some((eid, false)))));
                    if target_state == Some(next) {
                        hit_state = Some(next);
                        break 'search;
                    }
                    queue.push_back(next);
                }
            }
        }
    }

    let witness = hit_state
        .filter(|_| !matches!(target, SeededTarget::Audience))
        .map(|end| {
            let mut hops = Vec::new();
            let mut cur = end;
            while let Some(Some((prev, hop))) = parent.get(&cur) {
                if let Some(h) = hop {
                    hops.push(*h);
                }
                cur = *prev;
            }
            hops.reverse();
            let seed = *seed_of.get(&cur).expect("witness chain ends at a seed");
            (hops, seed)
        });

    matched.sort_unstable();
    SeededOutcome {
        matched,
        reached,
        hit: hit_state.is_some(),
        witness,
        stats,
    }
}

// ---------------------------------------------------------------------
// Seeded multi-source mask engine (the batched serving primitive)
// ---------------------------------------------------------------------

/// A masked product state exchanged between the batched fixpoint
/// driver and the per-shard mask engine: the member, its `(step,
/// depth)` coordinate (depth capped at the step's saturation point),
/// and the bundle-condition bits that reached it.
pub type MaskedSeedState = (NodeId, u16, u32, u64);

/// Result of one [`evaluate_audience_batch_seeded`] run.
#[derive(Clone, Debug, Default)]
pub struct SeededBatchOutcome {
    /// Members that completed the final step during this run, each
    /// with the condition bits that **newly** matched them (the state
    /// remembers what it already reported, so bits never repeat across
    /// runs). Watched members are included; the caller filters ghosts.
    pub matched: Vec<(NodeId, u64)>,
    /// Masked states visited at watched members during this run, with
    /// the bits that newly arrived there (depth already saturated).
    /// Bits at one state are disjoint across runs by construction.
    pub exports: Vec<MaskedSeedState>,
    /// The `(step, depth)` coordinate at which the `stop` member of an
    /// early-exit run ([`evaluate_audience_batch_seeded_stop`])
    /// completed the final step, when it did. The run returns
    /// immediately on a hit, so a hit run's frontier is **not**
    /// drained: after a hit the engine may only be used for
    /// [`SeededBatchState::trace`].
    pub hit: Option<(u16, u32)>,
    /// Work counters for this run only.
    pub stats: SearchStats,
}

/// Round-persistent bookkeeping of the seeded mask engine: which
/// condition bits have ever arrived at each product state, which bits
/// await processing, and which bits each member has already matched
/// under. One value serves **one** `(graph, snapshot, path, ≤64
/// conditions)` evaluation across arbitrarily many seeded runs; the
/// cross-shard fixpoint driver keeps one per shard per bundle chunk.
///
/// Persistence is the point: seeding a state whose bits are already
/// known is a no-op, so a fixpoint that re-enters a shard `k` times
/// (a walk ping-ponging across a boundary) expands each state at most
/// once per arriving bit instead of re-traversing the explored region
/// every round.
pub struct SeededBatchState {
    /// Cumulative states processed across every run (the
    /// round-linearity instrumentation the sharded driver reports).
    states_expanded: usize,
    inner: BatchInner,
}

enum BatchInner {
    Flat(FlatBatch),
    Sparse(SparseBatch),
}

/// Persistent parent pointers of a parent-tracked flat batch engine
/// ([`SeededBatchState::with_parents`]): for each product state, the
/// state it was **first** reached from and the hop taken, surviving
/// across runs so a cross-round chain can be traced without replay.
struct FlatParents {
    /// Predecessor state index; seeds point at themselves.
    state: Vec<u32>,
    /// `(eid << 1) | forward`, or [`HOP_NONE`] for seeds and ε-moves.
    hop: Vec<u32>,
}

/// Dense-array variant: masks indexed by `layer · |V| + member`.
struct FlatBatch {
    v_count: u32,
    bases: Vec<u32>,
    sats: Vec<u32>,
    layers: Vec<LayerInfo>,
    /// Bits ever arrived, per product state.
    seen: Vec<u64>,
    /// Bits arrived since the state was last processed.
    pending: Vec<u64>,
    /// Bits already reported as matched, per member.
    matched_mask: Vec<u64>,
    frontier: Vec<u64>,
    next: Vec<u64>,
    /// First-arrival parent pointers, when tracking is enabled.
    parents: Option<FlatParents>,
}

/// Sparse mirror for degenerate product spaces (astronomical
/// saturation depths), keyed by `(member, step, depth)`.
struct SparseBatch {
    sats: Vec<u32>,
    seen: HashMap<State, u64>,
    pending: HashMap<State, u64>,
    matched_mask: HashMap<u32, u64>,
    frontier: Vec<State>,
    next: Vec<State>,
    /// First-arrival parent pointers (`state → (predecessor, hop)`;
    /// seeds map to themselves with no hop), when tracking is enabled.
    parents: Option<HashMap<State, (State, Option<WitnessHop>)>>,
}

impl SeededBatchState {
    /// Fresh state for evaluating `path` over `snap`/`g`. Picks the
    /// flat dense-array variant when the product space is reasonable
    /// ([`evaluate_with_snapshot`]'s criterion) and the sparse mirror
    /// otherwise — run results are identical either way.
    pub fn new(g: &SocialGraph, snap: &CsrSnapshot, path: &PathExpr) -> Self {
        assert!(!path.is_empty(), "the batched driver handles empty paths");
        let steps = &path.steps;
        let inner = match if snap.matches(g) {
            flat_dimensions(snap, path)
        } else {
            None
        } {
            Some((v_count, _, total_states)) => {
                let (bases, sats) = layer_bases(steps);
                let mut layers = Vec::new();
                fill_layer_table(steps, &mut layers);
                BatchInner::Flat(FlatBatch {
                    v_count,
                    bases,
                    sats,
                    layers,
                    seen: vec![0; total_states],
                    pending: vec![0; total_states],
                    matched_mask: vec![0; snap.num_nodes()],
                    frontier: Vec::new(),
                    next: Vec::new(),
                    parents: None,
                })
            }
            None => BatchInner::Sparse(SparseBatch {
                sats: steps.iter().map(|s| s.depths.saturation()).collect(),
                seen: HashMap::new(),
                pending: HashMap::new(),
                matched_mask: HashMap::new(),
                frontier: Vec::new(),
                next: Vec::new(),
                parents: None,
            }),
        };
        SeededBatchState {
            states_expanded: 0,
            inner,
        }
    }

    /// Total product states processed across every run so far. Each
    /// state is processed once per *wave of new bits*, so for a
    /// single-condition evaluation this is exactly the number of
    /// distinct states explored — the counter the round-linearity
    /// regression pins.
    pub fn states_expanded(&self) -> usize {
        self.states_expanded
    }

    /// [`SeededBatchState::new`] with **first-arrival parent
    /// tracking**: every product state remembers the state it was
    /// first reached from and the hop taken, across runs, so
    /// [`SeededBatchState::trace`] can reconstruct a witness chain
    /// without replaying the search.
    ///
    /// Parent chains follow *first* arrivals regardless of condition
    /// bits, so they are only guaranteed to carry a given bit for
    /// **single-condition** (one-bit) evaluations — the targeted
    /// `check`/`explain` path. Multi-bit bundles must keep using the
    /// replay-based reconstruction.
    pub fn with_parents(g: &SocialGraph, snap: &CsrSnapshot, path: &PathExpr) -> Self {
        let mut state = Self::new(g, snap, path);
        match &mut state.inner {
            BatchInner::Flat(fb) => {
                let total = fb.seen.len();
                fb.parents = Some(FlatParents {
                    state: vec![0; total],
                    hop: vec![0; total],
                });
            }
            BatchInner::Sparse(sb) => sb.parents = Some(HashMap::new()),
        }
        state
    }

    /// Walks the persistent parent chain back from the product state
    /// `(member, step, depth)` to a **seed** of some earlier run,
    /// returning the hops in walk order plus the seed's coordinate.
    /// `None` when the engine wasn't built with
    /// [`SeededBatchState::with_parents`] or the state was never
    /// reached. Valid after an early-exit hit — tracing is the one
    /// operation an exhausted engine still supports.
    pub fn trace(
        &self,
        member: NodeId,
        step: u16,
        depth: u32,
    ) -> Option<(Vec<WitnessHop>, SeedState)> {
        match &self.inner {
            BatchInner::Flat(fb) => {
                let parents = fb.parents.as_ref()?;
                let lay = fb.bases[step as usize] + depth.min(fb.sats[step as usize]);
                let mut cur = lay * fb.v_count + member.0;
                if fb.seen[cur as usize] == 0 {
                    return None;
                }
                let mut hops = Vec::new();
                loop {
                    let hop = parents.hop[cur as usize];
                    let prev = parents.state[cur as usize];
                    if hop != HOP_NONE {
                        hops.push((EdgeId(hop >> 1), hop & 1 == 1));
                    }
                    if prev == cur {
                        break;
                    }
                    cur = prev;
                }
                hops.reverse();
                let v = cur % fb.v_count;
                let lay = cur / fb.v_count;
                let li = fb.layers[lay as usize];
                Some((hops, (NodeId(v), li.step, lay - fb.bases[li.step as usize])))
            }
            BatchInner::Sparse(sb) => {
                let parents = sb.parents.as_ref()?;
                let mut cur: State = (member.0, step, depth.min(sb.sats[step as usize]));
                let mut hops = Vec::new();
                loop {
                    let &(prev, hop) = parents.get(&cur)?;
                    if let Some(h) = hop {
                        hops.push(h);
                    }
                    if prev == cur {
                        break;
                    }
                    cur = prev;
                }
                hops.reverse();
                Some((hops, (NodeId(cur.0), cur.1, cur.2)))
            }
        }
    }
}

/// [`evaluate_audience_batch`] generalized to **seeded** entry: one
/// run drains the frontier produced by `seeds` (plus whatever earlier
/// runs left unexplored — nothing, by post-condition), recording
/// matches and exporting masked states visited at `watched` members.
///
/// Semantics per condition bit are those of the single-source seeded
/// engine ([`evaluate_seeded`]) restricted to this graph's edges: a
/// state `(v, step, depth)` accumulates bit `b` exactly when the
/// unsharded engine could reach it from one of bit `b`'s seeds using
/// only locally present edges. The sharded router obtains global
/// semantics by fixpointing masked runs across shards.
///
/// `state` must have been created by [`SeededBatchState::new`] for
/// this same `(g, snap, path)`; runs may repeat freely, and bits
/// reported (matched or exported) are disjoint across runs.
pub fn evaluate_audience_batch_seeded(
    g: &SocialGraph,
    snap: &CsrSnapshot,
    path: &PathExpr,
    state: &mut SeededBatchState,
    seeds: &[MaskedSeedState],
    watched: &[bool],
) -> SeededBatchOutcome {
    evaluate_audience_batch_seeded_stop(g, snap, path, state, seeds, watched, None)
}

/// [`evaluate_audience_batch_seeded`] with an **early-exit target**:
/// the run returns the moment `stop` completes the final step
/// (`hit` carries the completing `(step, depth)` coordinate), leaving
/// the frontier undrained. After a hit the engine must only be used
/// for [`SeededBatchState::trace`] — the targeted `check`/`explain`
/// path that replaces the per-condition ping-pong fixpoint.
pub fn evaluate_audience_batch_seeded_stop(
    g: &SocialGraph,
    snap: &CsrSnapshot,
    path: &PathExpr,
    state: &mut SeededBatchState,
    seeds: &[MaskedSeedState],
    watched: &[bool],
    stop: Option<NodeId>,
) -> SeededBatchOutcome {
    let SeededBatchState {
        states_expanded,
        inner,
    } = state;
    match inner {
        BatchInner::Flat(fb) => fb.run(g, snap, path, seeds, watched, stop, states_expanded),
        BatchInner::Sparse(sb) => sb.run(g, path, seeds, watched, stop, states_expanded),
    }
}

impl FlatBatch {
    /// Forwards `bits` to a state, queueing it on the 0 → nonzero
    /// pending transition. Free function shape so the BFS loop can
    /// split-borrow the mask arrays. Returns `true` on the state's
    /// **first-ever** arrival (any bit), the moment a parent pointer
    /// should be recorded.
    #[inline]
    fn send(
        seen: &mut [u64],
        pending: &mut [u64],
        queue: &mut Vec<u64>,
        v_count: u32,
        layer: u32,
        v: u32,
        bits: u64,
    ) -> bool {
        let idx = (layer * v_count + v) as usize;
        let first = seen[idx] == 0;
        let new = bits & !seen[idx];
        if new != 0 {
            seen[idx] |= new;
            if pending[idx] == 0 {
                queue.push((u64::from(layer) << 32) | u64::from(v));
            }
            pending[idx] |= new;
        }
        first && new != 0
    }

    #[allow(clippy::too_many_arguments)]
    fn run(
        &mut self,
        g: &SocialGraph,
        snap: &CsrSnapshot,
        path: &PathExpr,
        seeds: &[MaskedSeedState],
        watched: &[bool],
        stop: Option<NodeId>,
        states_expanded: &mut usize,
    ) -> SeededBatchOutcome {
        debug_assert!(snap.matches(g), "snapshot pinned for the whole bundle");
        let steps = &path.steps;
        let mut out = SeededBatchOutcome::default();
        let FlatBatch {
            v_count,
            bases,
            sats,
            layers,
            seen,
            pending,
            matched_mask,
            frontier,
            next,
            parents,
        } = self;
        let v_count = *v_count;

        debug_assert!(frontier.is_empty(), "previous run drained its frontier");
        for &(m, step, depth, bits) in seeds {
            let lay = bases[step as usize] + depth.min(sats[step as usize]);
            if Self::send(seen, pending, frontier, v_count, lay, m.0, bits) {
                if let Some(p) = parents.as_mut() {
                    let idx = (lay * v_count + m.0) as usize;
                    p.state[idx] = lay * v_count + m.0;
                    p.hop[idx] = HOP_NONE;
                }
            }
        }

        while !frontier.is_empty() {
            for &packed in frontier.iter() {
                let v = packed as u32;
                let lay = (packed >> 32) as u32;
                let idx = (lay * v_count + v) as usize;
                let delta = pending[idx];
                pending[idx] = 0;
                debug_assert_ne!(delta, 0, "queued state without pending bits");
                out.stats.states_visited += 1;
                *states_expanded += 1;
                let li = layers[lay as usize];
                let step = &steps[li.step as usize];
                let node = NodeId(v);

                if watched[node.index()] {
                    out.exports
                        .push((node, li.step, lay - bases[li.step as usize], delta));
                }

                // Step completion for the newly arrived bits.
                if li.completes && step.conds.iter().all(|c| c.eval(g.node_attrs(node))) {
                    if li.last {
                        let new_matched = delta & !matched_mask[node.index()];
                        if new_matched != 0 {
                            matched_mask[node.index()] |= new_matched;
                            out.matched.push((node, new_matched));
                            if stop == Some(node) {
                                out.hit = Some((li.step, lay - bases[li.step as usize]));
                                return out;
                            }
                        }
                    } else if Self::send(seen, pending, next, v_count, li.eps_layer, v, delta) {
                        if let Some(p) = parents.as_mut() {
                            let ni = (li.eps_layer * v_count + v) as usize;
                            p.state[ni] = idx as u32;
                            p.hop[ni] = HOP_NONE;
                        }
                    }
                }

                // Edge expansion within the step.
                if !li.expands {
                    continue;
                }
                if matches!(step.dir, Direction::Out | Direction::Both) {
                    let nbrs = snap.out_neighbors(v, step.label);
                    match parents.as_mut() {
                        None => {
                            for &nbr in nbrs.nodes {
                                out.stats.edges_scanned += 1;
                                Self::send(seen, pending, next, v_count, li.next_layer, nbr, delta);
                            }
                        }
                        Some(p) => {
                            for (&nbr, &eid) in nbrs.nodes.iter().zip(nbrs.edges) {
                                out.stats.edges_scanned += 1;
                                if Self::send(
                                    seen,
                                    pending,
                                    next,
                                    v_count,
                                    li.next_layer,
                                    nbr,
                                    delta,
                                ) {
                                    let ni = (li.next_layer * v_count + nbr) as usize;
                                    p.state[ni] = idx as u32;
                                    p.hop[ni] = (eid << 1) | 1;
                                }
                            }
                        }
                    }
                }
                if matches!(step.dir, Direction::In | Direction::Both) {
                    let nbrs = snap.in_neighbors(v, step.label);
                    match parents.as_mut() {
                        None => {
                            for &nbr in nbrs.nodes {
                                out.stats.edges_scanned += 1;
                                Self::send(seen, pending, next, v_count, li.next_layer, nbr, delta);
                            }
                        }
                        Some(p) => {
                            for (&nbr, &eid) in nbrs.nodes.iter().zip(nbrs.edges) {
                                out.stats.edges_scanned += 1;
                                if Self::send(
                                    seen,
                                    pending,
                                    next,
                                    v_count,
                                    li.next_layer,
                                    nbr,
                                    delta,
                                ) {
                                    let ni = (li.next_layer * v_count + nbr) as usize;
                                    p.state[ni] = idx as u32;
                                    p.hop[ni] = eid << 1;
                                }
                            }
                        }
                    }
                }
            }
            std::mem::swap(frontier, next);
            next.clear();
        }
        out
    }
}

impl SparseBatch {
    /// Returns `true` on the state's first-ever arrival (any bit) —
    /// the moment a parent pointer should be recorded.
    #[inline]
    fn send(
        seen: &mut HashMap<State, u64>,
        pending: &mut HashMap<State, u64>,
        queue: &mut Vec<State>,
        st: State,
        bits: u64,
    ) -> bool {
        let slot = seen.entry(st).or_insert(0);
        let first = *slot == 0;
        let new = bits & !*slot;
        if new != 0 {
            *slot |= new;
            let p = pending.entry(st).or_insert(0);
            if *p == 0 {
                queue.push(st);
            }
            *p |= new;
        }
        first && new != 0
    }

    fn run(
        &mut self,
        g: &SocialGraph,
        path: &PathExpr,
        seeds: &[MaskedSeedState],
        watched: &[bool],
        stop: Option<NodeId>,
        states_expanded: &mut usize,
    ) -> SeededBatchOutcome {
        let steps = &path.steps;
        let mut out = SeededBatchOutcome::default();
        let SparseBatch {
            sats,
            seen,
            pending,
            matched_mask,
            frontier,
            next,
            parents,
        } = self;

        debug_assert!(frontier.is_empty(), "previous run drained its frontier");
        for &(m, step, depth, bits) in seeds {
            let st: State = (m.0, step, depth.min(sats[step as usize]));
            if Self::send(seen, pending, frontier, st, bits) {
                if let Some(p) = parents.as_mut() {
                    p.insert(st, (st, None));
                }
            }
        }

        while !frontier.is_empty() {
            for &st in frontier.iter() {
                let (v, i, d) = st;
                let delta = pending.insert(st, 0).unwrap_or(0);
                debug_assert_ne!(delta, 0, "queued state without pending bits");
                out.stats.states_visited += 1;
                *states_expanded += 1;
                let step = &steps[i as usize];
                let node = NodeId(v);

                if watched[node.index()] {
                    out.exports.push((node, i, d, delta));
                }

                if d >= 1
                    && step.depths.contains(d)
                    && step.conds.iter().all(|c| c.eval(g.node_attrs(node)))
                {
                    if (i as usize) == steps.len() - 1 {
                        let mask = matched_mask.entry(v).or_insert(0);
                        let new_matched = delta & !*mask;
                        if new_matched != 0 {
                            *mask |= new_matched;
                            out.matched.push((node, new_matched));
                            if stop == Some(node) {
                                out.hit = Some((i, d));
                                return out;
                            }
                        }
                    } else if Self::send(seen, pending, next, (v, i + 1, 0), delta) {
                        if let Some(p) = parents.as_mut() {
                            p.insert((v, i + 1, 0), (st, None));
                        }
                    }
                }

                if d >= sats[i as usize] && !step.depths.is_unbounded() {
                    continue;
                }
                let d_next = (d + 1).min(sats[i as usize]);
                if matches!(step.dir, Direction::Out | Direction::Both) {
                    for (eid, rec) in g.out_edges(node) {
                        if rec.label != step.label {
                            out.stats.edges_filtered += 1;
                            continue;
                        }
                        out.stats.edges_scanned += 1;
                        let ns = (rec.dst.0, i, d_next);
                        if Self::send(seen, pending, next, ns, delta) {
                            if let Some(p) = parents.as_mut() {
                                p.insert(ns, (st, Some((eid, true))));
                            }
                        }
                    }
                }
                if matches!(step.dir, Direction::In | Direction::Both) {
                    for (eid, rec) in g.in_edges(node) {
                        if rec.label != step.label {
                            out.stats.edges_filtered += 1;
                            continue;
                        }
                        out.stats.edges_scanned += 1;
                        let ns = (rec.src.0, i, d_next);
                        if Self::send(seen, pending, next, ns, delta) {
                            if let Some(p) = parents.as_mut() {
                                p.insert(ns, (st, Some((eid, false))));
                            }
                        }
                    }
                }
            }
            std::mem::swap(frontier, next);
            next.clear();
        }
        out
    }
}

// ---------------------------------------------------------------------
// Reference engine (original implementation, retained as the spec)
// ---------------------------------------------------------------------

/// Product state: (member, step index, depth within step).
type State = (u32, u16, u32);

/// The original HashMap/VecDeque product BFS, kept verbatim as the
/// executable specification the flat-array engine is differential-tested
/// against, and as the fallback for degenerate product spaces.
pub fn evaluate_reference(
    g: &SocialGraph,
    owner: NodeId,
    path: &PathExpr,
    target: Option<NodeId>,
) -> OnlineOutcome {
    let mut stats = SearchStats::default();

    // Empty path: only the owner matches.
    if path.is_empty() {
        return OnlineOutcome::empty_path(owner, target);
    }

    let steps = &path.steps;
    let sat: Vec<u32> = steps.iter().map(|s| s.depths.saturation()).collect();

    // parent[state] = (previous state, hop taken), for witness
    // reconstruction; also doubles as the visited set.
    let mut parent: HashMap<State, Option<(State, Option<WitnessHop>)>> = HashMap::new();
    let mut queue: VecDeque<State> = VecDeque::new();
    let start: State = (owner.0, 0, 0);
    parent.insert(start, None);
    queue.push_back(start);

    let mut matched: Vec<NodeId> = Vec::new();
    let mut matched_seen = vec![false; g.num_nodes()];
    let mut granted_state: Option<State> = None;

    'search: while let Some(state) = queue.pop_front() {
        let (v, i, d) = state;
        stats.states_visited += 1;
        let step = &steps[i as usize];
        let node = NodeId(v);

        // Step completion: d hops taken, d ∈ I_i, conditions accept v.
        if d >= 1
            && step.depths.contains(d)
            && step.conds.iter().all(|c| c.eval(g.node_attrs(node)))
        {
            if (i as usize) == steps.len() - 1 {
                if !matched_seen[node.index()] {
                    matched_seen[node.index()] = true;
                    matched.push(node);
                }
                if target == Some(node) {
                    granted_state = Some(state);
                    break 'search;
                }
            } else {
                let eps: State = (v, i + 1, 0);
                if let Entry::Vacant(e) = parent.entry(eps) {
                    e.insert(Some((state, None)));
                    queue.push_back(eps);
                }
            }
        }

        // Edge expansion within step i.
        if d >= sat[i as usize] && !step.depths.is_unbounded() {
            continue; // bounded step exhausted
        }
        let d_next = (d + 1).min(sat[i as usize]);
        let out = matches!(step.dir, Direction::Out | Direction::Both);
        let inc = matches!(step.dir, Direction::In | Direction::Both);
        if out {
            for (eid, rec) in g.out_edges(node) {
                if rec.label != step.label {
                    stats.edges_filtered += 1;
                    continue;
                }
                stats.edges_scanned += 1;
                let next: State = (rec.dst.0, i, d_next);
                if let Entry::Vacant(e) = parent.entry(next) {
                    e.insert(Some((state, Some((eid, true)))));
                    queue.push_back(next);
                }
            }
        }
        if inc {
            for (eid, rec) in g.in_edges(node) {
                if rec.label != step.label {
                    stats.edges_filtered += 1;
                    continue;
                }
                stats.edges_scanned += 1;
                let next: State = (rec.src.0, i, d_next);
                if let Entry::Vacant(e) = parent.entry(next) {
                    e.insert(Some((state, Some((eid, false)))));
                    queue.push_back(next);
                }
            }
        }
    }

    let witness = granted_state.map(|end| {
        let mut hops = Vec::new();
        let mut cur = end;
        while let Some(Some((prev, hop))) = parent.get(&cur) {
            if let Some(h) = hop {
                hops.push(*h);
            }
            cur = *prev;
        }
        hops.reverse();
        hops
    });

    matched.sort_unstable();
    OnlineOutcome {
        granted: granted_state.is_some(),
        matched,
        witness,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::path::{parse_path, PathExpr};

    fn parse(g: &mut SocialGraph, text: &str) -> PathExpr {
        parse_path(text, g.vocab_mut()).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Alice -friend-> Bob -friend-> Carol -colleague-> Dave
    ///   \--friend-> Eve
    fn chain() -> SocialGraph {
        let mut g = SocialGraph::new();
        let a = g.add_node("Alice");
        let b = g.add_node("Bob");
        let c = g.add_node("Carol");
        let d = g.add_node("Dave");
        let e = g.add_node("Eve");
        g.connect(a, "friend", b);
        g.connect(b, "friend", c);
        g.connect(c, "colleague", d);
        g.connect(a, "friend", e);
        g
    }

    fn names(g: &SocialGraph, nodes: &[NodeId]) -> Vec<String> {
        nodes.iter().map(|&n| g.node_name(n).to_owned()).collect()
    }

    #[test]
    fn single_hop_out() {
        let mut g = chain();
        let p = parse(&mut g, "friend+[1]");
        let alice = g.node_by_name("Alice").unwrap();
        let out = evaluate(&g, alice, &p, None);
        assert_eq!(names(&g, &out.matched), vec!["Bob", "Eve"]);
    }

    #[test]
    fn depth_set_reaches_exact_levels() {
        let mut g = chain();
        let alice = g.node_by_name("Alice").unwrap();
        let p2 = parse(&mut g, "friend+[2]");
        let out = evaluate(&g, alice, &p2, None);
        assert_eq!(names(&g, &out.matched), vec!["Carol"]);
        let p12 = parse(&mut g, "friend+[1,2]");
        let out = evaluate(&g, alice, &p12, None);
        assert_eq!(names(&g, &out.matched), vec!["Bob", "Carol", "Eve"]);
    }

    #[test]
    fn multi_step_path() {
        let mut g = chain();
        let alice = g.node_by_name("Alice").unwrap();
        let p = parse(&mut g, "friend+[1,2]/colleague+[1]");
        let out = evaluate(&g, alice, &p, None);
        assert_eq!(names(&g, &out.matched), vec!["Dave"]);
    }

    #[test]
    fn incoming_direction() {
        let mut g = chain();
        let bob = g.node_by_name("Bob").unwrap();
        let p = parse(&mut g, "friend-[1]");
        let out = evaluate(&g, bob, &p, None);
        assert_eq!(names(&g, &out.matched), vec!["Alice"]);
    }

    #[test]
    fn both_direction_unions_orientations() {
        let mut g = chain();
        let bob = g.node_by_name("Bob").unwrap();
        let p = parse(&mut g, "friend*[1]");
        let out = evaluate(&g, bob, &p, None);
        assert_eq!(names(&g, &out.matched), vec!["Alice", "Carol"]);
    }

    #[test]
    fn unbounded_depth_saturates() {
        let mut g = chain();
        let alice = g.node_by_name("Alice").unwrap();
        let p = parse(&mut g, "friend+[1..]");
        let out = evaluate(&g, alice, &p, None);
        assert_eq!(names(&g, &out.matched), vec!["Bob", "Carol", "Eve"]);
    }

    #[test]
    fn unbounded_with_hole_skips_depths() {
        // friend+[3..] from Alice: only Carol is 3+ friend-hops away?
        // Alice -> Bob (1) -> Carol (2); chain ends. Nothing at 3+.
        let mut g = chain();
        let alice = g.node_by_name("Alice").unwrap();
        let p = parse(&mut g, "friend+[3..]");
        let out = evaluate(&g, alice, &p, None);
        assert!(out.matched.is_empty());
    }

    #[test]
    fn walks_may_revisit_nodes() {
        // Alice <-friend-> Bob (mutual), query friend+[3]: walks
        // A->B->A->B land on Bob at depth 3.
        let mut g = SocialGraph::new();
        let a = g.add_node("Alice");
        let b = g.add_node("Bob");
        g.connect(a, "friend", b);
        g.connect(b, "friend", a);
        let p = parse(&mut g, "friend+[3]");
        let out = evaluate(&g, a, &p, None);
        assert_eq!(names(&g, &out.matched), vec!["Bob"]);
    }

    #[test]
    fn attribute_conditions_filter_endpoints() {
        let mut g = chain();
        let alice = g.node_by_name("Alice").unwrap();
        let bob = g.node_by_name("Bob").unwrap();
        let eve = g.node_by_name("Eve").unwrap();
        g.set_node_attr(bob, "age", 17i64);
        g.set_node_attr(eve, "age", 30i64);
        let p = parse(&mut g, "friend+[1]{age>=18}");
        let out = evaluate(&g, alice, &p, None);
        assert_eq!(names(&g, &out.matched), vec!["Eve"]);
    }

    #[test]
    fn conditions_apply_at_step_end_not_mid_run() {
        // friend+[2]{age>=18}: the intermediate member (Bob, 17) is only
        // passed through; the condition tests the endpoint (Carol, 20).
        let mut g = chain();
        let alice = g.node_by_name("Alice").unwrap();
        let bob = g.node_by_name("Bob").unwrap();
        let carol = g.node_by_name("Carol").unwrap();
        g.set_node_attr(bob, "age", 17i64);
        g.set_node_attr(carol, "age", 20i64);
        let p = parse(&mut g, "friend+[2]{age>=18}");
        let out = evaluate(&g, alice, &p, None);
        assert_eq!(names(&g, &out.matched), vec!["Carol"]);
    }

    #[test]
    fn target_early_exit_and_witness() {
        let mut g = chain();
        let alice = g.node_by_name("Alice").unwrap();
        let dave = g.node_by_name("Dave").unwrap();
        let p = parse(&mut g, "friend+[1,2]/colleague+[1]");
        let out = evaluate(&g, alice, &p, Some(dave));
        assert!(out.granted);
        let witness = out.witness.expect("witness present on grant");
        assert_eq!(witness.len(), 3, "2 friend hops + 1 colleague hop");
        // Replay the witness: it must be a connected walk from Alice to
        // Dave.
        let mut at = alice;
        for (eid, forward) in witness {
            let rec = g.edge(eid);
            if forward {
                assert_eq!(rec.src, at);
                at = rec.dst;
            } else {
                assert_eq!(rec.dst, at);
                at = rec.src;
            }
        }
        assert_eq!(at, dave);
    }

    #[test]
    fn deny_when_no_matching_walk() {
        let mut g = chain();
        let alice = g.node_by_name("Alice").unwrap();
        let dave = g.node_by_name("Dave").unwrap();
        let p = parse(&mut g, "colleague+[1]");
        let out = evaluate(&g, alice, &p, Some(dave));
        assert!(!out.granted);
        assert!(out.witness.is_none());
    }

    #[test]
    fn empty_path_matches_owner_only() {
        let g = chain();
        let alice = g.node_by_name("Alice").unwrap();
        let bob = g.node_by_name("Bob").unwrap();
        let p = PathExpr::new(vec![]);
        assert!(evaluate(&g, alice, &p, Some(alice)).granted);
        assert!(!evaluate(&g, alice, &p, Some(bob)).granted);
        assert_eq!(evaluate(&g, alice, &p, None).matched, vec![alice]);
    }

    #[test]
    fn unknown_label_matches_nothing() {
        let mut g = chain();
        let alice = g.node_by_name("Alice").unwrap();
        let p = parse(&mut g, "enemy+[1]");
        let out = evaluate(&g, alice, &p, None);
        assert!(out.matched.is_empty());
    }

    #[test]
    fn stats_are_populated() {
        let mut g = chain();
        let alice = g.node_by_name("Alice").unwrap();
        let p = parse(&mut g, "friend+[1,2]/colleague+[1]");
        let out = evaluate(&g, alice, &p, None);
        assert!(out.stats.states_visited > 0);
        assert!(out.stats.edges_scanned > 0);
    }

    #[test]
    fn owner_can_be_in_their_own_audience_via_cycles() {
        // Mutual friendship: friend+[2] from Alice loops back to Alice.
        let mut g = SocialGraph::new();
        let a = g.add_node("Alice");
        let b = g.add_node("Bob");
        g.connect(a, "friend", b);
        g.connect(b, "friend", a);
        let p = parse(&mut g, "friend+[2]");
        let out = evaluate(&g, a, &p, None);
        assert_eq!(names(&g, &out.matched), vec!["Alice"]);
    }

    #[test]
    fn snapshot_engine_matches_reference_on_the_chain() {
        let mut g = chain();
        g.set_node_attr(g.node_by_name("Carol").unwrap(), "age", 20i64);
        let texts = [
            "friend+[1]",
            "friend+[1,2]",
            "friend*[1..]",
            "friend+[1,2]/colleague+[1]",
            "friend+[2]{age>=18}",
            "friend-[1]",
        ];
        let paths: Vec<PathExpr> = texts.iter().map(|t| parse(&mut g, t)).collect();
        let snap = g.snapshot();
        for (p, text) in paths.iter().zip(texts) {
            for owner in g.nodes() {
                let fast = evaluate_with_snapshot(&g, &snap, owner, p, None);
                let slow = evaluate_reference(&g, owner, p, None);
                assert_eq!(fast.matched, slow.matched, "{text} from {owner}");
                assert_eq!(
                    fast.stats.states_visited, slow.stats.states_visited,
                    "{text}"
                );
                for requester in g.nodes() {
                    let fast = evaluate_with_snapshot(&g, &snap, owner, p, Some(requester));
                    let slow = evaluate_reference(&g, owner, p, Some(requester));
                    assert_eq!(fast.granted, slow.granted, "{text} {owner}->{requester}");
                    assert_eq!(fast.witness, slow.witness, "{text} {owner}->{requester}");
                }
            }
        }
    }

    #[test]
    fn stale_snapshot_falls_back_to_current_graph_semantics() {
        let mut g = chain();
        let snap = g.snapshot();
        let alice = g.node_by_name("Alice").unwrap();
        let dave = g.node_by_name("Dave").unwrap();
        g.connect(alice, "friend", dave); // invalidates `snap`
        let p = parse(&mut g, "friend+[1]");
        let out = evaluate_with_snapshot(&g, &snap, alice, &p, Some(dave));
        assert!(out.granted, "stale snapshot must not hide the new edge");
    }

    #[test]
    fn astronomical_depths_use_the_reference_fallback() {
        // sat ≈ 2^30 would want a ~2^30-layer dense space; the wrapper
        // must transparently fall back and still answer correctly.
        let mut g = chain();
        let alice = g.node_by_name("Alice").unwrap();
        let p = parse(&mut g, "friend+[1073741824..]");
        let out = evaluate(&g, alice, &p, None);
        assert!(out.matched.is_empty());
    }

    #[test]
    fn attribute_writes_reuse_the_snapshot_but_change_results() {
        // Attribute churn must not stale the topology snapshot, yet the
        // engine must see fresh attribute values (it reads them live).
        let mut g = chain();
        let alice = g.node_by_name("Alice").unwrap();
        let bob = g.node_by_name("Bob").unwrap();
        let snap = g.snapshot();
        let p = parse(&mut g, "friend+[1]{age>=18}");
        assert!(evaluate_with_snapshot(&g, &snap, alice, &p, None)
            .matched
            .is_empty());
        g.set_node_attr(bob, "age", 30i64);
        assert!(snap.matches(&g), "attr write keeps the snapshot current");
        let out = evaluate_with_snapshot(&g, &snap, alice, &p, None);
        assert_eq!(names(&g, &out.matched), vec!["Bob"]);
    }

    #[test]
    fn batch_audiences_match_per_owner_evaluation() {
        let mut g = chain();
        g.set_node_attr(g.node_by_name("Carol").unwrap(), "age", 20i64);
        let texts = [
            "friend+[1]",
            "friend+[1,2]",
            "friend*[1..]",
            "friend+[1,2]/colleague+[1]",
            "friend+[2]{age>=18}",
            "friend-[1]",
        ];
        let paths: Vec<PathExpr> = texts.iter().map(|t| parse(&mut g, t)).collect();
        let snap = g.snapshot();
        let owners: Vec<NodeId> = g.nodes().collect();
        for (p, text) in paths.iter().zip(texts) {
            let batch = evaluate_audience_batch(&g, &snap, &owners, p);
            assert_eq!(batch.audiences.len(), owners.len());
            for (owner, audience) in owners.iter().zip(&batch.audiences) {
                let solo = evaluate_with_snapshot(&g, &snap, *owner, p, None);
                assert_eq!(audience, &solo.matched, "{text} from {owner}");
            }
        }
    }

    #[test]
    fn batch_amortizes_edge_scans_across_owners() {
        // A star: every leaf's friend-[1] audience passes through the
        // hub, so the shared frontier scans far fewer edges than the
        // per-owner sum.
        let mut g = SocialGraph::new();
        let hub = g.add_node("hub");
        let leaves: Vec<NodeId> = (0..30).map(|i| g.add_node(&format!("l{i}"))).collect();
        for &l in &leaves {
            g.connect(hub, "friend", l);
        }
        let p = parse(&mut g, "friend-[1]/friend+[1]");
        let snap = g.snapshot();
        let batch = evaluate_audience_batch(&g, &snap, &leaves, &p);
        let solo_total: usize = leaves
            .iter()
            .map(|&o| {
                evaluate_with_snapshot(&g, &snap, o, &p, None)
                    .stats
                    .edges_scanned
            })
            .sum();
        assert!(
            batch.stats.edges_scanned < solo_total / 2,
            "batch {} vs per-owner sum {}",
            batch.stats.edges_scanned,
            solo_total
        );
        for (i, &o) in leaves.iter().enumerate() {
            let solo = evaluate_with_snapshot(&g, &snap, o, &p, None);
            assert_eq!(batch.audiences[i], solo.matched);
        }
    }

    #[test]
    fn batch_chunks_beyond_64_owners() {
        // 70 members in a friend ring — more owners than one mask
        // chunk holds, so the chunk loop must run twice.
        let mut g = SocialGraph::new();
        let nodes: Vec<NodeId> = (0..70).map(|i| g.add_node(&format!("r{i}"))).collect();
        for i in 0..70usize {
            g.connect(nodes[i], "friend", nodes[(i + 1) % 70]);
        }
        let p = parse(&mut g, "friend+[1,2]");
        let snap = g.snapshot();
        let batch = evaluate_audience_batch(&g, &snap, &nodes, &p);
        for (i, &o) in nodes.iter().enumerate() {
            let solo = evaluate_with_snapshot(&g, &snap, o, &p, None);
            assert_eq!(batch.audiences[i], solo.matched, "owner {o}");
        }
    }

    #[test]
    fn batch_handles_empty_paths_and_duplicate_owners() {
        let g = chain();
        let alice = g.node_by_name("Alice").unwrap();
        let snap = g.snapshot();
        let owners = [alice, alice];
        let p = PathExpr::new(vec![]);
        let batch = evaluate_audience_batch(&g, &snap, &owners, &p);
        assert_eq!(batch.audiences, vec![vec![alice], vec![alice]]);
    }

    #[test]
    fn batch_falls_back_on_stale_snapshots() {
        let mut g = chain();
        let snap = g.snapshot();
        let alice = g.node_by_name("Alice").unwrap();
        let dave = g.node_by_name("Dave").unwrap();
        g.connect(alice, "friend", dave); // stales `snap`
        let p = parse(&mut g, "friend+[1]");
        let batch = evaluate_audience_batch(&g, &snap, &[alice], &p);
        assert!(
            batch.audiences[0].contains(&dave),
            "stale snapshot must not hide the new edge"
        );
    }

    #[test]
    fn reference_engine_reports_filtered_edges_separately() {
        let mut g = chain();
        let alice = g.node_by_name("Alice").unwrap();
        let p = parse(&mut g, "friend+[1]");
        let slow = evaluate_reference(&g, alice, &p, None);
        let snap = g.snapshot();
        let fast = evaluate_with_snapshot(&g, &snap, alice, &p, None);
        // Same matching traversals on both engines, shared axis.
        assert_eq!(fast.stats.edges_scanned, slow.stats.edges_scanned);
        assert_eq!(fast.stats.edges_filtered, 0, "CSR never inspects misses");
        // Alice's neighborhood spans friend and colleague edges, so the
        // reference engine must have filtered at least one.
        let colleague = parse(&mut g, "colleague*[1]");
        let slow = evaluate_reference(&g, alice, &colleague, None);
        assert!(slow.stats.edges_filtered > 0);
    }

    #[test]
    fn release_thread_caches_is_safe_mid_stream() {
        let mut g = chain();
        let alice = g.node_by_name("Alice").unwrap();
        let p = parse(&mut g, "friend+[1,2]");
        let before = evaluate(&g, alice, &p, None).matched;
        release_thread_caches();
        let after = evaluate(&g, alice, &p, None).matched;
        assert_eq!(before, after);
    }

    #[test]
    fn release_apis_drop_exactly_their_caches() {
        // Regression for the stale thread-local fallback risk: the
        // release functions must observably drop what they claim to.
        let mut g = chain();
        let alice = g.node_by_name("Alice").unwrap();
        let p = parse(&mut g, "friend+[1,2]");
        release_thread_caches();
        let _ = evaluate(&g, alice, &p, None); // audience ⇒ builds + caches
        let warm = thread_cache_stats();
        assert!(
            warm.snapshot_cached,
            "audience evaluation caches a snapshot"
        );
        assert!(warm.scratch_state_slots > 0, "scratch sized to the search");

        release_thread_snapshot();
        let after_snap = thread_cache_stats();
        assert!(!after_snap.snapshot_cached, "snapshot dropped");
        assert_eq!(
            after_snap.scratch_state_slots, warm.scratch_state_slots,
            "scratch survives a snapshot-only release"
        );

        let _ = evaluate(&g, alice, &p, None);
        release_thread_caches();
        let cold = thread_cache_stats();
        assert!(!cold.snapshot_cached);
        assert_eq!(cold.scratch_state_slots, 0, "full release drops scratch");
    }

    #[test]
    fn thread_local_snapshot_is_reused_within_a_generation() {
        let mut g = chain();
        let alice = g.node_by_name("Alice").unwrap();
        let p = parse(&mut g, "friend+[1]");
        let gen_before = g.generation();
        let _ = evaluate(&g, alice, &p, None);
        let _ = evaluate(&g, alice, &p, None);
        assert_eq!(g.generation(), gen_before, "evaluation never mutates");
    }

    #[test]
    fn seeded_from_the_start_state_matches_evaluate() {
        let mut g = chain();
        let snap = g.snapshot();
        let alice = g.node_by_name("Alice").unwrap();
        let carol = g.node_by_name("Carol").unwrap();
        let dave = g.node_by_name("Dave").unwrap();
        let none = vec![false; g.num_nodes()];
        for text in ["friend+[1,2]", "friend*[1..]/colleague+[1]", "friend-[1]"] {
            let p = parse(&mut g, text);
            let truth = evaluate(&g, alice, &p, None);
            let seeded = evaluate_seeded(
                &g,
                &snap,
                &p,
                &[(alice, 0, 0)],
                &none,
                SeededTarget::Audience,
            );
            assert_eq!(seeded.matched, truth.matched, "path {text}");
            assert!(seeded.reached.is_empty(), "nothing watched");
            for requester in [carol, dave] {
                let truth = evaluate(&g, alice, &p, Some(requester));
                let seeded = evaluate_seeded(
                    &g,
                    &snap,
                    &p,
                    &[(alice, 0, 0)],
                    &none,
                    SeededTarget::Member(requester),
                );
                assert_eq!(seeded.hit, truth.granted, "path {text}");
                if seeded.hit {
                    let (hops, seed) = seeded.witness.expect("hit carries a witness");
                    assert_eq!(seed, 0);
                    assert_eq!(hops, truth.witness.expect("granted carries a witness"));
                }
            }
        }
    }

    #[test]
    fn seeded_flat_and_sparse_agree() {
        let mut g = chain();
        let snap = g.snapshot();
        let alice = g.node_by_name("Alice").unwrap();
        let bob = g.node_by_name("Bob").unwrap();
        let mut watched = vec![false; g.num_nodes()];
        watched[bob.index()] = true;
        let p = parse(&mut g, "friend+[1..3]");
        let seeds = [(alice, 0u16, 0u32), (bob, 0, 2)];
        let flat = evaluate_seeded_flat(&g, &snap, &p, &seeds, &watched, SeededTarget::Audience);
        let sparse = evaluate_seeded_sparse(&g, &p, &seeds, &watched, SeededTarget::Audience);
        assert_eq!(flat.matched, sparse.matched);
        let mut fr = flat.reached.clone();
        let mut sr = sparse.reached.clone();
        fr.sort_unstable();
        sr.sort_unstable();
        assert_eq!(fr, sr, "watched exports agree across engines");
        assert!(!fr.is_empty(), "Bob is on the friend walk");
    }

    #[test]
    fn seeded_mid_path_seeds_continue_the_walk() {
        // Seeding Carol at (step 0, depth 1) of friend+[1..2]/colleague+[1]
        // must complete through her colleague edge to Dave.
        let mut g = chain();
        let snap = g.snapshot();
        let carol = g.node_by_name("Carol").unwrap();
        let dave = g.node_by_name("Dave").unwrap();
        let none = vec![false; g.num_nodes()];
        let p = parse(&mut g, "friend+[1..2]/colleague+[1]");
        let out = evaluate_seeded(
            &g,
            &snap,
            &p,
            &[(carol, 0, 1)],
            &none,
            SeededTarget::Audience,
        );
        assert_eq!(out.matched, vec![dave]);
        // Depth past saturation canonicalizes to the same state.
        let deep = evaluate_seeded(
            &g,
            &snap,
            &p,
            &[(carol, 0, 99)],
            &none,
            SeededTarget::Audience,
        );
        assert_eq!(deep.matched, vec![dave]);
    }

    #[test]
    fn seeded_state_target_stops_with_a_segment() {
        let mut g = chain();
        let snap = g.snapshot();
        let alice = g.node_by_name("Alice").unwrap();
        let carol = g.node_by_name("Carol").unwrap();
        let none = vec![false; g.num_nodes()];
        let p = parse(&mut g, "friend+[1..2]/colleague+[1]");
        // Reaching Carol at (step 0, depth 2) takes two friend hops.
        let out = evaluate_seeded(
            &g,
            &snap,
            &p,
            &[(alice, 0, 0)],
            &none,
            SeededTarget::State(carol, 0, 2),
        );
        assert!(out.hit);
        let (hops, seed) = out.witness.expect("state target carries a witness");
        assert_eq!(seed, 0);
        assert_eq!(hops.len(), 2);
        // A state target that equals a seed yields an empty segment.
        let trivial = evaluate_seeded(
            &g,
            &snap,
            &p,
            &[(alice, 0, 0)],
            &none,
            SeededTarget::State(alice, 0, 0),
        );
        assert!(trivial.hit);
        assert_eq!(trivial.witness.expect("hit").0.len(), 0);
        // An unreachable state never hits.
        let missed = evaluate_seeded(
            &g,
            &snap,
            &p,
            &[(carol, 1, 1)],
            &none,
            SeededTarget::State(alice, 0, 1),
        );
        assert!(!missed.hit);
        assert!(missed.witness.is_none());
    }

    /// Collects a masked run's audiences per condition bit, sorted.
    fn audiences_by_bit(matched: &[(NodeId, u64)], bits: usize) -> Vec<Vec<NodeId>> {
        let mut audiences = vec![Vec::new(); bits];
        for &(node, mask) in matched {
            let mut m = mask;
            while m != 0 {
                let bit = m.trailing_zeros() as usize;
                m &= m - 1;
                audiences[bit].push(node);
            }
        }
        for a in &mut audiences {
            a.sort_unstable();
        }
        audiences
    }

    #[test]
    fn masked_engine_matches_the_unseeded_batch() {
        let mut g = chain();
        let snap = g.snapshot();
        let owners: Vec<NodeId> = g.nodes().collect();
        let none = vec![false; g.num_nodes()];
        for text in ["friend+[1,2]", "friend*[1..]/colleague+[1]", "friend-[1]"] {
            let p = parse(&mut g, text);
            let truth = evaluate_audience_batch(&g, &snap, &owners, &p);
            let mut state = SeededBatchState::new(&g, &snap, &p);
            let seeds: Vec<MaskedSeedState> = owners
                .iter()
                .enumerate()
                .map(|(bit, &o)| (o, 0, 0, 1u64 << bit))
                .collect();
            let out = evaluate_audience_batch_seeded(&g, &snap, &p, &mut state, &seeds, &none);
            assert!(out.exports.is_empty(), "nothing watched");
            assert_eq!(
                audiences_by_bit(&out.matched, owners.len()),
                truth.audiences,
                "path {text}"
            );
        }
    }

    #[test]
    fn masked_engine_reports_each_bit_once_across_runs() {
        let mut g = chain();
        let snap = g.snapshot();
        let alice = g.node_by_name("Alice").unwrap();
        let bob = g.node_by_name("Bob").unwrap();
        let none = vec![false; g.num_nodes()];
        let p = parse(&mut g, "friend+[1,2]");
        let mut state = SeededBatchState::new(&g, &snap, &p);
        let out =
            evaluate_audience_batch_seeded(&g, &snap, &p, &mut state, &[(alice, 0, 0, 1)], &none);
        assert!(!out.matched.is_empty());
        let expanded = state.states_expanded();
        assert!(expanded > 0);

        // Re-seeding known bits is a no-op: persistence makes the
        // fixpoint linear in the explored region.
        let again =
            evaluate_audience_batch_seeded(&g, &snap, &p, &mut state, &[(alice, 0, 0, 1)], &none);
        assert!(again.matched.is_empty());
        assert!(again.exports.is_empty());
        assert_eq!(again.stats.states_visited, 0);
        assert_eq!(state.states_expanded(), expanded, "no re-traversal");

        // A new bit through the same region reports only itself.
        let fresh =
            evaluate_audience_batch_seeded(&g, &snap, &p, &mut state, &[(bob, 0, 0, 2)], &none);
        for &(_, mask) in &fresh.matched {
            assert_eq!(mask & 1, 0, "bit 0 was already reported");
        }
    }

    #[test]
    fn masked_engine_exports_watched_states_with_delta_bits() {
        let mut g = chain();
        let snap = g.snapshot();
        let alice = g.node_by_name("Alice").unwrap();
        let eve = g.node_by_name("Eve").unwrap();
        let bob = g.node_by_name("Bob").unwrap();
        let mut watched = vec![false; g.num_nodes()];
        watched[bob.index()] = true;
        let p = parse(&mut g, "friend+[1,2]");
        let mut state = SeededBatchState::new(&g, &snap, &p);
        let out = evaluate_audience_batch_seeded(
            &g,
            &snap,
            &p,
            &mut state,
            &[(alice, 0, 0, 0b01), (eve, 0, 0, 0b10)],
            &watched,
        );
        // Alice reaches Bob at depth 1; Eve does not reach Bob at all.
        assert_eq!(out.exports, vec![(bob, 0, 1, 0b01)]);
        // A later run delivering Eve's bit to Bob exports only it.
        let relay = evaluate_audience_batch_seeded(
            &g,
            &snap,
            &p,
            &mut state,
            &[(bob, 0, 1, 0b11)],
            &watched,
        );
        assert_eq!(relay.exports, vec![(bob, 0, 1, 0b10)]);
    }

    #[test]
    fn masked_engine_sparse_variant_matches_per_owner_evaluation() {
        // A saturation depth past MAX_FLAT_LAYERS forces the sparse
        // mirror; answers must not change.
        let mut g = chain();
        let snap = g.snapshot();
        let owners: Vec<NodeId> = g.nodes().collect();
        let none = vec![false; g.num_nodes()];
        let p = parse(&mut g, "friend+[1..4000000]");
        let mut state = SeededBatchState::new(&g, &snap, &p);
        assert!(
            matches!(state.inner, BatchInner::Sparse(_)),
            "degenerate saturation uses the sparse mirror"
        );
        let seeds: Vec<MaskedSeedState> = owners
            .iter()
            .enumerate()
            .map(|(bit, &o)| (o, 0, 0, 1u64 << bit))
            .collect();
        let out = evaluate_audience_batch_seeded(&g, &snap, &p, &mut state, &seeds, &none);
        let audiences = audiences_by_bit(&out.matched, owners.len());
        for (bit, &owner) in owners.iter().enumerate() {
            let truth = evaluate(&g, owner, &p, None);
            assert_eq!(audiences[bit], truth.matched, "owner {owner}");
        }
    }
}
