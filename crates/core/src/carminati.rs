//! The Carminati–Ferrari–Perego baseline (OTM Workshops 2006) — the
//! rule-based access-control model §4 of the paper positions itself
//! against:
//!
//! > *"This work introduced trust and distance in the social graph as
//! > key criteria for access preferences. The target of an access
//! > authorization is specified as a sub-graph based on one simple
//! > relationship (friendship, for instance), having in its center the
//! > owner of the resource with a fixed radius."*
//!
//! A [`CarminatiRule`] grants access when the requester is connected to
//! the owner by a path of **one relationship type**, of length at most
//! `max_depth`, whose aggregated **trust** (product or minimum of the
//! per-edge trust annotations) is at least `min_trust`.
//!
//! Relationship to the paper's model: the type+depth fragment is exactly
//! the single-step path expression `label*[1..max_depth]`
//! ([`CarminatiRule::to_path_expr`]), so the reachability model strictly
//! generalizes it *except* for trust — trust is an **edge** property
//! aggregated along the walk, which Definition 3's node-attribute
//! conditions cannot express. That gap is why this baseline is
//! implemented natively (and measured in experiment P8).

use crate::path::{DepthSet, PathExpr, Step};
use socialreach_graph::{AttrValue, Direction, EdgeId, LabelId, NodeId, SocialGraph};

/// How per-edge trust values combine along a path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TrustAggregation {
    /// Multiply edge trusts (Carminati et al.'s default: trust decays
    /// with distance).
    Product,
    /// Take the weakest edge (bottleneck trust).
    Minimum,
}

/// A Carminati-style access rule: one relationship type, a radius, and a
/// trust threshold.
#[derive(Clone, Debug, PartialEq)]
pub struct CarminatiRule {
    /// The (single) relationship type of the qualifying paths.
    pub label: LabelId,
    /// Traversal direction (the original model treats relationships as
    /// undirected; use [`Direction::Both`] for fidelity).
    pub dir: Direction,
    /// Maximum path length (the "radius" of the authorized subgraph).
    pub max_depth: u32,
    /// Minimum aggregated trust in `[0, 1]`.
    pub min_trust: f64,
    /// Trust aggregation operator.
    pub trust_agg: TrustAggregation,
    /// Trust assumed for edges without a `trust` annotation.
    pub default_trust: f64,
}

impl CarminatiRule {
    /// A friendship-radius rule with full default trust (pure
    /// type+depth, no trust filtering).
    pub fn radius(label: LabelId, max_depth: u32) -> Self {
        CarminatiRule {
            label,
            dir: Direction::Both,
            max_depth,
            min_trust: 0.0,
            trust_agg: TrustAggregation::Product,
            default_trust: 1.0,
        }
    }

    /// The trust-free fragment of this rule as a path expression
    /// (`label*[1..max_depth]`): the part of the baseline the
    /// reachability model expresses directly.
    pub fn to_path_expr(&self) -> PathExpr {
        PathExpr::new(vec![Step {
            label: self.label,
            dir: self.dir,
            depths: DepthSet::range(1, self.max_depth.max(1)),
            conds: Vec::new(),
        }])
    }
}

/// Result of a Carminati evaluation from one owner.
#[derive(Clone, Debug)]
pub struct CarminatiOutcome {
    /// Members granted access, sorted by id.
    pub granted: Vec<NodeId>,
    /// Best aggregated trust per granted member (parallel to
    /// `granted`).
    pub trust: Vec<f64>,
}

/// Per-edge trust: the `trust` attribute when it is a number, else the
/// rule's default.
fn edge_trust(g: &SocialGraph, e: socialreach_graph::EdgeId, rule: &CarminatiRule) -> f64 {
    let key = g.vocab().attr("trust");
    match key.and_then(|k| g.edge(e).attrs.get(k)) {
        Some(AttrValue::Float(t)) => *t,
        Some(AttrValue::Int(t)) => *t as f64,
        _ => rule.default_trust,
    }
}

/// Evaluates a rule: layered dynamic programming over path length.
/// `best[d][v]` is the maximum aggregated trust of a `label`-typed walk
/// of exactly `d` hops from `owner` to `v`; a member qualifies when any
/// layer `1..=max_depth` reaches it with trust `>= min_trust`.
///
/// Exact for both aggregations because they are monotone: extending a
/// walk never increases its trust, and the per-layer maximum dominates
/// every other walk of that length.
pub fn evaluate(g: &SocialGraph, owner: NodeId, rule: &CarminatiRule) -> CarminatiOutcome {
    let n = g.num_nodes();
    let mut best_overall = vec![f64::NEG_INFINITY; n];
    let mut current = vec![f64::NEG_INFINITY; n];
    current[owner.index()] = 1.0;

    let out = matches!(rule.dir, Direction::Out | Direction::Both);
    let inc = matches!(rule.dir, Direction::In | Direction::Both);
    // Relaxation scans only the rule's label: reuse the thread's CSR
    // snapshot when one is already current (per-(node, label) slices
    // instead of filtering full adjacency lists every layer), but don't
    // build one — a full two-direction all-label index costs more than
    // this single bounded scan.
    let snap = crate::online::thread_snapshot_if_current(g);

    for _depth in 1..=rule.max_depth {
        let mut next = vec![f64::NEG_INFINITY; n];
        for (v, &t) in current.iter().enumerate() {
            if t == f64::NEG_INFINITY {
                continue;
            }
            let node = NodeId::from_index(v);
            let mut relax = |eid, target: NodeId| {
                let w = edge_trust(g, eid, rule);
                let combined = match rule.trust_agg {
                    TrustAggregation::Product => t * w,
                    TrustAggregation::Minimum => t.min(w),
                };
                let slot = &mut next[target.index()];
                if combined > *slot {
                    *slot = combined;
                }
            };
            if out {
                match &snap {
                    Some(s) => {
                        for (nbr, eid) in s.out_neighbors(node.0, rule.label).iter() {
                            relax(EdgeId(eid), NodeId(nbr));
                        }
                    }
                    None => {
                        for (eid, rec) in g.out_edges(node) {
                            if rec.label == rule.label {
                                relax(eid, rec.dst);
                            }
                        }
                    }
                }
            }
            if inc {
                match &snap {
                    Some(s) => {
                        for (nbr, eid) in s.in_neighbors(node.0, rule.label).iter() {
                            relax(EdgeId(eid), NodeId(nbr));
                        }
                    }
                    None => {
                        for (eid, rec) in g.in_edges(node) {
                            if rec.label == rule.label {
                                relax(eid, rec.src);
                            }
                        }
                    }
                }
            }
        }
        for (slot, &t) in best_overall.iter_mut().zip(&next) {
            if t > *slot {
                *slot = t;
            }
        }
        current = next;
    }

    let mut granted = Vec::new();
    let mut trust = Vec::new();
    for (v, &t) in best_overall.iter().enumerate() {
        if t >= rule.min_trust && t > f64::NEG_INFINITY {
            granted.push(NodeId::from_index(v));
            trust.push(t);
        }
    }
    CarminatiOutcome { granted, trust }
}

/// Does `requester` qualify under `rule` from `owner`?
pub fn check(g: &SocialGraph, owner: NodeId, rule: &CarminatiRule, requester: NodeId) -> bool {
    // Early-exit layered DP would complicate the code for little gain at
    // radius <= 3 (the model's practical range); reuse the audience DP.
    let outcome = evaluate(g, owner, rule);
    outcome.granted.binary_search(&requester).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::online;

    /// Alice -0.9-> Bob -0.8-> Carol -0.4-> Dave (friend chain),
    /// Alice -colleague-> Eve.
    fn trust_chain() -> (SocialGraph, LabelId) {
        let mut g = SocialGraph::new();
        let a = g.add_node("Alice");
        let b = g.add_node("Bob");
        let c = g.add_node("Carol");
        let d = g.add_node("Dave");
        let e = g.add_node("Eve");
        let friend = g.intern_label("friend");
        let colleague = g.intern_label("colleague");
        let e1 = g.add_edge(a, b, friend);
        let e2 = g.add_edge(b, c, friend);
        let e3 = g.add_edge(c, d, friend);
        g.add_edge(a, e, colleague);
        g.set_edge_attr(e1, "trust", 0.9f64);
        g.set_edge_attr(e2, "trust", 0.8f64);
        g.set_edge_attr(e3, "trust", 0.4f64);
        (g, friend)
    }

    fn granted_names(g: &SocialGraph, out: &CarminatiOutcome) -> Vec<String> {
        out.granted
            .iter()
            .map(|&n| g.node_name(n).to_owned())
            .collect()
    }

    fn trust_of(g: &SocialGraph, out: &CarminatiOutcome, name: &str) -> f64 {
        let id = g.node_by_name(name).unwrap();
        let i = out.granted.binary_search(&id).expect("granted");
        out.trust[i]
    }

    #[test]
    fn radius_without_trust_matches_depth_bound() {
        // Walk semantics with dir = Both: the owner re-qualifies at even
        // depths via back-and-forth walks (Alice -> Bob -> Alice), just
        // as with the path-expression engines.
        let (g, friend) = trust_chain();
        let alice = g.node_by_name("Alice").unwrap();
        let out = evaluate(&g, alice, &CarminatiRule::radius(friend, 2));
        assert_eq!(granted_names(&g, &out), vec!["Alice", "Bob", "Carol"]);
        let out3 = evaluate(&g, alice, &CarminatiRule::radius(friend, 3));
        assert_eq!(
            granted_names(&g, &out3),
            vec!["Alice", "Bob", "Carol", "Dave"]
        );
        // With outgoing-only edges the chain is simple: no backtracking.
        let out_dir = evaluate(
            &g,
            alice,
            &CarminatiRule {
                dir: Direction::Out,
                ..CarminatiRule::radius(friend, 2)
            },
        );
        assert_eq!(granted_names(&g, &out_dir), vec!["Bob", "Carol"]);
    }

    #[test]
    fn product_trust_threshold_cuts_the_tail() {
        let (g, friend) = trust_chain();
        let alice = g.node_by_name("Alice").unwrap();
        let rule = CarminatiRule {
            min_trust: 0.5,
            ..CarminatiRule::radius(friend, 3)
        };
        let out = evaluate(&g, alice, &rule);
        // Bob: 0.9; Carol: 0.72; Alice herself: 0.81 (A->B->A);
        // Dave: 0.288 < 0.5 — excluded.
        assert_eq!(granted_names(&g, &out), vec!["Alice", "Bob", "Carol"]);
        assert!((trust_of(&g, &out, "Bob") - 0.9).abs() < 1e-12);
        assert!((trust_of(&g, &out, "Carol") - 0.72).abs() < 1e-12);
        assert!((trust_of(&g, &out, "Alice") - 0.81).abs() < 1e-12);
    }

    #[test]
    fn minimum_aggregation_is_bottleneck_trust() {
        let (g, friend) = trust_chain();
        let alice = g.node_by_name("Alice").unwrap();
        let rule = CarminatiRule {
            min_trust: 0.5,
            trust_agg: TrustAggregation::Minimum,
            ..CarminatiRule::radius(friend, 3)
        };
        let out = evaluate(&g, alice, &rule);
        // Carol's bottleneck is 0.8; Dave's is 0.4 — excluded.
        assert_eq!(granted_names(&g, &out), vec!["Alice", "Bob", "Carol"]);
        assert!((trust_of(&g, &out, "Carol") - 0.8).abs() < 1e-12);
    }

    #[test]
    fn label_filter_excludes_other_relationship_types() {
        let (g, friend) = trust_chain();
        let alice = g.node_by_name("Alice").unwrap();
        let out = evaluate(&g, alice, &CarminatiRule::radius(friend, 3));
        assert!(!granted_names(&g, &out).contains(&"Eve".to_owned()));
    }

    #[test]
    fn direction_constraints_apply() {
        let (g, friend) = trust_chain();
        let carol = g.node_by_name("Carol").unwrap();
        let rule_in = CarminatiRule {
            dir: Direction::In,
            ..CarminatiRule::radius(friend, 2)
        };
        let out = evaluate(&g, carol, &rule_in);
        assert_eq!(granted_names(&g, &out), vec!["Alice", "Bob"]);
        let rule_out = CarminatiRule {
            dir: Direction::Out,
            ..CarminatiRule::radius(friend, 2)
        };
        let out = evaluate(&g, carol, &rule_out);
        assert_eq!(granted_names(&g, &out), vec!["Dave"]);
    }

    #[test]
    fn unannotated_edges_use_default_trust() {
        let mut g = SocialGraph::new();
        let a = g.add_node("A");
        let b = g.add_node("B");
        let friend = g.intern_label("friend");
        g.add_edge(a, b, friend);
        let rule = CarminatiRule {
            min_trust: 0.6,
            default_trust: 0.5,
            dir: Direction::Out,
            ..CarminatiRule::radius(friend, 1)
        };
        assert!(evaluate(&g, a, &rule).granted.is_empty());
        let rule_high_default = CarminatiRule {
            default_trust: 0.7,
            ..rule
        };
        assert_eq!(evaluate(&g, a, &rule_high_default).granted, vec![b]);
    }

    #[test]
    fn trust_free_fragment_agrees_with_path_expression_semantics() {
        // With min_trust = 0 the baseline must equal the reachability
        // model's `label*[1..d]` audience (minus the owner-self case).
        let (mut g, friend) = trust_chain();
        g.add_edge(
            g.node_by_name("Dave").unwrap(),
            g.node_by_name("Alice").unwrap(),
            friend,
        );
        for owner in g.nodes() {
            for depth in 1..=3u32 {
                let rule = CarminatiRule::radius(friend, depth);
                let baseline = evaluate(&g, owner, &rule);
                let path = rule.to_path_expr();
                let ours = online::evaluate(&g, owner, &path, None);
                assert_eq!(
                    baseline.granted, ours.matched,
                    "owner {owner:?} depth {depth}"
                );
            }
        }
    }

    #[test]
    fn check_matches_evaluate() {
        let (g, friend) = trust_chain();
        let alice = g.node_by_name("Alice").unwrap();
        let carol = g.node_by_name("Carol").unwrap();
        let eve = g.node_by_name("Eve").unwrap();
        let rule = CarminatiRule::radius(friend, 2);
        assert!(check(&g, alice, &rule, carol));
        assert!(!check(&g, alice, &rule, eve));
    }
}
