//! Shared plumbing of the serving-layer test suites: equivalence
//! checks generic over **any two** [`AccessService`] implementations,
//! and the path-automaton witness replay.
//!
//! The equivalence harness never names a backend — a future deployment
//! (e.g. the ROADMAP's distributed-transport shards) is testable
//! against the existing ones the day it implements the trait.
#![allow(dead_code)] // each test binary uses the slice it needs

use socialreach_core::{AccessService, Decision, Explanation, PathExpr, ResourceId, WalkHop};
use socialreach_graph::{NodeId, SocialGraph};

/// Asserts two serving backends agree on **every** observable read of
/// the given resources: per-member decisions, per-resource audiences,
/// batched audiences, batched decisions, and explain grant-ness.
/// `reference` and `candidate` must serve the same membership.
pub fn assert_services_agree(
    reference: &dyn AccessService,
    candidate: &dyn AccessService,
    rids: &[ResourceId],
) {
    assert_eq!(
        reference.num_members(),
        candidate.num_members(),
        "{} vs {}: membership census",
        reference.describe(),
        candidate.describe()
    );
    let members: Vec<NodeId> = (0..reference.num_members() as u32).map(NodeId).collect();
    let tag = || format!("{} vs {}", reference.describe(), candidate.describe());

    // Per-resource audiences and per-member decisions.
    for &rid in rids {
        let expect = reference.audience(rid).expect("reference audience");
        let got = candidate.audience(rid).expect("candidate audience");
        assert_eq!(got, expect, "audience mismatch: rid={rid:?} ({})", tag());
        for &m in &members {
            let expect = reference.check(rid, m).expect("reference check");
            let got = candidate.check(rid, m).expect("candidate check");
            assert_eq!(
                got,
                expect,
                "decision mismatch: rid={rid:?} member={m} ({})",
                tag()
            );
            // Explain agrees with the decision on both sides.
            let explained = candidate.explain(rid, m).expect("candidate explain");
            assert_eq!(
                explained.is_some(),
                got == Decision::Grant,
                "explain/decision divergence: rid={rid:?} member={m} ({})",
                tag()
            );
        }
    }

    // Batched reads match the per-request truth on both backends.
    let bundle_expect = reference.audience_batch(rids).expect("reference bundle");
    let bundle_got = candidate.audience_batch(rids).expect("candidate bundle");
    assert_eq!(bundle_got, bundle_expect, "bundle audiences ({})", tag());
    let requests: Vec<(ResourceId, NodeId)> = rids
        .iter()
        .flat_map(|&rid| members.iter().map(move |&m| (rid, m)))
        .collect();
    let decisions_expect = reference
        .check_batch(&requests, 2)
        .expect("reference batch");
    let decisions_got = candidate
        .check_batch(&requests, 2)
        .expect("candidate batch");
    assert_eq!(
        decisions_got,
        decisions_expect,
        "batched decisions ({})",
        tag()
    );
}

/// Checks a witness walk: a connected walk `owner ⇝ requester` whose
/// hops are real edges of the reference graph and whose
/// label/direction/depth sequence is accepted by the path automaton
/// (NFA over `(step, depth)` states with ε-completions between steps).
/// Returns the violation, or `None` when the walk is valid.
pub fn witness_violation(
    g: &SocialGraph,
    owner: NodeId,
    requester: NodeId,
    path: &PathExpr,
    witness: &[WalkHop],
) -> Option<String> {
    // 1. Each hop is an edge of the reference graph and the walk chains.
    let mut at = owner;
    for hop in witness {
        let exists = g
            .edges()
            .any(|(_, r)| r.src == hop.src && r.dst == hop.dst && r.label == hop.label);
        if !exists {
            return Some(format!("hop {hop:?} is not an edge of the graph"));
        }
        let (from, to) = if hop.forward {
            (hop.src, hop.dst)
        } else {
            (hop.dst, hop.src)
        };
        if from != at {
            return Some(format!("witness disconnects at {hop:?}"));
        }
        at = to;
    }
    if at != requester {
        return Some("witness does not end at the requester".to_owned());
    }

    // 2. The hop sequence is accepted by the path automaton.
    let steps = &path.steps;
    // Saturation point of a depth set (all deeper depths equivalent),
    // from the public interval view.
    let sat: Vec<u32> = steps
        .iter()
        .map(|s| {
            let &(lo, hi) = s.depths.intervals().last().expect("non-empty depth set");
            hi.unwrap_or(lo)
        })
        .collect();
    let completes = |i: usize, d: u32, node: NodeId| {
        d >= 1
            && steps[i].depths.contains(d)
            && steps[i].conds.iter().all(|c| c.eval(g.node_attrs(node)))
    };
    let close = |states: &mut Vec<(usize, u32)>, node: NodeId| {
        let mut k = 0;
        while k < states.len() {
            let (i, d) = states[k];
            if i + 1 < steps.len() && completes(i, d, node) && !states.contains(&(i + 1, 0)) {
                states.push((i + 1, 0));
            }
            k += 1;
        }
    };
    let mut states: Vec<(usize, u32)> = vec![(0, 0)];
    let mut at = owner;
    for hop in witness {
        close(&mut states, at);
        let (label, forward) = (hop.label, hop.forward);
        let mut next: Vec<(usize, u32)> = Vec::new();
        for &(i, d) in &states {
            let step = &steps[i];
            if step.label != label {
                continue;
            }
            let dir_ok = match step.dir {
                socialreach_graph::Direction::Out => forward,
                socialreach_graph::Direction::In => !forward,
                socialreach_graph::Direction::Both => true,
            };
            if !dir_ok {
                continue;
            }
            if d < sat[i] || step.depths.is_unbounded() {
                let nd = (d + 1).min(sat[i]);
                if !next.contains(&(i, nd)) {
                    next.push((i, nd));
                }
            }
        }
        states = next;
        if states.is_empty() {
            return Some(format!("witness hop {hop:?} matches no step"));
        }
        at = if forward { hop.dst } else { hop.src };
    }
    if states
        .iter()
        .any(|&(i, d)| i == steps.len() - 1 && completes(i, d, at))
    {
        None
    } else {
        Some("witness walk does not complete the path at the requester".to_owned())
    }
}

/// Panicking wrapper of [`witness_violation`] for suites that know the
/// unique condition a walk must satisfy.
pub fn assert_witness_valid(
    g: &SocialGraph,
    owner: NodeId,
    requester: NodeId,
    path: &PathExpr,
    witness: &[WalkHop],
) {
    if let Some(violation) = witness_violation(g, owner, requester, path, witness) {
        panic!("{violation}");
    }
}

/// Validates every walk of a granted [`Explanation`] against the
/// reference graph: each walk must reach `requester` and be accepted
/// by the automaton of a rule condition it claims to satisfy (matched
/// by the walk's `start` owner; `conditions` are the resource's
/// `(owner, path)` pairs).
pub fn assert_explanation_valid(
    g: &SocialGraph,
    requester: NodeId,
    conditions: &[(NodeId, PathExpr)],
    explanation: &Explanation,
) {
    match explanation {
        Explanation::Ownership { .. } => {}
        Explanation::Rule { walks } => {
            assert!(!walks.is_empty(), "a rule grant carries walks");
            for walk in walks {
                // Several conditions can share an owner; at least one
                // must accept the walk.
                let accepted = conditions.iter().any(|(owner, path)| {
                    *owner == walk.start
                        && witness_violation(g, *owner, requester, path, &walk.hops).is_none()
                });
                assert!(
                    accepted,
                    "no condition of the rule accepts walk from {}",
                    walk.start
                );
            }
        }
    }
}
